// Experiment E1 (Section 3.1): cooperative dissemination trees with early
// filtering vs direct source feeding. Sweeps entity count and interest
// coverage; reports total WAN bytes, source egress/fan-out, and delivery
// latency.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "dissemination/disseminator.h"
#include "index_series.h"
#include "interest/box_index.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "telemetry/sketch.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;
using dsps::dissemination::Disseminator;
using dsps::dissemination::TreePolicy;

struct DissemResult {
  int64_t total_bytes = 0;
  int64_t source_bytes = 0;
  int max_fanout = 0;
  int max_depth = 0;
  double p99_delivery_latency = 0.0;
  int64_t delivered = 0;
};

DissemResult Run(int entities, double coverage, TreePolicy policy,
                 bool early_filter, int tuples, uint64_t seed,
                 dsps::telemetry::MetricsRegistry* metrics = nullptr,
                 dsps::interest::IndexStats* route_stats = nullptr,
                 dsps::common::Histogram* latency_out = nullptr) {
  dsps::sim::Simulator sim;
  dsps::sim::Network net(&sim);
  if (metrics != nullptr) net.SetMetrics(metrics);
  dsps::common::Rng rng(seed);
  auto src = net.AddNode({500, 500});
  Disseminator::Config cfg;
  cfg.tree.policy = policy;
  cfg.tree.max_fanout = 4;
  cfg.early_filter = early_filter;
  // Surfaces dissem.route_lookup_us (and per-node counters) in the JSON.
  cfg.metrics = metrics;
  Disseminator dissem(&net, cfg);
  if (!dissem.AddSource(0, src).ok()) std::abort();
  dsps::common::Histogram latency;
  dissem.SetDeliveryHandler(
      [&](dsps::common::EntityId, const dsps::engine::Tuple& t) {
        latency.Add(sim.now() - t.timestamp);
      });
  for (int e = 0; e < entities; ++e) {
    auto gw = net.AddNode({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    if (!dissem.AddEntity(e, gw).ok()) std::abort();
    // Interest: an interval covering `coverage` of the symbol domain.
    double width = 100.0 * coverage;
    double lo = rng.Uniform(0, 100.0 - width);
    if (!dissem
             .SetEntityInterest(
                 e, 0,
                 {dsps::interest::Box{{lo, lo + width},
                                      {-1e9, 1e9},
                                      {-1e9, 1e9}}})
             .ok()) {
      std::abort();
    }
  }
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.num_symbols = 100;
  tcfg.zipf_s = 0.0;  // uniform symbols: coverage is exact
  dsps::workload::StockTickerGen gen(tcfg, rng.Fork(2));
  for (int i = 0; i < tuples; ++i) {
    if (!dissem.Publish(gen.Next(sim.now())).ok()) std::abort();
    sim.RunUntil(sim.now() + 0.01);
  }
  sim.Run();
  if (route_stats != nullptr) *route_stats = dissem.RouteIndexStats();
  DissemResult r;
  r.total_bytes = net.total_bytes();
  r.source_bytes = net.egress_bytes(src);
  r.max_fanout = dissem.tree(0)->source_fanout();
  r.max_depth = dissem.tree(0)->MaxDepth();
  r.p99_delivery_latency = latency.p99();
  r.delivered = dissem.delivered_count();
  if (latency_out != nullptr) *latency_out = latency;
  return r;
}

void BM_Publish(benchmark::State& state) {
  int entities = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DissemResult r =
        Run(entities, 0.2, TreePolicy::kClosestParent, true, 50, 1);
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_Publish)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void PrintE1() {
  const int tuples = 400;
  dsps::telemetry::BenchReport report("e1_dissemination");
  Table table({"entities", "coverage", "scheme", "total MB", "source MB",
               "src fanout", "depth", "p99 deliver ms", "delivered"});
  for (int entities : {8, 32, 128}) {
    for (double coverage : {0.05, 0.25, 1.0}) {
      struct Scheme {
        const char* name;
        TreePolicy policy;
        bool filter;
      };
      for (const Scheme& s :
           {Scheme{"direct", TreePolicy::kSourceDirect, true},
            Scheme{"tree", TreePolicy::kClosestParent, false},
            Scheme{"tree+filter", TreePolicy::kClosestParent, true}}) {
        dsps::telemetry::MetricsRegistry row_metrics;
        dsps::interest::IndexStats route_stats;
        DissemResult r = Run(entities, coverage, s.policy, s.filter, tuples,
                             77 + entities, &row_metrics, &route_stats);
        // Routing-cache index health for the tree rows (the direct rows
        // never build a route index).
        if (s.policy == TreePolicy::kClosestParent && s.filter &&
            entities == 128 && route_stats.indexes > 0) {
          // The row labels (entities/coverage/scheme) are appended when the
          // registry snapshot is merged into the report below.
          dsps::bench::ExportIndexStats(
              route_stats, &row_metrics,
              dsps::telemetry::MakeLabels({{"scope", "route"}}));
        }
        table.AddRow({Table::Int(entities), Table::Num(coverage, 2), s.name,
                      Table::Num(r.total_bytes / 1e6, 3),
                      Table::Num(r.source_bytes / 1e6, 3),
                      Table::Int(r.max_fanout), Table::Int(r.max_depth),
                      Table::Num(r.p99_delivery_latency * 1e3, 2),
                      Table::Int(r.delivered)});
        dsps::telemetry::Labels row = dsps::telemetry::MakeLabels(
            {{"entities", std::to_string(entities)},
             {"coverage", std::to_string(coverage)},
             {"scheme", s.name}});
        report.SetHeadline("total_mb", r.total_bytes / 1e6, row);
        report.SetHeadline("source_mb", r.source_bytes / 1e6, row);
        report.SetHeadline("delivered", r.delivered, row);
        report.MergeSnapshot(row_metrics.Snapshot(), row);
      }
    }
  }
  // Lookup probe over an E1-shaped box population (128 gateways, 25%
  // coverage): publishes index.lookup_us / index.build_us / index.mem_bytes
  // so this report carries per-stab latency dsps_doctor can p95.
  {
    dsps::common::Rng prng(31);
    std::vector<dsps::interest::Box> boxes;
    boxes.reserve(128);
    for (int e = 0; e < 128; ++e) {
      double lo = prng.Uniform(0, 75.0);
      boxes.push_back(dsps::interest::Box{
          {lo, lo + 25.0}, {-1e9, 1e9}, {-1e9, 1e9}});
    }
    const dsps::interest::Box domain{{0, 100}, {-1e9, 1e9}, {-1e9, 1e9}};
    dsps::telemetry::MetricsRegistry probe_metrics;
    dsps::bench::RunIndexLookupProbe(
        boxes, domain, dsps::bench::IndexProbeConfig{}, &probe_metrics,
        dsps::telemetry::MakeLabels({{"scope", "probe"}}));
    report.MergeSnapshot(probe_metrics.Snapshot());
  }
  // -- Bounded-sketch accuracy pin ---------------------------------------
  // Replays one representative row's exact delivery-latency samples into
  // a default telemetry::Sketch and verifies the mergeable-sketch error
  // contract against ground truth: at each pinned quantile, the estimate
  // must be within the sketch's relative_accuracy of the exact nearest-
  // rank sample, and the target rank must fall inside the rank interval
  // of samples within that error band (the guarantee E13 leans on when
  // it swaps exact histograms for sketches at metro scale).
  {
    dsps::common::Histogram exact;
    Run(128, 0.25, TreePolicy::kClosestParent, true, tuples, 77 + 128,
        nullptr, nullptr, &exact);
    std::vector<double> sorted = exact.samples();
    std::sort(sorted.begin(), sorted.end());
    dsps::telemetry::Sketch sketch;
    for (double x : sorted) sketch.Add(x);
    const double alpha = sketch.config().relative_accuracy;
    const double n = static_cast<double>(sorted.size());
    double max_rel_err = 0.0;
    double max_rank_err = 0.0;
    for (double q : {0.50, 0.90, 0.95, 0.99}) {
      size_t rank = static_cast<size_t>(std::ceil(q * n));
      rank = std::min(std::max<size_t>(rank, 1), sorted.size());
      const double truth = sorted[rank - 1];
      const double est = sketch.Percentile(q);
      const double rel =
          truth > 0.0 ? std::fabs(est - truth) / truth : std::fabs(est);
      // Rank distance from the target to the band of samples the sketch
      // is allowed to answer with (values within alpha of the estimate).
      const double below = static_cast<double>(
          std::lower_bound(sorted.begin(), sorted.end(),
                           est / (1.0 + alpha)) -
          sorted.begin());
      const double above = static_cast<double>(
          std::upper_bound(sorted.begin(), sorted.end(),
                           est / (1.0 - alpha)) -
          sorted.begin());
      const double target = q * n;
      double rank_err = 0.0;
      if (target < below) rank_err = (below - target) / n;
      if (target > above) rank_err = (target - above) / n;
      max_rel_err = std::max(max_rel_err, rel);
      max_rank_err = std::max(max_rank_err, rank_err);
    }
    report.SetHeadline("sketch_rel_error_max", max_rel_err);
    report.SetHeadline("sketch_rank_error_max", max_rank_err);
    report.SetHeadline("sketch_buckets",
                       static_cast<double>(sketch.num_buckets()));
    report.SetHeadline("sketch_mem_bytes",
                       static_cast<double>(sketch.MemoryBytes()));
    report.SetHeadline("sketch_samples", n);
    if (max_rel_err > alpha + 1e-9 || max_rank_err > 0.01) {
      std::fprintf(stderr,
                   "E1: sketch accuracy bar violated (rel err %.5f > %.3f "
                   "or rank err %.5f > 0.01 over %.0f samples)\n",
                   max_rel_err, alpha, max_rank_err, n);
      std::abort();
    }
  }
  report.WriteFileOrDie();
  table.Print(
      "E1 (Section 3.1): dissemination schemes — source fan-out stays "
      "bounded under trees; early filtering cuts bytes when coverage is "
      "narrow");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE1();
  return 0;
}
