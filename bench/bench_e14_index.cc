// Experiment E14 (learned interest index): BoxIndex strategy sweep —
// uniform grid vs learned spline vs a naive linear reference scan —
// across box counts, measuring build cost, point-stab (Match) latency,
// box-overlap (MatchOverlap) latency, and memory. This is the
// microbenchmark behind the PR's headline claim: at the million-box tier
// the spline's CDF-adaptive buckets beat the fixed grid's per-cell scans
// by well over the 2x acceptance bar, with bit-identical output.
//
// Two sizes share one code path, selected by DSPS_E14_SCALE:
//  * smoke (default) — 1k / 10k / 100k boxes. Fast enough for CI; this
//    is the size pinned against bench/baselines/BENCH_e14_index.json.
//  * full  (=full)   — adds the 1,000,000-box tier (the linear reference
//    is skipped there: a million box tests per stab measures patience,
//    not indexes).
//
// Per (boxes, strategy) the JSON carries index.build_us (gauge),
// index.lookup_us / index.overlap_us (histograms: per-operation), and
// index.mem_bytes (gauge). Headlines: spline_speedup_match and
// spline_speedup_overlap at the largest tier run (grid mean / spline
// mean), match_checks / overlap_checks (output-equality comparisons
// performed), and boxes_max.
//
// Acceptance bars (abort on violation): every equality check across all
// strategies agrees element-for-element (order included), and both
// speedups at the largest tier are >= 2.0.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "index_series.h"
#include "interest/box_index.h"
#include "telemetry/bench_report.h"

namespace {

using dsps::common::Table;
using dsps::interest::Box;
using dsps::interest::BoxIndex;
using dsps::interest::IndexStrategy;
using dsps::interest::Interval;

constexpr double kSpeedupBar = 2.0;

struct Tier {
  size_t boxes;
  int lookups;
  int overlaps;
  /// Whether the naive linear reference runs at this tier.
  bool linear;
};

std::vector<Tier> PickTiers() {
  std::vector<Tier> tiers = {{1000, 2000, 400, true},
                             {10000, 2000, 400, true},
                             {100000, 800, 200, true}};
  const char* s = std::getenv("DSPS_E14_SCALE");
  if (s != nullptr && std::string(s) == "full") {
    tiers.push_back({1000000, 300, 80, false});
  }
  return tiers;
}

/// Mixed-shape subscriber population over a 3-dim domain: mostly narrow
/// boxes (selective standing queries), a medium slice, and a few fat
/// ones (coarse entity aggregates) — the shape the routing caches and
/// stream indexes actually hold.
std::vector<Box> MakeBoxes(size_t n, const Box& domain, uint64_t seed) {
  dsps::common::Rng rng(seed);
  const double span = domain[0].hi - domain[0].lo;
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double frac;
    const double shape = rng.Uniform(0.0, 1.0);
    if (shape < 0.80) {
      frac = 0.0001;
    } else if (shape < 0.95) {
      frac = 0.001;
    } else {
      frac = 0.01;
    }
    const double width = span * frac;
    const double lo = domain[0].lo + rng.Uniform(0.0, span - width);
    Box box(domain.size());
    box[0] = Interval{lo, lo + width};
    for (size_t d = 1; d < domain.size(); ++d) {
      const double dspan = domain[d].hi - domain[d].lo;
      const double dlo = domain[d].lo + rng.Uniform(0.0, dspan * 0.5);
      box[d] = Interval{dlo, dlo + dspan * 0.5};
    }
    boxes.push_back(std::move(box));
  }
  return boxes;
}

/// Naive reference: scan every (subscriber, box) pair, then sort+unique
/// like BoxIndex does — the output contract all strategies share.
struct LinearIndex {
  const std::vector<Box>* boxes;

  void Match(const double* point, std::vector<int64_t>* out) const {
    const size_t before = out->size();
    for (size_t i = 0; i < boxes->size(); ++i) {
      if (dsps::interest::BoxContains((*boxes)[i], point)) {
        out->push_back(static_cast<int64_t>(i));
      }
    }
    std::sort(out->begin() + before, out->end());
    out->erase(std::unique(out->begin() + before, out->end()), out->end());
  }
  void MatchOverlap(const Box& query, std::vector<int64_t>* out) const {
    if (dsps::interest::BoxEmpty(query)) return;
    const size_t before = out->size();
    for (size_t i = 0; i < boxes->size(); ++i) {
      const Box& b = (*boxes)[i];
      bool overlaps = true;
      for (size_t d = 0; d < b.size() && overlaps; ++d) {
        overlaps = b[d].Overlaps(query[d]);
      }
      if (overlaps) out->push_back(static_cast<int64_t>(i));
    }
    std::sort(out->begin() + before, out->end());
    out->erase(std::unique(out->begin() + before, out->end()), out->end());
  }
};

double UsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<double> RandomPoint(dsps::common::Rng* rng, const Box& domain) {
  std::vector<double> p(domain.size());
  for (size_t d = 0; d < domain.size(); ++d) {
    p[d] = rng->Uniform(domain[d].lo, domain[d].hi);
  }
  return p;
}

Box RandomQueryBox(dsps::common::Rng* rng, const Box& domain) {
  Box q(domain.size());
  const double span = domain[0].hi - domain[0].lo;
  const double width = span * 0.01;
  const double lo = domain[0].lo + rng->Uniform(0.0, span - width);
  q[0] = Interval{lo, lo + width};
  for (size_t d = 1; d < domain.size(); ++d) q[d] = domain[d];
  return q;
}

struct StrategyResult {
  double build_us = 0.0;
  double lookup_mean_us = 0.0;
  double overlap_mean_us = 0.0;
  int64_t mem_bytes = 0;
  const char* resolved = "";
};

struct TierResult {
  StrategyResult grid;
  StrategyResult spline;
  StrategyResult linear;
  bool has_linear = false;
  int64_t match_checks = 0;
  int64_t overlap_checks = 0;
};

/// Runs one strategy over the tier: timed build, timed lookups, timed
/// overlaps, stats export. `match_out` / `overlap_out` collect the first
/// kChecks results for cross-strategy equality verification.
constexpr int kChecks = 200;

template <typename Index>
StrategyResult RunStrategy(Index& index, const Tier& tier, const Box& domain,
                           double build_us,
                           std::vector<std::vector<int64_t>>* match_out,
                           std::vector<std::vector<int64_t>>* overlap_out,
                           dsps::telemetry::MetricsRegistry* metrics,
                           const dsps::telemetry::Labels& labels) {
  StrategyResult r;
  r.build_us = build_us;
  metrics->gauge("index.build_us", labels)->Set(build_us);
  auto* lookup_us = metrics->histogram("index.lookup_us", labels);
  auto* overlap_us = metrics->histogram("index.overlap_us", labels);

  dsps::common::Rng rng(271828);
  std::vector<int64_t> out;
  double lookup_total = 0.0;
  for (int i = 0; i < tier.lookups; ++i) {
    const std::vector<double> p = RandomPoint(&rng, domain);
    out.clear();
    auto start = std::chrono::steady_clock::now();
    index.Match(p.data(), &out);
    const double us = UsSince(start);
    lookup_us->Observe(us);
    lookup_total += us;
    if (i < kChecks) match_out->push_back(out);
  }
  r.lookup_mean_us = tier.lookups > 0 ? lookup_total / tier.lookups : 0.0;

  dsps::common::Rng orng(314159);
  double overlap_total = 0.0;
  for (int i = 0; i < tier.overlaps; ++i) {
    const Box q = RandomQueryBox(&orng, domain);
    out.clear();
    auto start = std::chrono::steady_clock::now();
    index.MatchOverlap(q, &out);
    const double us = UsSince(start);
    overlap_us->Observe(us);
    overlap_total += us;
    if (i < kChecks) overlap_out->push_back(out);
  }
  r.overlap_mean_us = tier.overlaps > 0 ? overlap_total / tier.overlaps : 0.0;
  return r;
}

void CheckEqual(const std::vector<std::vector<int64_t>>& a,
                const std::vector<std::vector<int64_t>>& b, const char* what,
                size_t boxes, const char* other) {
  if (a == b) return;
  std::fprintf(stderr,
               "E14: %s output mismatch vs %s at %zu boxes — the index "
               "strategies are not interchangeable\n",
               what, other, boxes);
  std::abort();
}

TierResult RunTier(const Tier& tier, dsps::telemetry::MetricsRegistry* metrics) {
  const Box domain{{0.0, 1000.0}, {0.0, 1000.0}, {0.0, 1000.0}};
  const std::vector<Box> boxes = MakeBoxes(tier.boxes, domain, 42 + tier.boxes);
  auto labels_for = [&](const char* strategy) {
    return dsps::telemetry::MakeLabels(
        {{"boxes", std::to_string(tier.boxes)}, {"strategy", strategy}});
  };
  TierResult result;
  std::vector<std::vector<int64_t>> grid_match, grid_overlap;
  std::vector<std::vector<int64_t>> spline_match, spline_overlap;

  {
    BoxIndex::Config cfg;
    cfg.strategy = IndexStrategy::kGrid;
    BoxIndex index(domain, cfg);
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < boxes.size(); ++i) {
      index.Insert(static_cast<int64_t>(i), boxes[i]);
    }
    const double build_us = UsSince(start);
    const dsps::telemetry::Labels labels = labels_for("grid");
    result.grid = RunStrategy(index, tier, domain, build_us, &grid_match,
                              &grid_overlap, metrics, labels);
    dsps::interest::IndexStats stats;
    index.AddStatsTo(&stats);
    result.grid.mem_bytes = stats.mem_bytes;
    result.grid.resolved = index.strategy_name();
    dsps::bench::ExportIndexStats(stats, metrics, labels);
    metrics->gauge("index.build_us", labels)->Set(build_us);
  }
  {
    BoxIndex::Config cfg;
    cfg.strategy = IndexStrategy::kSpline;
    BoxIndex index(domain, cfg);
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < boxes.size(); ++i) {
      index.Insert(static_cast<int64_t>(i), boxes[i]);
    }
    // The first stab pays the lazy spline build; charge it to build time
    // so lookup_us measures steady-state stabs.
    std::vector<double> warm(domain.size(), domain[0].lo);
    std::vector<int64_t> out;
    index.Match(warm.data(), &out);
    const double build_us = UsSince(start);
    const dsps::telemetry::Labels labels = labels_for("spline");
    result.spline = RunStrategy(index, tier, domain, build_us, &spline_match,
                                &spline_overlap, metrics, labels);
    dsps::interest::IndexStats stats;
    index.AddStatsTo(&stats);
    result.spline.mem_bytes = stats.mem_bytes;
    result.spline.resolved = index.strategy_name();
    metrics->gauge("index.mem_bytes", labels)->Set(
        static_cast<double>(stats.mem_bytes));
    dsps::bench::ExportIndexStats(stats, metrics, labels);
    metrics->gauge("index.build_us", labels)->Set(build_us);
  }
  CheckEqual(grid_match, spline_match, "Match", tier.boxes, "spline");
  CheckEqual(grid_overlap, spline_overlap, "MatchOverlap", tier.boxes,
             "spline");
  result.match_checks = static_cast<int64_t>(grid_match.size());
  result.overlap_checks = static_cast<int64_t>(grid_overlap.size());

  if (tier.linear) {
    std::vector<std::vector<int64_t>> linear_match, linear_overlap;
    LinearIndex index{&boxes};
    const dsps::telemetry::Labels labels = labels_for("linear");
    result.linear = RunStrategy(index, tier, domain, 0.0, &linear_match,
                                &linear_overlap, metrics, labels);
    result.linear.mem_bytes = static_cast<int64_t>(
        boxes.size() * (sizeof(int64_t) + 3 * sizeof(Interval)));
    result.linear.resolved = "linear";
    metrics->gauge("index.mem_bytes", labels)->Set(
        static_cast<double>(result.linear.mem_bytes));
    result.has_linear = true;
    CheckEqual(grid_match, linear_match, "Match", tier.boxes, "linear");
    CheckEqual(grid_overlap, linear_overlap, "MatchOverlap", tier.boxes,
               "linear");
  }
  return result;
}

void PrintE14() {
  const std::vector<Tier> tiers = PickTiers();
  dsps::telemetry::BenchReport report("e14_index");
  dsps::telemetry::MetricsRegistry metrics;
  Table table({"boxes", "strategy", "build ms", "lookup us", "overlap us",
               "mem MB", "speedup vs grid"});
  double top_speedup_match = 0.0;
  double top_speedup_overlap = 0.0;
  int64_t match_checks = 0;
  int64_t overlap_checks = 0;
  for (const Tier& tier : tiers) {
    TierResult r = RunTier(tier, &metrics);
    match_checks += r.match_checks;
    overlap_checks += r.overlap_checks;
    auto add_row = [&](const char* name, const StrategyResult& s,
                       double speedup) {
      table.AddRow({Table::Int(static_cast<int64_t>(tier.boxes)), name,
                    Table::Num(s.build_us / 1e3, 2),
                    Table::Num(s.lookup_mean_us, 3),
                    Table::Num(s.overlap_mean_us, 3),
                    Table::Num(s.mem_bytes / 1e6, 2),
                    speedup > 0.0 ? Table::Num(speedup, 2) : std::string("-")});
    };
    const double speedup_match =
        r.spline.lookup_mean_us > 0.0
            ? r.grid.lookup_mean_us / r.spline.lookup_mean_us
            : 0.0;
    const double speedup_overlap =
        r.spline.overlap_mean_us > 0.0
            ? r.grid.overlap_mean_us / r.spline.overlap_mean_us
            : 0.0;
    add_row("grid", r.grid, 0.0);
    add_row("spline", r.spline, speedup_match);
    if (r.has_linear) add_row("linear", r.linear, 0.0);
    // The bar applies to the largest tier that ran.
    if (&tier == &tiers.back()) {
      top_speedup_match = speedup_match;
      top_speedup_overlap = speedup_overlap;
    }
  }
  const size_t boxes_max = tiers.back().boxes;
  table.Print(
      "E14: interest-index strategy sweep (mixed narrow/fat boxes; "
      "speedup = grid lookup mean / spline lookup mean)");

  report.SetHeadline("boxes_max", static_cast<double>(boxes_max));
  report.SetHeadline("spline_speedup_match", top_speedup_match);
  report.SetHeadline("spline_speedup_overlap", top_speedup_overlap);
  report.SetHeadline("match_checks", static_cast<double>(match_checks));
  report.SetHeadline("overlap_checks", static_cast<double>(overlap_checks));
  report.MergeSnapshot(metrics.Snapshot());
  report.WriteFileOrDie();

  // Bars last: the table and the report are on disk for diagnosis before
  // an abort fails the CI leg.
  if (top_speedup_match < kSpeedupBar || top_speedup_overlap < kSpeedupBar) {
    std::fprintf(stderr,
                 "E14: spline speedup below the %.1fx bar at %zu boxes "
                 "(match %.2fx, overlap %.2fx)\n",
                 kSpeedupBar, boxes_max, top_speedup_match,
                 top_speedup_overlap);
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE14();
  return 0;
}
