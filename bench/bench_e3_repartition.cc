// Experiment E3 (Section 3.2.2): adaptive repartitioning of the query
// graph under drift. Compares the two extremes the paper describes
// (from-scratch vs overlap-oblivious incremental moves) with the hybrid
// middle ground, over a sequence of drift episodes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "index_series.h"
#include "interest/box_index.h"
#include "partition/graph_index.h"
#include "partition/repartitioner.h"
#include "telemetry/bench_report.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;
using dsps::partition::HybridRepartitioner;
using dsps::partition::IncrementalRepartitioner;
using dsps::partition::MultilevelPartitioner;
using dsps::partition::QueryGraph;
using dsps::partition::Repartitioner;
using dsps::partition::ScratchRepartitioner;

/// Clustered query graph with per-vertex loads.
QueryGraph MakeGraph(int clusters, int per_cluster,
                     const std::vector<double>& loads, dsps::common::Rng* rng) {
  QueryGraph g;
  int n = clusters * per_cluster;
  for (int i = 0; i < n; ++i) g.AddVertex(i, loads[i]);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bool same = (i / per_cluster) == (j / per_cluster);
      if (same && rng->Bernoulli(0.4)) {
        g.AddEdge(i, j, rng->Uniform(5, 10));
      } else if (!same && rng->Bernoulli(0.01)) {
        g.AddEdge(i, j, rng->Uniform(0.1, 0.5));
      }
    }
  }
  return g;
}

struct EpisodeStats {
  dsps::common::RunningStat cut, imbalance, migrations, decision_ms;
};

/// Runs `rounds` drift episodes: loads drift multiplicatively each round;
/// the repartitioner adapts from the previous assignment.
EpisodeStats RunDrift(Repartitioner* rp, int rounds, uint64_t seed) {
  const int clusters = 8, per_cluster = 64;
  const int n = clusters * per_cluster;
  dsps::common::Rng rng(seed);
  std::vector<double> loads(n);
  for (double& l : loads) l = rng.Uniform(0.5, 1.5);
  // Edge structure is fixed; rebuild graphs with the same edge seed.
  dsps::common::Rng edge_rng(seed + 1);
  QueryGraph g = MakeGraph(clusters, per_cluster, loads, &edge_rng);
  MultilevelPartitioner initial;
  std::vector<int> assignment = initial.Partition(g, clusters, 1.15).value();
  EpisodeStats stats;
  for (int round = 0; round < rounds; ++round) {
    // Drift: one cluster heats up, one cools down.
    int hot = static_cast<int>(rng.NextUint64(clusters));
    int cold = static_cast<int>(rng.NextUint64(clusters));
    for (int v = 0; v < n; ++v) {
      if (v / per_cluster == hot) loads[v] *= rng.Uniform(1.5, 2.0);
      if (v / per_cluster == cold) loads[v] *= rng.Uniform(0.4, 0.7);
    }
    dsps::common::Rng er(seed + 1);
    QueryGraph drifted = MakeGraph(clusters, per_cluster, loads, &er);
    auto result = rp->Repartition(drifted, assignment, clusters, 1.15);
    stats.cut.Add(result.edge_cut);
    stats.imbalance.Add(result.imbalance);
    stats.migrations.Add(result.migrations);
    stats.decision_ms.Add(result.decision_seconds * 1e3);
    assignment = std::move(result.assignment);
  }
  return stats;
}

void BM_Repartition(benchmark::State& state) {
  int which = static_cast<int>(state.range(0));
  ScratchRepartitioner scratch;
  IncrementalRepartitioner inc;
  HybridRepartitioner hybrid;
  Repartitioner* rp = which == 0 ? static_cast<Repartitioner*>(&scratch)
                      : which == 1 ? static_cast<Repartitioner*>(&inc)
                                   : static_cast<Repartitioner*>(&hybrid);
  for (auto _ : state) {
    EpisodeStats s = RunDrift(rp, 3, 11);
    benchmark::DoNotOptimize(s.cut.mean());
  }
  state.SetLabel(rp->name());
}
BENCHMARK(BM_Repartition)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void PrintE3() {
  const int rounds = 10;
  dsps::telemetry::BenchReport report("e3_repartition");
  Table table({"repartitioner", "mean cut B/s", "mean imbalance",
               "migrations/round", "decision ms/round"});
  ScratchRepartitioner scratch;
  IncrementalRepartitioner inc;
  HybridRepartitioner hybrid;
  for (Repartitioner* rp : std::initializer_list<Repartitioner*>{
           &scratch, &inc, &hybrid}) {
    // Each strategy's migration counters land in its own registry slice.
    dsps::telemetry::MetricsRegistry metrics;
    rp->SetMetrics(&metrics);
    EpisodeStats s = RunDrift(rp, rounds, 21);
    table.AddRow({rp->name(), Table::Num(s.cut.mean(), 0),
                  Table::Num(s.imbalance.mean(), 3),
                  Table::Num(s.migrations.mean(), 1),
                  Table::Num(s.decision_ms.mean(), 2)});
    dsps::telemetry::Labels row =
        dsps::telemetry::MakeLabels({{"strategy", rp->name()}});
    report.SetHeadline("cut_mean", s.cut.mean(), row);
    report.SetHeadline("imbalance_mean", s.imbalance.mean(), row);
    report.SetHeadline("migrations_per_round", s.migrations.mean(), row);
    report.MergeSnapshot(metrics.Snapshot());
    rp->SetMetrics(nullptr);
  }
  // Graph-construction cost: the indexed full build (timed as
  // partition.graph_build_us) vs incremental delta maintenance of the
  // same graph under churn (partition.incremental_delta_us per delta).
  {
    auto us_since = [](std::chrono::steady_clock::time_point start) {
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    dsps::telemetry::MetricsRegistry metrics;
    auto* build_us = metrics.histogram("partition.graph_build_us");
    auto* delta_us = metrics.histogram("partition.incremental_delta_us");
    dsps::interest::StreamCatalog catalog;
    dsps::common::Rng srng(5);
    auto streams = dsps::workload::MakeTickerStreams(
        4, dsps::workload::StockTickerGen::Config{}, &catalog, &srng);
    dsps::workload::QueryGen qgen(dsps::workload::QueryGen::Config{}, &catalog,
                                  dsps::common::Rng(6));
    std::vector<dsps::engine::Query> queries = qgen.Batch(512);
    const int reps = 5;
    dsps::interest::IndexStats build_stats;
    for (int rep = 0; rep < reps; ++rep) {
      dsps::interest::IndexStats rep_stats;
      auto start = std::chrono::steady_clock::now();
      QueryGraph g = QueryGraph::Build(queries, catalog, 1e-9, &rep_stats);
      build_us->Observe(us_since(start));
      benchmark::DoNotOptimize(g.total_edge_weight());
      if (rep == reps - 1) build_stats = rep_stats;
    }
    // Index health of the inverted per-stream indexes the build ran on.
    dsps::bench::ExportIndexStats(
        build_stats, &metrics,
        dsps::telemetry::MakeLabels({{"scope", "graph_build"}}));
    // Churn: remove + re-add one query per delta against the live index,
    // the pattern a repartition round sees between rebuild-free rounds.
    dsps::partition::QueryGraphIndex index(&catalog);
    for (const dsps::engine::Query& q : queries) index.AddQuery(q);
    const int deltas = 256;
    for (int i = 0; i < deltas; ++i) {
      const dsps::engine::Query& q = queries[i % queries.size()];
      auto start = std::chrono::steady_clock::now();
      index.RemoveQuery(q.id);
      index.AddQuery(q);
      delta_us->Observe(us_since(start));
    }
    QueryGraph materialized = index.Graph();
    benchmark::DoNotOptimize(materialized.total_edge_weight());
    // The live incremental indexes after the churn phase, plus a lookup
    // probe over the workload's own stream-0 interest boxes so this
    // report carries index.lookup_us / index.build_us / index.mem_bytes.
    dsps::bench::ExportIndexStats(
        index.StreamIndexStats(), &metrics,
        dsps::telemetry::MakeLabels({{"scope", "incremental"}}));
    {
      std::vector<dsps::interest::Box> probe_boxes;
      for (const dsps::engine::Query& q : queries) {
        const std::vector<dsps::interest::Box>* boxes =
            q.interest.boxes_for(0);
        if (boxes == nullptr) continue;
        probe_boxes.insert(probe_boxes.end(), boxes->begin(), boxes->end());
      }
      dsps::bench::RunIndexLookupProbe(
          probe_boxes, catalog.stats(0).domain,
          dsps::bench::IndexProbeConfig{}, &metrics,
          dsps::telemetry::MakeLabels({{"scope", "probe"}}));
    }
    report.SetHeadline("graph_build_queries", queries.size());
    report.SetHeadline("graph_build_edges", materialized.total_edge_weight());
    report.MergeSnapshot(metrics.Snapshot());
    Table graph_table({"operation", "count", "mean us"});
    const dsps::telemetry::MetricsSnapshot snap = metrics.Snapshot();
    if (const auto* s = snap.Find("partition.graph_build_us")) {
      graph_table.AddRow({"full indexed build", Table::Int(s->count),
                          Table::Num(s->mean, 1)});
    }
    if (const auto* s = snap.Find("partition.incremental_delta_us")) {
      graph_table.AddRow({"incremental delta (remove+add)",
                          Table::Int(s->count), Table::Num(s->mean, 1)});
    }
    graph_table.Print(
        "Query-graph construction, 512 queries / 4 streams: indexed full "
        "build vs per-query incremental deltas");
  }
  report.WriteFileOrDie();
  table.Print(
      "E3 (Section 3.2.2): adaptive repartitioning over 10 drift episodes, "
      "512 queries, 8 entities — hybrid holds the cut near from-scratch at "
      "incremental-like migration cost");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE3();
  return 0;
}
