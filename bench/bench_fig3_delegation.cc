// Figure 3 ablation: stream delegation vs a single receiving processor.
// An upstream entity ships many streams into this entity over
// bandwidth-limited links. With delegation each stream enters at its own
// delegate processor (parallel ingress links); with the single-receiver
// baseline every stream funnels through processor 0's ingress link, which
// saturates — "relying on a single processor to receive all the streams is
// not scalable".

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "engine/operators.h"
#include "entity/entity.h"
#include "placement/placement.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

struct DelegationResult {
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double max_ingress_util = 0.0;
  int64_t max_ingress_bytes = 0;
  int64_t results = 0;
};

dsps::engine::Query WideQuery(dsps::common::QueryId id,
                              dsps::common::StreamId stream) {
  dsps::engine::Query q;
  q.id = id;
  auto plan = std::make_shared<dsps::engine::QueryPlan>();
  dsps::interest::Box box{{-1e9, 1e9}, {-1e9, 1e9}, {-1e9, 1e9}};
  auto f = plan->AddOperator(std::make_unique<dsps::engine::FilterOp>(
      std::vector<int>{0, 1, 2}, box));
  if (!plan->BindStream(stream, f, 0).ok()) std::abort();
  q.plan = plan;
  q.interest.Add(stream, box);
  return q;
}

DelegationResult Run(int processors, int streams, bool single_receiver,
                     double duration, double ingress_bandwidth_bps) {
  dsps::sim::Simulator sim;
  dsps::sim::Network net(&sim);
  auto upstream = net.AddNode({100, 0});
  std::vector<dsps::common::SimNodeId> nodes;
  for (int p = 0; p < processors; ++p) {
    nodes.push_back(net.AddNode({0.01 * p, 0}));
  }
  // Upstream->processor links have the given (tight) bandwidth; the LAN
  // between processors stays fast.
  for (auto node : nodes) {
    net.SetLink(upstream, node,
                dsps::sim::LinkParams{0.002, ingress_bandwidth_bps});
  }
  dsps::placement::PrAwarePlacement policy;
  dsps::entity::Entity::Config cfg;
  cfg.distribution_limit = 1;
  cfg.single_receiver = single_receiver;
  dsps::entity::Entity ent(0, &net, nodes,
                           [] {
                             return std::unique_ptr<dsps::engine::ExecutionEngine>(
                                 new dsps::engine::BasicEngine());
                           },
                           &policy, cfg);
  ent.InstallHandlers();
  dsps::common::Histogram latency;
  ent.SetResultHandler(
      [&latency](const dsps::entity::Entity::ResultRecord& rec,
                 const dsps::engine::Tuple&) { latency.Add(rec.latency); });
  for (int s = 0; s < streams; ++s) {
    if (!ent.InstallQuery(WideQuery(s + 1, s), 100.0).ok()) std::abort();
  }

  // The upstream node ships each stream straight to the stream's receiving
  // processor (the delegate, or processor 0 under single-receiver).
  dsps::common::Rng rng(9);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 120.0;
  dsps::interest::StreamCatalog scratch;
  auto gens = dsps::workload::MakeTickerStreams(streams, tcfg, &scratch, &rng);
  std::function<void(int, double)> schedule = [&](int s, double end) {
    double t = sim.now() + rng.Exponential(tcfg.tuples_per_s);
    if (t > end) return;
    sim.ScheduleAt(t, [&, s, end]() {
      dsps::engine::Tuple tuple = gens[s]->Next(sim.now());
      dsps::entity::StreamTupleEnvelope env;
      env.tuple = std::make_shared<const dsps::engine::Tuple>(tuple);
      dsps::sim::Message msg;
      msg.from = upstream;
      msg.to = ent.processor(ent.DelegateFor(s))->node();
      msg.type = dsps::entity::kMsgStreamTuple;
      msg.size_bytes = tuple.SizeBytes();
      msg.payload = std::move(env);
      if (!net.Send(std::move(msg)).ok()) std::abort();
      schedule(s, end);
    });
  };
  for (int s = 0; s < streams; ++s) schedule(s, duration);
  sim.RunUntil(duration + 5.0);

  DelegationResult r;
  r.p50_latency = latency.p50();
  r.p99_latency = latency.p99();
  r.results = ent.results_count();
  for (auto node : nodes) {
    int64_t bytes = net.link_stats(upstream, node).bytes;
    r.max_ingress_bytes = std::max(r.max_ingress_bytes, bytes);
  }
  r.max_ingress_util = static_cast<double>(r.max_ingress_bytes) /
                       (ingress_bandwidth_bps * duration);
  return r;
}

void BM_Delegation(benchmark::State& state) {
  bool single = state.range(0) != 0;
  for (auto _ : state) {
    DelegationResult r = Run(8, 16, single, 0.5, 2e5);
    benchmark::DoNotOptimize(r.results);
  }
  state.SetLabel(single ? "single-receiver" : "delegation");
}
BENCHMARK(BM_Delegation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void PrintFigure3() {
  // Ingress links carry ~5.3 KB/s per stream; 200 KB/s links saturate a
  // single receiver around 38 streams.
  const double bandwidth = 2e5;
  dsps::telemetry::BenchReport report("fig3_delegation");
  Table table({"procs", "streams", "scheme", "p50 lat ms", "p99 lat ms",
               "max ingress util", "max ingress KB", "results"});
  for (int procs : {8, 16}) {
    for (int streams : {8, 32, 64}) {
      for (bool single : {false, true}) {
        DelegationResult r = Run(procs, streams, single, 3.0, bandwidth);
        table.AddRow({Table::Int(procs), Table::Int(streams),
                      single ? "single-receiver" : "delegation",
                      Table::Num(r.p50_latency * 1e3, 2),
                      Table::Num(r.p99_latency * 1e3, 2),
                      Table::Num(r.max_ingress_util, 3),
                      Table::Num(r.max_ingress_bytes / 1e3, 1),
                      Table::Int(r.results)});
        dsps::telemetry::Labels row = dsps::telemetry::MakeLabels(
            {{"procs", std::to_string(procs)},
             {"streams", std::to_string(streams)},
             {"scheme", single ? "single-receiver" : "delegation"}});
        report.SetHeadline("latency_p99_ms", r.p99_latency * 1e3, row);
        report.SetHeadline("max_ingress_util", r.max_ingress_util, row);
        report.SetHeadline("results", r.results, row);
      }
    }
  }
  report.WriteFileOrDie();
  table.Print(
      "Figure 3 (measured): stream delegation vs single receiver — the "
      "single ingress link saturates as streams grow; delegation "
      "parallelizes ingress");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintFigure3();
  return 0;
}
