// Figure 1 viability: the full two-layer architecture under growing scale.
// Sweeps the number of entities and reports end-to-end throughput,
// latency, WAN traffic and source load — the architecture should scale
// without the sources or any single site becoming the bottleneck.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/table.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

struct RunResult {
  dsps::system::SystemMetrics metrics;
  double duration = 1.0;
};

RunResult RunScale(int entities, int queries, double duration,
                   dsps::telemetry::MetricsRegistry* metrics = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = entities;
  cfg.topology.processors_per_entity = 4;
  cfg.topology.num_sources = 4;
  cfg.allocation = dsps::system::AllocationMode::kCoordinatorTree;
  cfg.seed = 7;
  cfg.metrics = metrics;
  dsps::system::System sys(cfg);

  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 150.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(3);
  sys.AddStreams(dsps::workload::MakeTickerStreams(4, tcfg, &scratch, &rng));

  dsps::workload::QueryGen::Config qcfg;
  qcfg.join_prob = 0.05;
  qcfg.agg_prob = 0.15;
  dsps::workload::QueryGen gen(qcfg, &sys.catalog(), dsps::common::Rng(11));
  for (const auto& q : gen.Batch(queries)) {
    dsps::common::Status s = sys.SubmitQuery(q);
    if (!s.ok()) std::abort();
  }
  sys.GenerateTraffic(duration);
  sys.RunUntil(duration + 1.0);
  return RunResult{sys.Collect(), duration};
}

void BM_EndToEnd(benchmark::State& state) {
  int entities = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunResult r = RunScale(entities, entities * 4, 1.0);
    benchmark::DoNotOptimize(r.metrics.results);
  }
}
BENCHMARK(BM_EndToEnd)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void PrintFigure1() {
  dsps::telemetry::BenchReport report("fig1_end_to_end");
  Table table({"entities", "queries", "results/s", "p50 lat ms", "p99 lat ms",
               "WAN MB", "source MB", "src fanout", "max util %"});
  for (int entities : {4, 8, 16, 32}) {
    // Per-row registry: each scale point's full metric snapshot lands in
    // the report labeled with its sweep coordinate.
    dsps::telemetry::MetricsRegistry row_metrics;
    RunResult r = RunScale(entities, entities * 6, 3.0, &row_metrics);
    const auto& m = r.metrics;
    table.AddRow({Table::Int(entities), Table::Int(entities * 6),
                  Table::Num(m.results / r.duration, 0),
                  Table::Num(m.latency.p50() * 1e3, 2),
                  Table::Num(m.latency.p99() * 1e3, 2),
                  Table::Num(m.wan_bytes / 1e6, 2),
                  Table::Num(m.source_egress_bytes / 1e6, 2),
                  Table::Int(m.max_source_fanout),
                  Table::Num(m.max_processor_utilization * 100, 3)});
    dsps::telemetry::Labels row =
        dsps::telemetry::MakeLabels({{"entities", std::to_string(entities)}});
    report.SetHeadline("results_per_s", m.results / r.duration, row);
    report.SetHeadline("latency_p99_ms", m.latency.p99() * 1e3, row);
    report.SetHeadline("wan_mb", m.wan_bytes / 1e6, row);
    report.MergeSnapshot(row_metrics.Snapshot(), row);
  }
  table.Print(
      "Figure 1 (measured): two-layer architecture scalability, 4 procs per "
      "entity, 4 streams, 6 queries per entity");
  report.WriteFileOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintFigure1();
  return 0;
}
