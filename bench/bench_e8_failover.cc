// Experiment E8 (loose-coupling payoff under churn): an entity fails
// mid-run; the coordinator tree repairs, the dissemination trees detach
// it, and its queries are re-homed on the survivors. The time series of
// per-interval result rates shows the dip and recovery — no global
// reconfiguration, exactly the deployment property Section 2 argues
// loose coupling buys.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/table.h"
#include "engine/query_builder.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

struct FailoverRun {
  std::vector<int64_t> results_per_interval;
  int rehomed = 0;
  int64_t lost_queries = 0;
};

FailoverRun Run(bool with_failure,
                dsps::telemetry::MetricsRegistry* metrics = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 8;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.allocation = dsps::system::AllocationMode::kCoordinatorTree;
  cfg.seed = 99;
  cfg.metrics = metrics;
  dsps::system::System sys(cfg);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 200.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));

  // Wide filter queries so results flow steadily.
  for (int i = 1; i <= 24; ++i) {
    auto q = dsps::engine::QueryBuilder(i).From(i % 2, sys.catalog()).Build();
    if (!q.ok()) std::abort();
    if (!sys.SubmitQuery(q.value()).ok()) std::abort();
  }

  const double duration = 8.0;
  const double fail_at = 3.0;
  sys.GenerateTraffic(duration);

  FailoverRun run;
  int64_t last_results = 0;
  for (int interval = 0; interval < static_cast<int>(duration); ++interval) {
    double t_end = interval + 1.0;
    if (with_failure && t_end > fail_at &&
        static_cast<double>(interval) <= fail_at) {
      // Run to the failure instant, fail, then continue the interval.
      sys.RunUntil(fail_at);
      auto rehomed = sys.FailEntity(0);
      if (rehomed.ok()) run.rehomed = rehomed.value();
    }
    sys.RunUntil(t_end);
    int64_t now_results = sys.Collect().results;
    run.results_per_interval.push_back(now_results - last_results);
    last_results = now_results;
  }
  sys.RunUntil(duration + 1.0);
  // Queries without a live home at the end (should be zero).
  for (int i = 1; i <= 24; ++i) {
    if (sys.EntityOf(i) == dsps::common::kInvalidEntity) ++run.lost_queries;
  }
  return run;
}

void BM_Failover(benchmark::State& state) {
  for (auto _ : state) {
    FailoverRun r = Run(true);
    benchmark::DoNotOptimize(r.rehomed);
  }
}
BENCHMARK(BM_Failover)->Unit(benchmark::kMillisecond);

void PrintE8() {
  dsps::telemetry::BenchReport report("e8_failover");
  dsps::telemetry::MetricsRegistry failed_metrics;
  FailoverRun healthy = Run(false);
  FailoverRun failed = Run(true, &failed_metrics);
  Table table({"interval (s)", "results/s healthy", "results/s with failure"});
  for (size_t i = 0; i < healthy.results_per_interval.size(); ++i) {
    table.AddRow({Table::Int(static_cast<int64_t>(i)),
                  Table::Int(healthy.results_per_interval[i]),
                  Table::Int(failed.results_per_interval[i])});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"interval", std::to_string(i)}});
    report.SetHeadline("results_healthy", healthy.results_per_interval[i],
                       labels);
    report.SetHeadline("results_failed", failed.results_per_interval[i],
                       labels);
  }
  report.SetHeadline("rehomed", failed.rehomed);
  report.SetHeadline("lost_queries", failed.lost_queries);
  report.MergeSnapshot(failed_metrics.Snapshot());
  report.WriteFileOrDie();
  table.Print(
      "E8: entity failure at t=3s — queries re-homed on survivors "
      "(rehomed=" +
      std::to_string(failed.rehomed) +
      ", lost=" + std::to_string(failed.lost_queries) +
      "); the result rate barely moves — failover is seamless");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE8();
  return 0;
}
