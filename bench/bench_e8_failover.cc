// Experiment E8 (loose-coupling payoff under churn): an entity fails
// mid-run; the coordinator tree repairs, the dissemination trees detach
// it, and its queries are re-homed on the survivors. Three scenarios:
//
//  * healthy          — no failure, the baseline result rate;
//  * oracle failure   — FailEntity announced to the system (the seed's
//                       scenario: repair cost without detection cost);
//  * detected failure — the full pipeline: a crash is *injected* at the
//                       network level (plus background message loss),
//                       heartbeats stop arriving, the sweep detects the
//                       silence, the repair path re-homes the orphans,
//                       and the entity re-joins after its crash window.
//
// Headlines cover detection latency, messages-to-repair, heartbeat cost,
// recovery time of the result rate, and the orphan accounting invariant:
// every orphaned query is re-homed or explicitly reported as unplaced.
//
// The declustered-placement sections extend the experiment:
//
//  * survivor sweep    — placement-map clusters of 4/6/8/12 entities lose
//                        one entity; orphans fan out to their precomputed
//                        standbys in parallel. Recovery time must shrink
//                        as the survivor count grows, and the parallel
//                        fan-out must beat the serial re-home chain;
//  * domain crash      — a whole fault domain (2 of 8 entities) dies as
//                        one correlated event; heartbeat detection plus
//                        declustered recovery must lose zero queries;
//  * strategy table    — cut/imbalance/survivor-migrations of the
//                        post-failure assignment: placement_map vs the
//                        scratch/incremental/hybrid repartitioners.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/table.h"
#include "engine/query_builder.h"
#include "partition/partitioner.h"
#include "partition/repartitioner.h"
#include "placement/placement_map.h"
#include "system/auditor.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "telemetry/timeseries.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

constexpr double kDuration = 8.0;
constexpr double kFailAt = 3.0;
constexpr double kRecoverAt = 6.0;
constexpr int kNumQueries = 24;

enum class Scenario { kHealthy, kOracleFailure, kDetectedFailure };

struct FailoverRun {
  std::vector<int64_t> results_per_interval;
  int orphans = 0;
  int rehomed = 0;
  int unplaced = 0;
  int64_t lost_queries = 0;
  dsps::system::System::FailureStats failure_stats;
  int64_t dropped_messages = 0;
  int64_t dissemination_retries = 0;
  double recovery_time_s = -1.0;
  /// Anomaly-watchdog accounting (DSPS_WATCHDOG legs only).
  bool watchdog_on = false;
  int64_t anomalies_pre_fail = 0;
  int64_t anomalies = 0;
  int64_t entity_loss_triggers = 0;
  int64_t retry_storm_triggers = 0;
};

FailoverRun Run(Scenario scenario,
                dsps::telemetry::MetricsRegistry* metrics = nullptr,
                dsps::telemetry::TimeSeriesRecorder* series = nullptr,
                std::string* audit_report = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 8;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.allocation = dsps::system::AllocationMode::kCoordinatorTree;
  cfg.seed = 99;
  cfg.metrics = metrics;
  if (scenario == Scenario::kDetectedFailure) {
    cfg.inject_faults = true;
    cfg.faults.seed = 17;
    cfg.faults.loss_probability = 0.02;  // background WAN loss
    cfg.dissemination.reliable = true;   // exactly-once hops on top of it
    cfg.dissemination.retry_timeout_s = 0.05;
  }
  dsps::system::System sys(cfg);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 200.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));

  // Wide filter queries so results flow steadily.
  for (int i = 1; i <= kNumQueries; ++i) {
    auto q = dsps::engine::QueryBuilder(i).From(i % 2, sys.catalog()).Build();
    if (!q.ok()) std::abort();
    if (!sys.SubmitQuery(q.value()).ok()) std::abort();
  }

  if (scenario == Scenario::kDetectedFailure) {
    dsps::system::System::FailureDetectionConfig det;
    det.heartbeat_period_s = 0.25;
    det.timeout_s = 0.75;
    det.sweep_period_s = 0.25;
    sys.EnableFailureDetection(det, kDuration + 2.0);
    sys.ScheduleCrash(0, kFailAt, kRecoverAt);
  }
  // Adaptation-trajectory sampling and the invariant auditor are both
  // read-only observers: enabling them cannot change the run's results.
  if (series != nullptr) {
    sys.EnableTimeSeries(series, series->config().interval_s,
                         kDuration + 1.0);
  }
  double audit_s = dsps::system::AuditIntervalFromEnv();
  if (audit_report != nullptr && audit_s > 0) {
    sys.EnableAudit(audit_s, kDuration + 1.0);
  }
  // DSPS_WATCHDOG legs run every scenario under the anomaly watchdog:
  // silent while healthy, while the detected scenario must flag both its
  // reliable-delivery retry storm (2% WAN loss) and the entity_loss
  // eviction when the sweep notices the crashed entity's silence.
  double watchdog_s = dsps::system::WatchdogIntervalFromEnv();
  if (watchdog_s > 0) {
    sys.EnableWatchdog(watchdog_s, kDuration + 1.0);
  }
  sys.GenerateTraffic(kDuration);

  FailoverRun run;
  int64_t pre_fail_anomalies = 0;
  int64_t last_results = 0;
  for (int interval = 0; interval < static_cast<int>(kDuration); ++interval) {
    double t_end = interval + 1.0;
    if (scenario != Scenario::kHealthy && t_end > kFailAt &&
        static_cast<double>(interval) <= kFailAt) {
      // Run to the failure instant; count the orphans-to-be, then fail
      // (oracle) or let the injected crash + heartbeat sweep do it.
      sys.RunUntil(kFailAt);
      if (sys.watchdog() != nullptr) {
        pre_fail_anomalies = sys.watchdog()->anomalies();
      }
      for (int i = 1; i <= kNumQueries; ++i) {
        if (sys.EntityOf(i) == 0) ++run.orphans;
      }
      if (scenario == Scenario::kOracleFailure) {
        auto rehomed = sys.FailEntity(0);
        if (rehomed.ok()) run.rehomed = rehomed.value();
      }
    }
    sys.RunUntil(t_end);
    int64_t now_results = sys.Collect().results;
    run.results_per_interval.push_back(now_results - last_results);
    last_results = now_results;
  }
  sys.RunUntil(kDuration + 1.0);

  run.failure_stats = sys.failure_stats();
  if (scenario == Scenario::kDetectedFailure) {
    run.rehomed = run.failure_stats.queries_rehomed;
  }
  run.unplaced = sys.unplaced_count();
  run.dropped_messages = sys.Collect().dropped_messages;
  run.dissemination_retries = sys.disseminator()->retries_count();
  if (sys.watchdog() != nullptr) {
    run.watchdog_on = true;
    run.anomalies_pre_fail = pre_fail_anomalies;
    run.anomalies = sys.watchdog()->anomalies();
    run.entity_loss_triggers = sys.watchdog()->triggers("entity_loss");
    run.retry_storm_triggers = sys.watchdog()->triggers("retry_storm");
  }

  // Recovery time: from the failure instant until the per-second result
  // rate is back to >= 90% of the pre-failure average.
  if (scenario != Scenario::kHealthy) {
    double before = 0.0;
    for (int i = 0; i < static_cast<int>(kFailAt); ++i) {
      before += static_cast<double>(run.results_per_interval[i]);
    }
    before /= kFailAt;
    for (size_t i = static_cast<size_t>(kFailAt);
         i < run.results_per_interval.size(); ++i) {
      if (static_cast<double>(run.results_per_interval[i]) >= 0.9 * before) {
        run.recovery_time_s = (static_cast<double>(i) + 1.0) - kFailAt;
        break;
      }
    }
  }

  // Queries without a live home at the end. Unplaced ones are reported —
  // the failure-accounting invariant is: every orphan is either re-homed
  // or sitting in the unplaced queue; none may simply vanish.
  for (int i = 1; i <= kNumQueries; ++i) {
    if (sys.EntityOf(i) == dsps::common::kInvalidEntity) ++run.lost_queries;
  }
  if (run.lost_queries != run.unplaced ||
      run.rehomed + run.unplaced < run.orphans) {
    std::fprintf(stderr,
                 "E8: orphan accounting violated: orphans=%d rehomed=%d "
                 "unplaced=%d lost=%lld\n",
                 run.orphans, run.rehomed, run.unplaced,
                 static_cast<long long>(run.lost_queries));
    std::abort();
  }
  if (audit_report != nullptr && sys.auditor() != nullptr) {
    *audit_report = sys.auditor()->ReportJson();
  }
  return run;
}

// ---------------------------------------------------------------------------
// Declustered placement-map recovery.

/// Queries admitted to every placement-map scenario: fixed across the
/// survivor sweep so only the cluster size varies.
constexpr int kMapQueries = 48;
constexpr double kMapFailAt = 1.0;

dsps::engine::Query MapQuery(int id, dsps::system::System* sys) {
  auto q = dsps::engine::QueryBuilder(id).From(id % 2, sys->catalog()).Build();
  if (!q.ok()) std::abort();
  dsps::engine::Query query = q.value();
  query.load = 0.1;  // 48 queries fit on 3 survivors of 2.0 capacity each
  return query;
}

struct MapRecoveryRun {
  int survivors = 0;
  int orphans = 0;
  int unplaced = 0;
  /// Eviction instant -> last orphan re-installed.
  double recovery_time_s = -1.0;
  int64_t rehome_batches = 0;
  /// Distinct survivors the orphans landed on (declustering width).
  int fallback_entities = 0;
};

MapRecoveryRun RunMapRecovery(
    int num_entities, bool parallel,
    dsps::telemetry::TimeSeriesRecorder* series = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = num_entities;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.topology.num_fault_domains = num_entities / 2;
  cfg.allocation = dsps::system::AllocationMode::kPlacementMap;
  cfg.recovery.parallel = parallel;
  cfg.seed = 99;
  dsps::system::System sys(cfg);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 200.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));
  for (int i = 1; i <= kMapQueries; ++i) {
    if (!sys.SubmitQuery(MapQuery(i, &sys)).ok()) std::abort();
  }
  if (series != nullptr) {
    sys.EnableTimeSeries(series, series->config().interval_s, kMapFailAt + 4.0);
  }
  sys.RunUntil(kMapFailAt);

  MapRecoveryRun run;
  run.survivors = num_entities - 1;
  std::vector<int> orphan_ids;
  for (int i = 1; i <= kMapQueries; ++i) {
    if (sys.EntityOf(i) == 0) orphan_ids.push_back(i);
  }
  run.orphans = static_cast<int>(orphan_ids.size());
  if (!sys.FailEntity(0).ok()) std::abort();
  // Recovery is asynchronous: step the clock in fine increments and stop
  // the watch when the last orphan is re-installed.
  while (sys.now() < kMapFailAt + 10.0 && sys.unplaced_count() > 0) {
    sys.RunUntil(sys.now() + 0.002);
  }
  run.recovery_time_s = sys.now() - kMapFailAt;
  sys.RunUntil(sys.now() + 0.5);  // let the series window flush
  run.unplaced = sys.unplaced_count();
  run.rehome_batches = sys.failure_stats().rehome_batches;
  std::set<dsps::common::EntityId> fallbacks;
  for (int id : orphan_ids) {
    dsps::common::EntityId home = sys.EntityOf(id);
    if (home == dsps::common::kInvalidEntity || !sys.IsAlive(home)) {
      std::fprintf(stderr, "E8 map: orphan %d lost after recovery\n", id);
      std::abort();
    }
    fallbacks.insert(home);
  }
  run.fallback_entities = static_cast<int>(fallbacks.size());
  if (run.unplaced != 0) {
    std::fprintf(stderr, "E8 map: %d queries still unplaced\n", run.unplaced);
    std::abort();
  }
  return run;
}

struct DomainCrashRun {
  int orphans = 0;
  int rehomed = 0;
  int unplaced = 0;
  int lost = 0;
  int64_t correlated_events = 0;
  /// Crash instant -> detection + declustered re-home all done.
  double recovery_time_s = -1.0;
  dsps::system::System::FailureStats failure_stats;
};

/// Fault domain 0 — two of eight entities — dies as one correlated event
/// at t=3s. Nothing is announced: heartbeats go silent, the sweep evicts
/// both members, and the placement map fans their orphans out to the six
/// survivors. The acceptance bar is zero lost queries.
DomainCrashRun RunDomainCrash(
    dsps::telemetry::TimeSeriesRecorder* series = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 8;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.topology.num_fault_domains = 4;
  cfg.allocation = dsps::system::AllocationMode::kPlacementMap;
  cfg.seed = 99;
  cfg.inject_faults = true;
  cfg.faults.seed = 17;
  dsps::system::System sys(cfg);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 200.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));
  for (int i = 1; i <= kMapQueries; ++i) {
    if (!sys.SubmitQuery(MapQuery(i, &sys)).ok()) std::abort();
  }
  dsps::system::System::FailureDetectionConfig det;
  det.heartbeat_period_s = 0.25;
  det.timeout_s = 0.75;
  det.sweep_period_s = 0.25;
  sys.EnableFailureDetection(det, kDuration + 2.0);
  if (series != nullptr) {
    sys.EnableTimeSeries(series, series->config().interval_s, kDuration + 1.0);
  }
  sys.GenerateTraffic(kDuration);
  sys.ScheduleDomainCrash(/*domain=*/0, /*crash_at=*/kFailAt,
                          /*recover_at=*/kDuration + 50.0);

  sys.RunUntil(kFailAt);
  DomainCrashRun run;
  std::vector<dsps::common::EntityId> domain0 = sys.EntitiesInDomain(0);
  for (int i = 1; i <= kMapQueries; ++i) {
    for (dsps::common::EntityId e : domain0) {
      if (sys.EntityOf(i) == e) ++run.orphans;
    }
  }
  // Detection + recovery completion: both members evicted and every
  // orphan re-installed (the clock includes the heartbeat silence).
  while (sys.now() < kDuration) {
    int evicted = 0;
    for (dsps::common::EntityId e : domain0) {
      if (!sys.IsAlive(e)) ++evicted;
    }
    if (evicted == static_cast<int>(domain0.size()) &&
        sys.unplaced_count() == 0 && run.recovery_time_s < 0) {
      run.recovery_time_s = sys.now() - kFailAt;
      break;
    }
    sys.RunUntil(sys.now() + 0.01);
  }
  sys.RunUntil(kDuration + 1.0);

  run.failure_stats = sys.failure_stats();
  run.rehomed = run.failure_stats.queries_rehomed;
  run.unplaced = sys.unplaced_count();
  run.correlated_events = sys.fault_injector()->correlated_crash_events();
  for (int i = 1; i <= kMapQueries; ++i) {
    dsps::common::EntityId home = sys.EntityOf(i);
    if (home == dsps::common::kInvalidEntity || !sys.IsAlive(home)) ++run.lost;
  }
  if (run.lost != 0 || run.unplaced != 0) {
    std::fprintf(stderr,
                 "E8 domain crash: %d lost / %d unplaced queries "
                 "(acceptance bar is zero)\n",
                 run.lost, run.unplaced);
    std::abort();
  }
  return run;
}

// ---------------------------------------------------------------------------
// Post-failure assignment quality: placement map vs repartitioners.

std::vector<int> BlockDomains(int entities, int domains) {
  std::vector<int> d(entities);
  for (int e = 0; e < entities; ++e) {
    d[e] = static_cast<int>(static_cast<int64_t>(e) * domains / entities);
  }
  return d;
}

struct StrategyRow {
  std::string name;
  double edge_cut = 0.0;
  double imbalance = 1.0;
  /// Surviving queries whose home changed because of the failure — the
  /// repartitioners may shuffle survivors to restore balance; the
  /// placement map's minimal-disruption property keeps this at zero.
  int survivor_migrations = 0;
};

std::vector<StrategyRow> CompareStrategies() {
  const int kEntities = 8, kDomains = 4, kGraphQueries = 256;
  dsps::interest::StreamCatalog catalog;
  dsps::common::Rng rng(5);
  dsps::workload::MakeTickerStreams(4, dsps::workload::StockTickerGen::Config{},
                                    &catalog, &rng);
  dsps::workload::QueryGen::Config qcfg;
  qcfg.join_prob = 0.0;
  qcfg.hotspot_prob = 0.8;
  qcfg.num_hotspots = 6;
  dsps::workload::QueryGen gen(qcfg, &catalog, dsps::common::Rng(6));
  std::vector<dsps::engine::Query> queries = gen.Batch(kGraphQueries);
  dsps::partition::QueryGraph graph =
      dsps::partition::QueryGraph::Build(queries, catalog);

  // The pre-failure baseline both sides adapt from.
  dsps::partition::MultilevelPartitioner initial;
  auto part = initial.Partition(graph, kEntities, 1.15);
  if (!part.ok()) std::abort();
  std::vector<int> before = part.value();

  // Entity 0 dies. Survivor parts relabel to [0, k-1); its vertices are
  // orphans (-1) that every strategy must place somewhere.
  std::vector<int> old_assignment(before.size());
  for (size_t v = 0; v < before.size(); ++v) {
    old_assignment[v] = before[v] == 0 ? -1 : before[v] - 1;
  }

  std::vector<StrategyRow> rows;
  for (const char* name : {"scratch", "incremental", "hybrid"}) {
    auto rp = dsps::partition::MakeRepartitioner(name);
    if (rp == nullptr) std::abort();
    auto result =
        rp->Repartition(graph, old_assignment, kEntities - 1, 1.15);
    StrategyRow row;
    row.name = name;
    row.edge_cut = result.edge_cut;
    row.imbalance = result.imbalance;
    row.survivor_migrations =
        dsps::partition::CountMigrations(old_assignment, result.assignment);
    rows.push_back(row);
  }

  // Placement map: same queries, same failure. Survivor homes are
  // untouched by construction — only the dead entity's targets change.
  dsps::placement::PlacementMap map(BlockDomains(kEntities, kDomains), {});
  std::vector<int> map_before(queries.size());
  for (size_t v = 0; v < queries.size(); ++v) {
    map_before[v] = static_cast<int>(map.Primary(queries[v].id));
  }
  map.SetAlive(0, false);
  StrategyRow row;
  row.name = "placement_map";
  std::vector<int> map_after(queries.size());
  for (size_t v = 0; v < queries.size(); ++v) {
    int home = static_cast<int>(map.Primary(queries[v].id));
    if (map_before[v] != 0 && home != map_before[v]) {
      ++row.survivor_migrations;
    }
    map_after[v] = home - 1;  // entity 0 is dead: homes are 1..7
  }
  dsps::partition::AssignmentQuality q =
      dsps::partition::EvaluateAssignment(graph, map_after, kEntities - 1);
  row.edge_cut = q.edge_cut;
  row.imbalance = q.imbalance;
  rows.push_back(row);
  return rows;
}

void BM_Failover(benchmark::State& state) {
  for (auto _ : state) {
    FailoverRun r = Run(Scenario::kOracleFailure);
    benchmark::DoNotOptimize(r.rehomed);
  }
}
BENCHMARK(BM_Failover)->Unit(benchmark::kMillisecond);

void BM_DetectedFailover(benchmark::State& state) {
  for (auto _ : state) {
    FailoverRun r = Run(Scenario::kDetectedFailure);
    benchmark::DoNotOptimize(r.rehomed);
  }
}
BENCHMARK(BM_DetectedFailover)->Unit(benchmark::kMillisecond);

void BM_MapFailover(benchmark::State& state) {
  int num_entities = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MapRecoveryRun r = RunMapRecovery(num_entities, /*parallel=*/true);
    benchmark::DoNotOptimize(r.recovery_time_s);
  }
}
BENCHMARK(BM_MapFailover)->Arg(4)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);

void PrintE8() {
  dsps::telemetry::BenchReport report("e8_failover");
  dsps::telemetry::MetricsRegistry failed_metrics;
  // Half-second trajectory sampling: fine enough to show the result-rate
  // dip at t=3s, the repair, and the re-join at t=6s.
  dsps::telemetry::TimeSeriesRecorder::Config scfg;
  scfg.interval_s = 0.5;
  dsps::telemetry::TimeSeriesRecorder healthy_series(scfg);
  dsps::telemetry::TimeSeriesRecorder detected_series(scfg);
  std::string audit_report;
  FailoverRun healthy = Run(Scenario::kHealthy, nullptr, &healthy_series);
  FailoverRun failed = Run(Scenario::kOracleFailure, &failed_metrics);
  FailoverRun detected =
      Run(Scenario::kDetectedFailure, nullptr, &detected_series,
          &audit_report);
  Table table({"interval (s)", "results/s healthy", "results/s oracle fail",
               "results/s detected fail"});
  for (size_t i = 0; i < healthy.results_per_interval.size(); ++i) {
    table.AddRow({Table::Int(static_cast<int64_t>(i)),
                  Table::Int(healthy.results_per_interval[i]),
                  Table::Int(failed.results_per_interval[i]),
                  Table::Int(detected.results_per_interval[i])});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"interval", std::to_string(i)}});
    report.SetHeadline("results_healthy", healthy.results_per_interval[i],
                       labels);
    report.SetHeadline("results_failed", failed.results_per_interval[i],
                       labels);
    report.SetHeadline("results_detected", detected.results_per_interval[i],
                       labels);
  }
  report.SetHeadline("rehomed", failed.rehomed);
  report.SetHeadline("lost_queries", failed.lost_queries);
  // The detection pipeline: crash -> heartbeat silence -> sweep -> repair.
  const dsps::system::System::FailureStats& fs = detected.failure_stats;
  report.SetHeadline("detected_orphans", detected.orphans);
  report.SetHeadline("detected_rehomed", detected.rehomed);
  report.SetHeadline("detected_unplaced", detected.unplaced);
  report.SetHeadline("detections", fs.detections);
  report.SetHeadline("readmissions", fs.readmissions);
  report.SetHeadline("detection_latency_ms",
                     fs.detection_latency.mean() * 1e3);
  report.SetHeadline("heartbeat_messages",
                     static_cast<double>(fs.heartbeat_messages));
  report.SetHeadline("repair_messages",
                     static_cast<double>(fs.repair_messages));
  report.SetHeadline("recovery_time_s", detected.recovery_time_s);
  report.SetHeadline("dropped_messages",
                     static_cast<double>(detected.dropped_messages));
  report.SetHeadline("dissemination_retries",
                     static_cast<double>(detected.dissemination_retries));
  // DSPS_WATCHDOG legs: the healthy run must be anomaly-free end to end
  // and the oracle run quiet up to the announced failure (those phases
  // are unperturbed), while the detected run — a lossy WAN plus a real
  // crash — must flag both pathologies it actually contains: the
  // reliable-delivery retry storm and the sweep's eviction of the silent
  // entity. Headlines exist only when the watchdog ran, so the default
  // report stays bit-identical with the health layer off.
  if (detected.watchdog_on) {
    report.SetHeadline("watchdog_anomalies_healthy",
                       static_cast<double>(healthy.anomalies));
    report.SetHeadline("watchdog_anomalies_detected",
                       static_cast<double>(detected.anomalies));
    report.SetHeadline("watchdog_entity_loss_triggers",
                       static_cast<double>(detected.entity_loss_triggers));
    report.SetHeadline("watchdog_retry_storm_triggers",
                       static_cast<double>(detected.retry_storm_triggers));
    if (healthy.anomalies != 0) {
      std::fprintf(stderr,
                   "E8: watchdog raised %lld anomalies on the healthy run "
                   "(quiet runs must be silent)\n",
                   static_cast<long long>(healthy.anomalies));
      std::abort();
    }
    if (failed.anomalies_pre_fail != 0) {
      std::fprintf(stderr,
                   "E8: watchdog raised %lld anomalies before the oracle "
                   "failure (the unperturbed phase must be silent)\n",
                   static_cast<long long>(failed.anomalies_pre_fail));
      std::abort();
    }
    if (detected.entity_loss_triggers < 1) {
      std::fprintf(stderr,
                   "E8: watchdog missed the detected crash (0 entity_loss "
                   "anomalies)\n");
      std::abort();
    }
    if (detected.retry_storm_triggers < 1) {
      std::fprintf(stderr,
                   "E8: watchdog missed the retry storm (0 retry_storm "
                   "anomalies on a 2%% lossy WAN with reliable hops)\n");
      std::abort();
    }
  }
  report.MergeSnapshot(failed_metrics.Snapshot());
  report.AttachSeries(&healthy_series,
                      dsps::telemetry::MakeLabels({{"scenario", "healthy"}}));
  report.AttachSeries(
      &detected_series,
      dsps::telemetry::MakeLabels({{"scenario", "detected_failure"}}));

  // -- Declustered placement-map survivor sweep --------------------------
  Table sweep_table({"entities", "survivors", "orphans", "batches",
                     "fallback entities", "parallel recovery s",
                     "serial recovery s"});
  std::vector<double> parallel_times;
  for (int entities : {4, 6, 8, 12}) {
    MapRecoveryRun par = RunMapRecovery(entities, /*parallel=*/true);
    MapRecoveryRun ser = RunMapRecovery(entities, /*parallel=*/false);
    dsps::telemetry::Labels survivors = dsps::telemetry::MakeLabels(
        {{"survivors", std::to_string(par.survivors)}});
    report.SetHeadline("map_recovery_time_s", par.recovery_time_s,
                       dsps::telemetry::MakeLabels(
                           {{"survivors", std::to_string(par.survivors)},
                            {"mode", "parallel"}}));
    report.SetHeadline("map_recovery_time_s", ser.recovery_time_s,
                       dsps::telemetry::MakeLabels(
                           {{"survivors", std::to_string(ser.survivors)},
                            {"mode", "serial"}}));
    report.SetHeadline("map_orphans", par.orphans, survivors);
    report.SetHeadline("map_rehome_batches",
                       static_cast<double>(par.rehome_batches), survivors);
    report.SetHeadline("map_fallback_entities", par.fallback_entities,
                       survivors);
    report.SetHeadline("map_unplaced", par.unplaced + ser.unplaced,
                       survivors);
    sweep_table.AddRow({Table::Int(entities), Table::Int(par.survivors),
                        Table::Int(par.orphans),
                        Table::Int(par.rehome_batches),
                        Table::Int(par.fallback_entities),
                        Table::Num(par.recovery_time_s, 3),
                        Table::Num(ser.recovery_time_s, 3)});
    // The parallel fan-out must beat the serial re-home chain whenever
    // more than one survivor shares the rebuild.
    if (par.recovery_time_s >= ser.recovery_time_s) {
      std::fprintf(stderr,
                   "E8 map: parallel recovery (%f s) did not beat serial "
                   "(%f s) at %d survivors\n",
                   par.recovery_time_s, ser.recovery_time_s, par.survivors);
      std::abort();
    }
    parallel_times.push_back(par.recovery_time_s);
  }
  // Declustering's headline claim: recovery time shrinks as the rebuild
  // spreads over more survivors (endpoints of the sweep, fixed queries).
  if (parallel_times.back() >= parallel_times.front()) {
    std::fprintf(stderr,
                 "E8 map: recovery did not speed up with survivors "
                 "(3 survivors: %f s, 11 survivors: %f s)\n",
                 parallel_times.front(), parallel_times.back());
    std::abort();
  }
  sweep_table.Print(
      "E8: declustered placement-map recovery — one entity of N fails, "
      "orphans fan out to precomputed standbys in parallel (fixed " +
      std::to_string(kMapQueries) + "-query workload)");

  // -- Correlated domain crash -------------------------------------------
  dsps::telemetry::TimeSeriesRecorder::Config mcfg;
  mcfg.interval_s = 0.5;
  dsps::telemetry::TimeSeriesRecorder domain_series(mcfg);
  DomainCrashRun domain = RunDomainCrash(&domain_series);
  report.SetHeadline("domain_crash_orphans", domain.orphans);
  report.SetHeadline("domain_crash_rehomed", domain.rehomed);
  report.SetHeadline("domain_crash_unplaced", domain.unplaced);
  report.SetHeadline("domain_crash_lost", domain.lost);
  report.SetHeadline("domain_crash_recovery_time_s", domain.recovery_time_s);
  report.SetHeadline("domain_crash_detections",
                     domain.failure_stats.detections);
  report.SetHeadline("correlated_crash_events",
                     static_cast<double>(domain.correlated_events));
  report.AttachSeries(
      &domain_series,
      dsps::telemetry::MakeLabels({{"scenario", "domain_crash_map"}}));
  std::printf(
      "E8: correlated crash of fault domain 0 (2/8 entities) at t=%gs — "
      "%d orphans, %d re-homed, %d unplaced, %d lost, detection+recovery "
      "%.3f s\n\n",
      kFailAt, domain.orphans, domain.rehomed, domain.unplaced, domain.lost,
      domain.recovery_time_s);

  // -- Post-failure assignment quality -----------------------------------
  Table strategy_table({"strategy", "edge cut B/s", "imbalance",
                        "survivor migrations"});
  for (const StrategyRow& row : CompareStrategies()) {
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"strategy", row.name}});
    report.SetHeadline("strategy_edge_cut", row.edge_cut, labels);
    report.SetHeadline("strategy_imbalance", row.imbalance, labels);
    report.SetHeadline("strategy_survivor_migrations",
                       row.survivor_migrations, labels);
    strategy_table.AddRow({row.name, Table::Num(row.edge_cut, 0),
                           Table::Num(row.imbalance, 3),
                           Table::Int(row.survivor_migrations)});
  }
  strategy_table.Print(
      "E8: post-failure assignment quality — repartitioners shuffle "
      "survivors to restore balance; the placement map moves only the "
      "dead entity's queries");

  report.WriteFileOrDie();
  if (!audit_report.empty()) {
    const char* dir = std::getenv("DSPS_BENCH_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/AUDIT_e8_failover.json"
                           : std::string("AUDIT_e8_failover.json");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr || std::fputs((audit_report + "\n").c_str(), f) < 0) {
      std::fprintf(stderr, "E8: cannot write %s\n", path.c_str());
      std::abort();
    }
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  table.Print(
      "E8: entity failure at t=3s — oracle vs heartbeat-detected "
      "(detection latency " +
      std::to_string(fs.detection_latency.mean() * 1e3) + " ms, " +
      std::to_string(detected.rehomed) + "/" +
      std::to_string(detected.orphans) + " orphans re-homed, " +
      std::to_string(detected.unplaced) + " unplaced, recovery " +
      std::to_string(detected.recovery_time_s) +
      " s after the crash; the entity re-joins at t=6s)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE8();
  return 0;
}
