// Experiment E8 (loose-coupling payoff under churn): an entity fails
// mid-run; the coordinator tree repairs, the dissemination trees detach
// it, and its queries are re-homed on the survivors. Three scenarios:
//
//  * healthy          — no failure, the baseline result rate;
//  * oracle failure   — FailEntity announced to the system (the seed's
//                       scenario: repair cost without detection cost);
//  * detected failure — the full pipeline: a crash is *injected* at the
//                       network level (plus background message loss),
//                       heartbeats stop arriving, the sweep detects the
//                       silence, the repair path re-homes the orphans,
//                       and the entity re-joins after its crash window.
//
// Headlines cover detection latency, messages-to-repair, heartbeat cost,
// recovery time of the result rate, and the orphan accounting invariant:
// every orphaned query is re-homed or explicitly reported as unplaced.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "engine/query_builder.h"
#include "system/auditor.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "telemetry/timeseries.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

constexpr double kDuration = 8.0;
constexpr double kFailAt = 3.0;
constexpr double kRecoverAt = 6.0;
constexpr int kNumQueries = 24;

enum class Scenario { kHealthy, kOracleFailure, kDetectedFailure };

struct FailoverRun {
  std::vector<int64_t> results_per_interval;
  int orphans = 0;
  int rehomed = 0;
  int unplaced = 0;
  int64_t lost_queries = 0;
  dsps::system::System::FailureStats failure_stats;
  int64_t dropped_messages = 0;
  int64_t dissemination_retries = 0;
  double recovery_time_s = -1.0;
};

FailoverRun Run(Scenario scenario,
                dsps::telemetry::MetricsRegistry* metrics = nullptr,
                dsps::telemetry::TimeSeriesRecorder* series = nullptr,
                std::string* audit_report = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 8;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.allocation = dsps::system::AllocationMode::kCoordinatorTree;
  cfg.seed = 99;
  cfg.metrics = metrics;
  if (scenario == Scenario::kDetectedFailure) {
    cfg.inject_faults = true;
    cfg.faults.seed = 17;
    cfg.faults.loss_probability = 0.02;  // background WAN loss
    cfg.dissemination.reliable = true;   // exactly-once hops on top of it
    cfg.dissemination.retry_timeout_s = 0.05;
  }
  dsps::system::System sys(cfg);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 200.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));

  // Wide filter queries so results flow steadily.
  for (int i = 1; i <= kNumQueries; ++i) {
    auto q = dsps::engine::QueryBuilder(i).From(i % 2, sys.catalog()).Build();
    if (!q.ok()) std::abort();
    if (!sys.SubmitQuery(q.value()).ok()) std::abort();
  }

  if (scenario == Scenario::kDetectedFailure) {
    dsps::system::System::FailureDetectionConfig det;
    det.heartbeat_period_s = 0.25;
    det.timeout_s = 0.75;
    det.sweep_period_s = 0.25;
    sys.EnableFailureDetection(det, kDuration + 2.0);
    sys.ScheduleCrash(0, kFailAt, kRecoverAt);
  }
  // Adaptation-trajectory sampling and the invariant auditor are both
  // read-only observers: enabling them cannot change the run's results.
  if (series != nullptr) {
    sys.EnableTimeSeries(series, series->config().interval_s,
                         kDuration + 1.0);
  }
  double audit_s = dsps::system::AuditIntervalFromEnv();
  if (audit_report != nullptr && audit_s > 0) {
    sys.EnableAudit(audit_s, kDuration + 1.0);
  }
  sys.GenerateTraffic(kDuration);

  FailoverRun run;
  int64_t last_results = 0;
  for (int interval = 0; interval < static_cast<int>(kDuration); ++interval) {
    double t_end = interval + 1.0;
    if (scenario != Scenario::kHealthy && t_end > kFailAt &&
        static_cast<double>(interval) <= kFailAt) {
      // Run to the failure instant; count the orphans-to-be, then fail
      // (oracle) or let the injected crash + heartbeat sweep do it.
      sys.RunUntil(kFailAt);
      for (int i = 1; i <= kNumQueries; ++i) {
        if (sys.EntityOf(i) == 0) ++run.orphans;
      }
      if (scenario == Scenario::kOracleFailure) {
        auto rehomed = sys.FailEntity(0);
        if (rehomed.ok()) run.rehomed = rehomed.value();
      }
    }
    sys.RunUntil(t_end);
    int64_t now_results = sys.Collect().results;
    run.results_per_interval.push_back(now_results - last_results);
    last_results = now_results;
  }
  sys.RunUntil(kDuration + 1.0);

  run.failure_stats = sys.failure_stats();
  if (scenario == Scenario::kDetectedFailure) {
    run.rehomed = run.failure_stats.queries_rehomed;
  }
  run.unplaced = sys.unplaced_count();
  run.dropped_messages = sys.Collect().dropped_messages;
  run.dissemination_retries = sys.disseminator()->retries_count();

  // Recovery time: from the failure instant until the per-second result
  // rate is back to >= 90% of the pre-failure average.
  if (scenario != Scenario::kHealthy) {
    double before = 0.0;
    for (int i = 0; i < static_cast<int>(kFailAt); ++i) {
      before += static_cast<double>(run.results_per_interval[i]);
    }
    before /= kFailAt;
    for (size_t i = static_cast<size_t>(kFailAt);
         i < run.results_per_interval.size(); ++i) {
      if (static_cast<double>(run.results_per_interval[i]) >= 0.9 * before) {
        run.recovery_time_s = (static_cast<double>(i) + 1.0) - kFailAt;
        break;
      }
    }
  }

  // Queries without a live home at the end. Unplaced ones are reported —
  // the failure-accounting invariant is: every orphan is either re-homed
  // or sitting in the unplaced queue; none may simply vanish.
  for (int i = 1; i <= kNumQueries; ++i) {
    if (sys.EntityOf(i) == dsps::common::kInvalidEntity) ++run.lost_queries;
  }
  if (run.lost_queries != run.unplaced ||
      run.rehomed + run.unplaced < run.orphans) {
    std::fprintf(stderr,
                 "E8: orphan accounting violated: orphans=%d rehomed=%d "
                 "unplaced=%d lost=%lld\n",
                 run.orphans, run.rehomed, run.unplaced,
                 static_cast<long long>(run.lost_queries));
    std::abort();
  }
  if (audit_report != nullptr && sys.auditor() != nullptr) {
    *audit_report = sys.auditor()->ReportJson();
  }
  return run;
}

void BM_Failover(benchmark::State& state) {
  for (auto _ : state) {
    FailoverRun r = Run(Scenario::kOracleFailure);
    benchmark::DoNotOptimize(r.rehomed);
  }
}
BENCHMARK(BM_Failover)->Unit(benchmark::kMillisecond);

void BM_DetectedFailover(benchmark::State& state) {
  for (auto _ : state) {
    FailoverRun r = Run(Scenario::kDetectedFailure);
    benchmark::DoNotOptimize(r.rehomed);
  }
}
BENCHMARK(BM_DetectedFailover)->Unit(benchmark::kMillisecond);

void PrintE8() {
  dsps::telemetry::BenchReport report("e8_failover");
  dsps::telemetry::MetricsRegistry failed_metrics;
  // Half-second trajectory sampling: fine enough to show the result-rate
  // dip at t=3s, the repair, and the re-join at t=6s.
  dsps::telemetry::TimeSeriesRecorder::Config scfg;
  scfg.interval_s = 0.5;
  dsps::telemetry::TimeSeriesRecorder healthy_series(scfg);
  dsps::telemetry::TimeSeriesRecorder detected_series(scfg);
  std::string audit_report;
  FailoverRun healthy = Run(Scenario::kHealthy, nullptr, &healthy_series);
  FailoverRun failed = Run(Scenario::kOracleFailure, &failed_metrics);
  FailoverRun detected =
      Run(Scenario::kDetectedFailure, nullptr, &detected_series,
          &audit_report);
  Table table({"interval (s)", "results/s healthy", "results/s oracle fail",
               "results/s detected fail"});
  for (size_t i = 0; i < healthy.results_per_interval.size(); ++i) {
    table.AddRow({Table::Int(static_cast<int64_t>(i)),
                  Table::Int(healthy.results_per_interval[i]),
                  Table::Int(failed.results_per_interval[i]),
                  Table::Int(detected.results_per_interval[i])});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"interval", std::to_string(i)}});
    report.SetHeadline("results_healthy", healthy.results_per_interval[i],
                       labels);
    report.SetHeadline("results_failed", failed.results_per_interval[i],
                       labels);
    report.SetHeadline("results_detected", detected.results_per_interval[i],
                       labels);
  }
  report.SetHeadline("rehomed", failed.rehomed);
  report.SetHeadline("lost_queries", failed.lost_queries);
  // The detection pipeline: crash -> heartbeat silence -> sweep -> repair.
  const dsps::system::System::FailureStats& fs = detected.failure_stats;
  report.SetHeadline("detected_orphans", detected.orphans);
  report.SetHeadline("detected_rehomed", detected.rehomed);
  report.SetHeadline("detected_unplaced", detected.unplaced);
  report.SetHeadline("detections", fs.detections);
  report.SetHeadline("readmissions", fs.readmissions);
  report.SetHeadline("detection_latency_ms",
                     fs.detection_latency.mean() * 1e3);
  report.SetHeadline("heartbeat_messages",
                     static_cast<double>(fs.heartbeat_messages));
  report.SetHeadline("repair_messages",
                     static_cast<double>(fs.repair_messages));
  report.SetHeadline("recovery_time_s", detected.recovery_time_s);
  report.SetHeadline("dropped_messages",
                     static_cast<double>(detected.dropped_messages));
  report.SetHeadline("dissemination_retries",
                     static_cast<double>(detected.dissemination_retries));
  report.MergeSnapshot(failed_metrics.Snapshot());
  report.AttachSeries(&healthy_series,
                      dsps::telemetry::MakeLabels({{"scenario", "healthy"}}));
  report.AttachSeries(
      &detected_series,
      dsps::telemetry::MakeLabels({{"scenario", "detected_failure"}}));
  report.WriteFileOrDie();
  if (!audit_report.empty()) {
    const char* dir = std::getenv("DSPS_BENCH_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/AUDIT_e8_failover.json"
                           : std::string("AUDIT_e8_failover.json");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr || std::fputs((audit_report + "\n").c_str(), f) < 0) {
      std::fprintf(stderr, "E8: cannot write %s\n", path.c_str());
      std::abort();
    }
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  table.Print(
      "E8: entity failure at t=3s — oracle vs heartbeat-detected "
      "(detection latency " +
      std::to_string(fs.detection_latency.mean() * 1e3) + " ms, " +
      std::to_string(detected.rehomed) + "/" +
      std::to_string(detected.orphans) + " orphans re-homed, " +
      std::to_string(detected.unplaced) + " unplaced, recovery " +
      std::to_string(detected.recovery_time_s) +
      " s after the crash; the entity re-joins at t=6s)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE8();
  return 0;
}
