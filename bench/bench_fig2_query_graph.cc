// Figure 2 reproduction: the paper's worked query-graph example (plan (a)
// ships 8 bytes/s of duplicate data, plan (b) only 3, both balanced), plus
// a generalization sweep showing interest-aware partitioning beating
// load-only balancing on realistic query workloads.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/table.h"
#include "partition/partitioner.h"
#include "partition/query_graph.h"
#include "telemetry/bench_report.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;
using dsps::partition::LoadOnlyPartitioner;
using dsps::partition::MultilevelPartitioner;
using dsps::partition::QueryGraph;

/// The Figure 2 instance (see tests/partition_test.cc for the derivation).
QueryGraph Figure2Graph() {
  QueryGraph g;
  g.AddVertex(1, 0.1);
  g.AddVertex(2, 0.1);
  g.AddVertex(3, 0.2);
  g.AddVertex(4, 0.04);
  g.AddVertex(5, 0.04);
  g.AddEdge(0, 1, 10);  // Q1-Q2
  g.AddEdge(0, 3, 8);   // Q1-Q4
  g.AddEdge(2, 3, 2);   // Q3-Q4
  g.AddEdge(0, 4, 1);   // Q1-Q5
  return g;
}

/// Query graph from the stock-ticker workload with hotspot locality.
QueryGraph WorkloadGraph(int n, uint64_t seed) {
  dsps::interest::StreamCatalog catalog;
  dsps::common::Rng rng(seed);
  dsps::workload::MakeTickerStreams(4, dsps::workload::StockTickerGen::Config{},
                                    &catalog, &rng);
  dsps::workload::QueryGen::Config qcfg;
  qcfg.join_prob = 0.0;
  qcfg.hotspot_prob = 0.8;
  qcfg.num_hotspots = 6;
  dsps::workload::QueryGen gen(qcfg, &catalog, dsps::common::Rng(seed + 1));
  return QueryGraph::Build(gen.Batch(n), catalog);
}

void BM_MultilevelPartition(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  QueryGraph g = WorkloadGraph(n, 5);
  MultilevelPartitioner p;
  for (auto _ : state) {
    auto r = p.Partition(g, 8, 1.2);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MultilevelPartition)->Arg(64)->Arg(256)->Arg(1024);

void BM_GraphBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    QueryGraph g = WorkloadGraph(n, 5);
    benchmark::DoNotOptimize(g.num_vertices());
  }
}
BENCHMARK(BM_GraphBuild)->Arg(64)->Arg(256);

void PrintFigure2Exact(dsps::telemetry::BenchReport* report) {
  QueryGraph g = Figure2Graph();
  std::vector<int> plan_a{1, 1, 0, 0, 1};  // {Q3,Q4} vs rest
  std::vector<int> plan_b{1, 1, 0, 1, 0};  // {Q3,Q5} vs rest
  MultilevelPartitioner ml;
  auto found = ml.Partition(g, 2, 1.01).value();
  Table table({"plan", "duplicate bytes/s (cut)", "imbalance"});
  table.AddRow({"(a) {Q3,Q4} | {Q1,Q2,Q5}", Table::Num(g.EdgeCut(plan_a), 2),
                Table::Num(g.Imbalance(plan_a, 2), 2)});
  table.AddRow({"(b) {Q3,Q5} | {Q1,Q2,Q4}", Table::Num(g.EdgeCut(plan_b), 2),
                Table::Num(g.Imbalance(plan_b, 2), 2)});
  table.AddRow({"multilevel partitioner", Table::Num(g.EdgeCut(found), 2),
                Table::Num(g.Imbalance(found, 2), 2)});
  table.Print(
      "Figure 2 (exact): the paper's 5-query example — plan (a) duplicates "
      "8 B/s, plan (b) 3 B/s; the partitioner must find plan (b)");
  report->SetHeadline("exact_cut_found", g.EdgeCut(found));
  report->SetHeadline("exact_imbalance_found", g.Imbalance(found, 2));
}

void PrintFigure2Sweep(dsps::telemetry::BenchReport* report) {
  Table table({"queries n", "parts k", "cut multilevel B/s", "cut load-only B/s",
               "cut ratio", "imb multilevel", "imb load-only"});
  MultilevelPartitioner ml;
  LoadOnlyPartitioner lo;
  for (int n : {64, 256, 1024}) {
    for (int k : {2, 8, 16}) {
      QueryGraph g = WorkloadGraph(n, 100 + n + k);
      auto a_ml = ml.Partition(g, k, 1.2).value();
      auto a_lo = lo.Partition(g, k, 1.2).value();
      double cut_ml = g.EdgeCut(a_ml);
      double cut_lo = g.EdgeCut(a_lo);
      table.AddRow({Table::Int(n), Table::Int(k), Table::Num(cut_ml, 0),
                    Table::Num(cut_lo, 0),
                    Table::Num(cut_lo > 0 ? cut_ml / cut_lo : 1.0, 3),
                    Table::Num(g.Imbalance(a_ml, k), 2),
                    Table::Num(g.Imbalance(a_lo, k), 2)});
      dsps::telemetry::Labels row = dsps::telemetry::MakeLabels(
          {{"queries", std::to_string(n)}, {"parts", std::to_string(k)}});
      report->SetHeadline("cut_multilevel", cut_ml, row);
      report->SetHeadline("cut_load_only", cut_lo, row);
      report->SetHeadline("cut_ratio", cut_lo > 0 ? cut_ml / cut_lo : 1.0,
                          row);
    }
  }
  table.Print(
      "Figure 2 (generalized): interest-aware vs load-only partitioning on "
      "hotspot query workloads (lower cut = less duplicate dissemination)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dsps::telemetry::BenchReport report("fig2_query_graph");
  PrintFigure2Exact(&report);
  PrintFigure2Sweep(&report);
  report.WriteFileOrDie();
  return 0;
}
