// Experiment E12 (multi-tenant isolation): a well-behaved "gold" tenant
// with a result-latency SLO shares the cluster with a "bronze" aggressor
// that launches a flash crowd of heavy standing queries mid-run. Three
// scenarios over an identical workload:
//
//  * passthrough — admission gate off (load_factor 0, no quotas): the
//                  pre-tenant over-commit behavior. The flash crowd lands
//                  in full and the victim's p95 blows through its SLO —
//                  the isolation failure the subsystem exists to prevent;
//  * admission   — per-tenant weighted-fair admission: the aggressor is
//                  queued (bounded wait), degraded to a coarser interest
//                  box, or rejected against its quota; the victim's p95
//                  stays within SLO;
//  * elastic     — admission plus the ElasticityManager: sustained
//                  pressure grows per-entity capacity, so queued
//                  aggressor queries drain into the new processors while
//                  the victim stays protected.
//
// Acceptance bars (abort on violation):
//  - passthrough: victim p95 > SLO (the experiment must exhibit the
//    problem, or the admission result is vacuous);
//  - admission: victim p95 <= SLO, zero victim rejections, and the
//    aggressor visibly arbitrated (queued + degraded + rejected > 0);
//  - elastic: at least one grow event, and at least as many aggressor
//    queries standing as under admission alone;
//  - per-tenant conservation holds in every tenant-enabled scenario.
//
// BENCH_e12_tenants.json carries per-tenant latency trajectories
// (series.tenant_recent_p95_ms et al. labeled {tenant, scenario}) plus
// headline.tenant_* gauges that tools/dsps_doctor turns into its
// per-tenant health table; headline.victim_p95_ms is the bench_diff CI
// gate. With DSPS_AUDIT_INTERVAL set the admission scenario runs under
// the invariant auditor and writes AUDIT_e12_tenants.json. With
// DSPS_WATCHDOG set every scenario runs under the anomaly watchdog;
// CheckBars then requires silence before the flash crowd, at least one
// anomaly on the passthrough SLO burn, and zero gold SLO-burn triggers
// under admission.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "engine/query_builder.h"
#include "system/auditor.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "telemetry/timeseries.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

constexpr double kDuration = 8.0;
/// Flash-crowd onset: the aggressor's standing queries all arrive here.
constexpr double kFlashAt = 1.5;
constexpr double kVictimSloS = 0.05;
constexpr int kVictimQueries = 4;
constexpr int kAggressorQueries = 24;
constexpr int kAggressorQuota = 10;

constexpr dsps::tenant::TenantId kVictim = 1;
constexpr dsps::tenant::TenantId kAggressor = 2;

enum class Scenario { kPassthrough, kAdmission, kElastic };

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kPassthrough:
      return "passthrough";
    case Scenario::kAdmission:
      return "admission";
    case Scenario::kElastic:
      return "elastic";
  }
  return "?";
}

struct TenantOutcome {
  dsps::tenant::AdmissionController::Counters counters;
  double p95_ms = 0.0;
  double slo_attainment = 1.0;
  int64_t results = 0;
};

struct E12Run {
  TenantOutcome victim;
  TenantOutcome aggressor;
  dsps::system::System::ElasticityStats elasticity;
  int queued_at_end = 0;
  /// Anomaly-watchdog accounting (DSPS_WATCHDOG legs only).
  bool watchdog_on = false;
  int64_t anomalies_pre_flash = 0;
  int64_t anomalies = 0;
  int64_t victim_slo_burn = 0;
};

dsps::engine::Query TenantQuery(int id, dsps::tenant::TenantId tenant,
                                double load, double cost_per_tuple,
                                dsps::system::System* sys) {
  auto q = dsps::engine::QueryBuilder(id).From(id % 2, sys->catalog()).Build();
  if (!q.ok()) std::abort();
  dsps::engine::Query query = q.value();
  query.tenant = tenant;
  query.load = load;
  // The aggressor's queries are genuinely expensive, not just declared
  // heavy: every tuple charges this much simulated CPU, so over-admitting
  // them saturates the shared processors and backs up the victim.
  std::shared_ptr<dsps::engine::QueryPlan> plan = query.plan->Clone();
  for (int op = 0; op < plan->num_operators(); ++op) {
    plan->mutable_op(op)->set_cost_per_tuple(cost_per_tuple);
  }
  query.plan = std::move(plan);
  return query;
}

E12Run Run(Scenario scenario,
           dsps::telemetry::MetricsRegistry* metrics = nullptr,
           dsps::telemetry::TimeSeriesRecorder* series = nullptr,
           std::string* audit_report = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 2;
  cfg.topology.processors_per_entity = 1;
  cfg.topology.num_sources = 2;
  cfg.allocation = dsps::system::AllocationMode::kRoundRobin;
  cfg.seed = 23;
  cfg.metrics = metrics;
  // Both tenants are always registered — per-tenant latency accounting is
  // the measurement instrument of all three scenarios. What varies is the
  // POLICY: passthrough zeroes the capacity gate and the quota, restoring
  // the pre-tenant over-commit behavior under tenant-labeled telemetry.
  dsps::tenant::TenantSpec victim;
  victim.id = kVictim;
  victim.name = "gold";
  victim.weight = 4.0;
  victim.latency_slo_s = kVictimSloS;
  dsps::tenant::TenantSpec aggressor;
  aggressor.id = kAggressor;
  aggressor.name = "bronze";
  aggressor.weight = 1.0;
  if (scenario != Scenario::kPassthrough) {
    aggressor.max_standing_queries = kAggressorQuota;
  }
  cfg.tenants = {victim, aggressor};
  cfg.admission.load_factor = scenario == Scenario::kPassthrough ? 0.0 : 1.0;
  cfg.admission.max_queue_wait_s = 2.0;
  cfg.admission.slo_window_s = kDuration + 1.0;
  dsps::system::System sys(cfg);

  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 400.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));

  if (scenario == Scenario::kElastic) {
    dsps::tenant::ElasticityManager::Config ecfg;
    // Admitted pressure sits near 0.4 of capacity (the gate keeps it
    // there); the watermark must be below that or elasticity never sees
    // the queued demand it exists to absorb.
    ecfg.high_watermark = 0.3;
    ecfg.low_watermark = 0.05;
    ecfg.sustain_rounds = 2;
    ecfg.max_processors = 4;
    sys.EnableElasticity(ecfg, /*period_s=*/0.5, /*until=*/kDuration);
  }
  if (series != nullptr) {
    sys.EnableTimeSeries(series, series->config().interval_s, kDuration + 1.0);
  }
  double audit_s = dsps::system::AuditIntervalFromEnv();
  if (audit_report != nullptr && audit_s > 0) {
    sys.EnableAudit(audit_s, kDuration + 1.0);
  }
  // The anomaly watchdog is the same kind of read-only observer: CI's
  // DSPS_WATCHDOG legs assert it stays silent before the flash crowd and
  // flags the passthrough SLO burn after it.
  double watchdog_s = dsps::system::WatchdogIntervalFromEnv();
  if (watchdog_s > 0) {
    sys.EnableWatchdog(watchdog_s, kDuration + 1.0);
  }

  // The victim's steady standing queries are in place before t=0.
  for (int i = 1; i <= kVictimQueries; ++i) {
    if (!sys.SubmitQuery(TenantQuery(i, kVictim, 0.15, 2e-5, &sys)).ok()) {
      std::abort();
    }
  }
  sys.GenerateTraffic(kDuration);
  sys.RunUntil(kFlashAt);
  int64_t anomalies_pre_flash =
      sys.watchdog() != nullptr ? sys.watchdog()->anomalies() : 0;
  // Flash crowd: the aggressor demands ~2.7x the whole cluster's admission
  // limit in one burst. Submission outcomes vary by scenario; none may
  // error except the quota/queue-bound rejections the policy intends.
  for (int i = 101; i <= 100 + kAggressorQueries; ++i) {
    dsps::common::Status st =
        sys.SubmitQuery(TenantQuery(i, kAggressor, 0.2, 5e-4, &sys));
    if (!st.ok() &&
        st.code() != dsps::common::StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "E12: unexpected submit error: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  sys.RunUntil(kDuration + 1.0);

  E12Run run;
  auto outcome = [&sys](dsps::tenant::TenantId t) {
    TenantOutcome o;
    o.counters = sys.admission()->counters(t);
    const dsps::common::Histogram* lat = sys.TenantLatency(t);
    o.p95_ms = lat != nullptr && lat->count() > 0 ? lat->p95() * 1e3 : 0.0;
    o.slo_attainment = sys.TenantSloAttainment(t);
    o.results = sys.TenantResults(t);
    return o;
  };
  run.victim = outcome(kVictim);
  run.aggressor = outcome(kAggressor);
  run.elasticity = sys.elasticity_stats();
  run.queued_at_end = static_cast<int>(sys.QueuedAdmissions().size());
  if (sys.watchdog() != nullptr) {
    run.watchdog_on = true;
    run.anomalies_pre_flash = anomalies_pre_flash;
    run.anomalies = sys.watchdog()->anomalies();
    run.victim_slo_burn = sys.watchdog()->triggers("slo_burn.gold");
  }
  if (!sys.admission()->CheckConservation().ok()) {
    std::fprintf(stderr, "E12: tenant conservation violated (%s)\n",
                 ScenarioName(scenario));
    std::abort();
  }
  if (audit_report != nullptr && sys.auditor() != nullptr) {
    *audit_report = sys.auditor()->ReportJson();
  }
  return run;
}

void CheckBars(const E12Run& passthrough, const E12Run& admission,
               const E12Run& elastic) {
  if (passthrough.victim.p95_ms <= kVictimSloS * 1e3) {
    std::fprintf(stderr,
                 "E12: passthrough victim p95 %.2f ms within the %.0f ms "
                 "SLO — the flash crowd failed to exhibit the isolation "
                 "problem\n",
                 passthrough.victim.p95_ms, kVictimSloS * 1e3);
    std::abort();
  }
  if (admission.victim.p95_ms > kVictimSloS * 1e3) {
    std::fprintf(stderr,
                 "E12: admission victim p95 %.2f ms exceeds the %.0f ms "
                 "SLO — isolation failed\n",
                 admission.victim.p95_ms, kVictimSloS * 1e3);
    std::abort();
  }
  if (admission.victim.counters.rejected != 0) {
    std::fprintf(stderr, "E12: %lld victim rejections under admission\n",
                 static_cast<long long>(admission.victim.counters.rejected));
    std::abort();
  }
  const dsps::tenant::AdmissionController::Counters& agg =
      admission.aggressor.counters;
  int64_t arbitrated = (agg.submitted - agg.admitted);
  if (arbitrated <= 0 || agg.degraded + agg.rejected + agg.evicted +
                                 agg.queued_now ==
                             0) {
    std::fprintf(stderr,
                 "E12: the aggressor was not arbitrated (admitted %lld of "
                 "%lld)\n",
                 static_cast<long long>(agg.admitted),
                 static_cast<long long>(agg.submitted));
    std::abort();
  }
  if (elastic.elasticity.grow_events < 1) {
    std::fprintf(stderr, "E12: elastic scenario never grew capacity\n");
    std::abort();
  }
  if (elastic.aggressor.counters.standing <
      admission.aggressor.counters.standing) {
    std::fprintf(stderr,
                 "E12: elastic capacity served fewer aggressor queries "
                 "(%d) than static admission (%d)\n",
                 elastic.aggressor.counters.standing,
                 admission.aggressor.counters.standing);
    std::abort();
  }
  // DSPS_WATCHDOG legs: the watchdog must be silent on every quiet
  // pre-flash phase, flag the passthrough SLO burn after the crowd
  // arrives, and agree with the isolation bar that the protected victim
  // never burned its SLO under admission.
  if (passthrough.watchdog_on) {
    int64_t pre_flash = passthrough.anomalies_pre_flash +
                        admission.anomalies_pre_flash +
                        elastic.anomalies_pre_flash;
    if (pre_flash != 0) {
      std::fprintf(stderr,
                   "E12: watchdog raised %lld anomalies before the flash "
                   "crowd (quiet phases must be silent)\n",
                   static_cast<long long>(pre_flash));
      std::abort();
    }
    if (passthrough.anomalies < 1) {
      std::fprintf(stderr,
                   "E12: watchdog missed the passthrough flash crowd "
                   "(0 anomalies on an unprotected SLO burn)\n");
      std::abort();
    }
    if (admission.victim_slo_burn != 0) {
      std::fprintf(stderr,
                   "E12: watchdog reported %lld gold SLO-burn anomalies "
                   "under admission — isolation and watchdog disagree\n",
                   static_cast<long long>(admission.victim_slo_burn));
      std::abort();
    }
  }
}

void EmitTenantHeadlines(dsps::telemetry::BenchReport* report,
                         const char* name, const TenantOutcome& o,
                         int quota) {
  dsps::telemetry::Labels labels =
      dsps::telemetry::MakeLabels({{"tenant", name}});
  report->SetHeadline("tenant_submitted",
                      static_cast<double>(o.counters.submitted), labels);
  report->SetHeadline("tenant_admitted",
                      static_cast<double>(o.counters.admitted), labels);
  report->SetHeadline("tenant_queued",
                      static_cast<double>(o.counters.queued_now), labels);
  report->SetHeadline("tenant_degraded",
                      static_cast<double>(o.counters.degraded), labels);
  report->SetHeadline("tenant_rejected",
                      static_cast<double>(o.counters.rejected), labels);
  report->SetHeadline("tenant_evicted",
                      static_cast<double>(o.counters.evicted), labels);
  report->SetHeadline("tenant_slo_attainment", o.slo_attainment, labels);
  report->SetHeadline("tenant_p95_ms", o.p95_ms, labels);
  // Reject budget for tools/dsps_doctor: submissions beyond the standing
  // quota may legitimately bounce; anything more (and any victim reject,
  // whose headroom is 0) flags the report unhealthy.
  double headroom =
      quota > 0
          ? std::max<double>(0.0,
                             static_cast<double>(o.counters.submitted - quota))
          : 0.0;
  report->SetHeadline("tenant_quota_headroom", headroom, labels);
}

void BM_TenantAdmission(benchmark::State& state) {
  for (auto _ : state) {
    E12Run r = Run(Scenario::kAdmission);
    benchmark::DoNotOptimize(r.victim.p95_ms);
  }
}
BENCHMARK(BM_TenantAdmission)->Unit(benchmark::kMillisecond);

void BM_TenantElastic(benchmark::State& state) {
  for (auto _ : state) {
    E12Run r = Run(Scenario::kElastic);
    benchmark::DoNotOptimize(r.aggressor.counters.standing);
  }
}
BENCHMARK(BM_TenantElastic)->Unit(benchmark::kMillisecond);

void PrintE12() {
  dsps::telemetry::BenchReport report("e12_tenants");
  dsps::telemetry::TimeSeriesRecorder::Config scfg;
  scfg.interval_s = 0.5;
  dsps::telemetry::TimeSeriesRecorder passthrough_series(scfg);
  dsps::telemetry::TimeSeriesRecorder admission_series(scfg);
  dsps::telemetry::TimeSeriesRecorder elastic_series(scfg);
  dsps::telemetry::MetricsRegistry admission_metrics;
  std::string audit_report;
  E12Run passthrough =
      Run(Scenario::kPassthrough, nullptr, &passthrough_series);
  E12Run admission = Run(Scenario::kAdmission, &admission_metrics,
                         &admission_series, &audit_report);
  E12Run elastic = Run(Scenario::kElastic, nullptr, &elastic_series);

  Table table({"scenario", "victim p95 ms", "victim SLO attain",
               "victim results", "aggr admitted", "aggr degraded",
               "aggr rejected", "aggr evicted", "aggr standing",
               "grow events"});
  struct NamedRun {
    const char* name;
    const E12Run* run;
  };
  for (const NamedRun& row :
       {NamedRun{"passthrough", &passthrough}, NamedRun{"admission", &admission},
        NamedRun{"elastic", &elastic}}) {
    const E12Run& r = *row.run;
    table.AddRow({row.name, Table::Num(r.victim.p95_ms, 2),
                  Table::Num(r.victim.slo_attainment, 3),
                  Table::Int(r.victim.results),
                  Table::Int(r.aggressor.counters.admitted),
                  Table::Int(r.aggressor.counters.degraded),
                  Table::Int(r.aggressor.counters.rejected),
                  Table::Int(r.aggressor.counters.evicted),
                  Table::Int(r.aggressor.counters.standing),
                  Table::Int(r.elasticity.grow_events)});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"scenario", row.name}});
    report.SetHeadline("scenario_victim_p95_ms", r.victim.p95_ms, labels);
    report.SetHeadline("scenario_victim_slo_attainment",
                       r.victim.slo_attainment, labels);
    report.SetHeadline("scenario_aggressor_standing",
                       r.aggressor.counters.standing, labels);
    // Watchdog headlines exist only on DSPS_WATCHDOG legs, so the
    // default report stays bit-identical with the health layer off.
    if (r.watchdog_on) {
      report.SetHeadline("watchdog_anomalies",
                         static_cast<double>(r.anomalies), labels);
      report.SetHeadline("watchdog_anomalies_pre_flash",
                         static_cast<double>(r.anomalies_pre_flash), labels);
    }
  }
  table.Print(
      "E12: tenant isolation under a flash crowd — bronze submits " +
      std::to_string(kAggressorQueries) +
      " heavy queries at t=" + std::to_string(kFlashAt) +
      "s; gold's SLO is " + std::to_string(kVictimSloS * 1e3) + " ms p95");

  // The CI gate and the doctor's per-tenant table come from the
  // admission scenario — the subsystem's intended operating point.
  report.SetHeadline("victim_p95_ms", admission.victim.p95_ms);
  report.SetHeadline("victim_slo_attainment", admission.victim.slo_attainment);
  report.SetHeadline("passthrough_victim_p95_ms", passthrough.victim.p95_ms);
  report.SetHeadline("elastic_grow_events", elastic.elasticity.grow_events);
  report.SetHeadline("elastic_processors_added",
                     elastic.elasticity.processors_added);
  EmitTenantHeadlines(&report, "gold", admission.victim, /*quota=*/0);
  EmitTenantHeadlines(&report, "bronze", admission.aggressor,
                      kAggressorQuota);
  report.MergeSnapshot(admission_metrics.Snapshot());
  report.AttachSeries(
      &passthrough_series,
      dsps::telemetry::MakeLabels({{"scenario", "passthrough"}}));
  report.AttachSeries(&admission_series, dsps::telemetry::MakeLabels(
                                             {{"scenario", "admission"}}));
  report.AttachSeries(&elastic_series,
                      dsps::telemetry::MakeLabels({{"scenario", "elastic"}}));
  report.WriteFileOrDie();

  if (!audit_report.empty()) {
    const char* dir = std::getenv("DSPS_BENCH_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/AUDIT_e12_tenants.json"
                           : std::string("AUDIT_e12_tenants.json");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr || std::fputs((audit_report + "\n").c_str(), f) < 0) {
      std::fprintf(stderr, "E12: cannot write %s\n", path.c_str());
      std::abort();
    }
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  // Bars last: a violated bar still leaves the table and the report on
  // disk for diagnosis before the abort fails the CI leg.
  CheckBars(passthrough, admission, elastic);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE12();
  return 0;
}
