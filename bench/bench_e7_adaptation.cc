// Experiment E7 (extensions the paper flags as open issues): (a) interest
// summarization — Section 3.1 asks "how to represent the data interest ...
// as well as how to efficiently compute the aggregation"; we bound each
// subtree summary to a box budget and measure the summary-size /
// false-positive-traffic trade-off. (b) dissemination tree adaptation —
// the tree shapes "deserve further study"; we run the greedy reorganizer
// on a deliberately bad tree and measure cost and delivery latency.

#include <benchmark/benchmark.h>

#include <functional>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "dissemination/disseminator.h"
#include "dissemination/reorganizer.h"
#include "interest/summarize.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "telemetry/timeseries.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;
using dsps::dissemination::Disseminator;
using dsps::dissemination::TreePolicy;

struct BudgetResult {
  int64_t total_bytes = 0;
  int64_t delivered = 0;
  int64_t summary_boxes = 0;  // boxes across all subtree summaries
};

BudgetResult RunBudget(int budget, int entities, int boxes_per_entity,
                       int tuples, uint64_t seed) {
  dsps::sim::Simulator sim;
  dsps::sim::Network net(&sim);
  dsps::common::Rng rng(seed);
  auto src = net.AddNode({500, 500});
  Disseminator::Config cfg;
  cfg.tree.policy = TreePolicy::kClosestParent;
  cfg.tree.max_fanout = 3;
  cfg.tree.interest_budget = budget;
  Disseminator dissem(&net, cfg);
  if (!dissem.AddSource(0, src).ok()) std::abort();
  dissem.SetDeliveryHandler(
      [](dsps::common::EntityId, const dsps::engine::Tuple&) {});
  for (int e = 0; e < entities; ++e) {
    auto gw = net.AddNode({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    if (!dissem.AddEntity(e, gw).ok()) std::abort();
    // Fragmented interest: several narrow slices per entity.
    std::vector<dsps::interest::Box> boxes;
    for (int b = 0; b < boxes_per_entity; ++b) {
      double lo = rng.Uniform(0, 98);
      boxes.push_back(
          dsps::interest::Box{{lo, lo + 1.5}, {-1e9, 1e9}, {-1e9, 1e9}});
    }
    if (!dissem.SetEntityInterest(e, 0, boxes).ok()) std::abort();
  }
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.num_symbols = 100;
  tcfg.zipf_s = 0.0;
  dsps::workload::StockTickerGen gen(tcfg, rng.Fork(2));
  for (int i = 0; i < tuples; ++i) {
    if (!dissem.Publish(gen.Next(sim.now())).ok()) std::abort();
    sim.RunUntil(sim.now() + 0.01);
  }
  sim.Run();
  BudgetResult r;
  r.total_bytes = net.total_bytes();
  r.delivered = dissem.delivered_count();
  for (int e = 0; e < entities; ++e) {
    r.summary_boxes += static_cast<int64_t>(
        dissem.tree(0)->SubtreeInterest(e).size());
  }
  return r;
}

void PrintE7Summarization(dsps::telemetry::BenchReport* report) {
  Table table({"box budget", "summary boxes", "forwarded KB", "delivered",
               "traffic overhead"});
  const int entities = 64, boxes = 6, tuples = 600;
  BudgetResult exact = RunBudget(0, entities, boxes, tuples, 11);
  for (int budget : {0, 8, 4, 2, 1}) {
    BudgetResult r = RunBudget(budget, entities, boxes, tuples, 11);
    // Correctness invariant: every exact delivery still happens.
    if (r.delivered != exact.delivered) std::abort();
    table.AddRow({budget == 0 ? "unbounded" : Table::Int(budget).c_str(),
                  Table::Int(r.summary_boxes),
                  Table::Num(r.total_bytes / 1e3, 1),
                  Table::Int(r.delivered),
                  Table::Num(static_cast<double>(r.total_bytes) /
                                 static_cast<double>(exact.total_bytes),
                             2)});
    dsps::telemetry::Labels labels = dsps::telemetry::MakeLabels(
        {{"budget", budget == 0 ? "unbounded" : std::to_string(budget)}});
    report->SetHeadline("summary_boxes", r.summary_boxes, labels);
    report->SetHeadline("forwarded_kb", r.total_bytes / 1e3, labels);
    report->SetHeadline("traffic_overhead",
                        static_cast<double>(r.total_bytes) /
                            static_cast<double>(exact.total_bytes),
                        labels);
  }
  table.Print(
      "E7a (Section 3.1 open issue): interest-summary box budget — smaller "
      "summaries ship more false-positive traffic but never lose tuples");
}

struct ReorgResult {
  double cost_before = 0.0;
  double cost_after = 0.0;
  int moves = 0;
  double p50_before = 0.0;
  double p50_after = 0.0;
};

ReorgResult RunReorg(int entities, uint64_t seed,
                     dsps::telemetry::TimeSeriesRecorder* series = nullptr) {
  dsps::sim::Simulator sim;
  dsps::sim::Network net(&sim);
  dsps::common::Rng rng(seed);
  auto src = net.AddNode({500, 500});
  Disseminator::Config cfg;
  cfg.tree.policy = TreePolicy::kRandom;  // deliberately poor shape
  cfg.tree.max_fanout = 3;
  cfg.tree.seed = seed;
  Disseminator dissem(&net, cfg);
  if (!dissem.AddSource(0, src).ok()) std::abort();
  dsps::common::Histogram* sink = nullptr;
  dsps::common::Histogram lat_before, lat_after;
  dissem.SetDeliveryHandler(
      [&](dsps::common::EntityId, const dsps::engine::Tuple& t) {
        if (sink != nullptr) sink->Add(sim.now() - t.timestamp);
      });
  for (int e = 0; e < entities; ++e) {
    auto gw = net.AddNode({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    if (!dissem.AddEntity(e, gw).ok()) std::abort();
    if (!dissem
             .SetEntityInterest(
                 e, 0,
                 {dsps::interest::Box{{0, 100}, {-1e9, 1e9}, {-1e9, 1e9}}})
             .ok()) {
      std::abort();
    }
  }
  dsps::workload::StockTickerGen::Config tcfg;
  dsps::workload::StockTickerGen gen(tcfg, rng.Fork(3));
  auto pump = [&](dsps::common::Histogram* h, int tuples) {
    sink = h;
    for (int i = 0; i < tuples; ++i) {
      if (!dissem.Publish(gen.Next(sim.now())).ok()) std::abort();
      sim.RunUntil(sim.now() + 0.02);
      // Trajectory sampling every 25 tuples = 0.5 simulated seconds.
      // Probes are read-only, so the sampled run's headline metrics stay
      // byte-identical to an unsampled run's.
      if (series != nullptr && (i + 1) % 25 == 0) series->Sample(sim.now());
    }
    sim.Run();
    sink = nullptr;
  };
  ReorgResult r;
  auto* tree = dissem.mutable_tree(0);
  if (series != nullptr) {
    series->AddGaugeProbe("series.tree_cost", {}, [tree] {
      return dsps::dissemination::TreeReorganizer::TreeCost(*tree);
    });
    dsps::sim::Network* net_p = &net;
    series->AddRateProbe("series.bytes_per_s", {}, [net_p] {
      return static_cast<double>(net_p->total_bytes());
    });
    Disseminator* dissem_p = &dissem;
    series->AddRateProbe("series.delivered_per_s", {}, [dissem_p] {
      return static_cast<double>(dissem_p->delivered_count());
    });
    series->Sample(sim.now());
  }
  r.cost_before = dsps::dissemination::TreeReorganizer::TreeCost(*tree);
  pump(&lat_before, 200);
  dsps::dissemination::TreeReorganizer reorganizer;
  for (int round = 0; round < 20; ++round) {
    auto stats = reorganizer.Round(tree);
    r.moves += stats.moves;
    if (stats.moves == 0) break;
  }
  r.cost_after = dsps::dissemination::TreeReorganizer::TreeCost(*tree);
  pump(&lat_after, 200);
  r.p50_before = lat_before.p50();
  r.p50_after = lat_after.p50();
  return r;
}

void PrintE7Reorganization(dsps::telemetry::BenchReport* report,
                           dsps::telemetry::TimeSeriesRecorder* series) {
  Table table({"entities", "tree cost before", "after", "moves",
               "p50 deliver ms before", "after"});
  for (int entities : {16, 64}) {
    // The 64-entity run carries the trajectory recorder: tree cost and
    // delivery rate before vs after the reorganization rounds.
    ReorgResult r =
        RunReorg(entities, 21 + entities, entities == 64 ? series : nullptr);
    table.AddRow({Table::Int(entities), Table::Num(r.cost_before, 0),
                  Table::Num(r.cost_after, 0), Table::Int(r.moves),
                  Table::Num(r.p50_before * 1e3, 1),
                  Table::Num(r.p50_after * 1e3, 1)});
    dsps::telemetry::Labels labels = dsps::telemetry::MakeLabels(
        {{"entities", std::to_string(entities)}});
    report->SetHeadline("tree_cost_before", r.cost_before, labels);
    report->SetHeadline("tree_cost_after", r.cost_after, labels);
    report->SetHeadline("reorg_moves", r.moves, labels);
  }
  table.Print(
      "E7b: adaptive tree reorganization — greedy re-attachment shrinks the "
      "tree's geographic cost and delivery latency on a random tree");
}

void BM_ReorganizerRound(benchmark::State& state) {
  dsps::dissemination::DisseminationTree::Config cfg;
  cfg.policy = TreePolicy::kRandom;
  cfg.max_fanout = 3;
  dsps::dissemination::DisseminationTree tree(0, {500, 500}, cfg);
  dsps::common::Rng rng(1);
  for (int e = 0; e < 64; ++e) {
    if (!tree.AddEntity(e, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)})
             .ok()) {
      std::abort();
    }
  }
  dsps::dissemination::TreeReorganizer reorganizer;
  for (auto _ : state) {
    auto stats = reorganizer.Round(&tree);
    benchmark::DoNotOptimize(stats.moves);
  }
}
BENCHMARK(BM_ReorganizerRound);

void BM_CoarsenBoxes(benchmark::State& state) {
  dsps::common::Rng rng(2);
  std::vector<dsps::interest::Box> boxes;
  for (int i = 0; i < 32; ++i) {
    double x = rng.Uniform(0, 90);
    boxes.push_back(dsps::interest::Box{{x, x + 5}, {x, x + 5}});
  }
  for (auto _ : state) {
    auto out = dsps::interest::CoarsenBoxes(boxes, 4);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CoarsenBoxes);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dsps::telemetry::BenchReport report("e7_adaptation");
  dsps::telemetry::TimeSeriesRecorder::Config scfg;
  scfg.interval_s = 0.5;
  dsps::telemetry::TimeSeriesRecorder reorg_series(scfg);
  PrintE7Summarization(&report);
  PrintE7Reorganization(&report, &reorg_series);
  report.AttachSeries(&reorg_series, dsps::telemetry::MakeLabels(
                                         {{"experiment", "e7b_reorg"},
                                          {"entities", "64"}}));
  report.WriteFileOrDie();
  return 0;
}
