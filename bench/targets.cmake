# Benchmark targets are defined from the top level (via include()) so that
# build/bench/ contains ONLY the bench binaries — the whole directory can
# be executed with `for b in build/bench/*; do $b; done`.
function(dsps_bench name)
  add_executable(${name} bench/${name}.cc)
  target_compile_options(${name} PRIVATE -Werror)
  # Every bench writes a BENCH_<name>.json report via dsps_telemetry.
  target_link_libraries(${name} PRIVATE ${ARGN} dsps_telemetry
                        benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

dsps_bench(bench_table1_coupling dsps_baselines)
dsps_bench(bench_fig1_end_to_end dsps_system)
dsps_bench(bench_fig2_query_graph dsps_partition dsps_workload)
dsps_bench(bench_fig3_delegation dsps_entity dsps_workload)
dsps_bench(bench_e1_dissemination dsps_dissemination dsps_workload)
dsps_bench(bench_e2_coordinator dsps_coordinator)
dsps_bench(bench_e3_repartition dsps_partition dsps_workload)
dsps_bench(bench_e4_placement dsps_entity dsps_workload)
dsps_bench(bench_e5_ordering dsps_ordering)
dsps_bench(bench_e6_coupling_ablation dsps_baselines)
dsps_bench(bench_e7_adaptation dsps_dissemination dsps_workload)
dsps_bench(bench_e8_failover dsps_system)
dsps_bench(bench_e9_clients dsps_system)
dsps_bench(bench_e10_live_repartition dsps_system)
dsps_bench(bench_e12_tenants dsps_system dsps_workload)
dsps_bench(bench_e13_metro dsps_system dsps_workload dsps_partition)
dsps_bench(bench_e14_index dsps_interest)
