// Experiment E5 (Section 4.2): adaptive distributed operator ordering.
// A conjunction of filters spread over processors experiences selectivity
// drift; the Adaptation Module's per-tuple routing is compared against a
// static order fixed at optimization time and the unreachable oracle.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "ordering/pipeline_sim.h"
#include "telemetry/bench_report.h"

namespace {

using dsps::common::Table;
using dsps::ordering::OrderingPolicy;
using dsps::ordering::PipelineOp;
using dsps::ordering::PipelineSimResult;
using dsps::ordering::RunPipeline;

/// `n` filters over `procs` processors; at tuple `drift_at` the filters'
/// selectivities rotate by `magnitude` (0 = no drift, 1 = full reversal).
std::vector<PipelineOp> MakePipeline(int n, int procs, int64_t drift_at,
                                     double magnitude) {
  std::vector<PipelineOp> ops(n);
  for (int i = 0; i < n; ++i) {
    ops[i].op = i;
    ops[i].proc = i % procs;
    ops[i].cost = 1e-6 * (1 + i % 3);
    double before = 0.1 + 0.8 * i / (n - 1);
    double after = before + magnitude * (0.9 - 2 * 0.8 * i / (n - 1));
    after = std::min(0.95, std::max(0.05, after));
    ops[i].selectivity = [before, after, drift_at](int64_t t) {
      return t < drift_at ? before : after;
    };
  }
  return ops;
}

void BM_Pipeline(benchmark::State& state) {
  OrderingPolicy policy = static_cast<OrderingPolicy>(state.range(0));
  auto ops = MakePipeline(5, 3, 5000, 1.0);
  for (auto _ : state) {
    dsps::common::Rng rng(1);
    PipelineSimResult r = RunPipeline(ops, policy, 10000, &rng);
    benchmark::DoNotOptimize(r.total_cost);
  }
  state.SetLabel(state.range(0) == 0   ? "static"
                 : state.range(0) == 1 ? "adaptive"
                                       : "oracle");
}
BENCHMARK(BM_Pipeline)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void PrintE5() {
  const int64_t tuples = 60000;
  dsps::telemetry::BenchReport report("e5_ordering");
  Table table({"drift", "policy", "evaluations", "CPU ms", "vs oracle",
               "survivors"});
  for (double magnitude : {0.0, 0.5, 1.0}) {
    auto ops = MakePipeline(5, 3, tuples / 2, magnitude);
    dsps::common::Rng r1(7), r2(7), r3(7);
    PipelineSimResult rs = RunPipeline(ops, OrderingPolicy::kStatic, tuples, &r1);
    PipelineSimResult ra =
        RunPipeline(ops, OrderingPolicy::kAdaptive, tuples, &r2);
    PipelineSimResult ro = RunPipeline(ops, OrderingPolicy::kOracle, tuples, &r3);
    struct Row {
      const char* name;
      const PipelineSimResult* r;
    };
    for (const Row& row :
         {Row{"static", &rs}, Row{"adaptive(AM)", &ra}, Row{"oracle", &ro}}) {
      table.AddRow({Table::Num(magnitude, 1), row.name,
                    Table::Int(row.r->evaluations),
                    Table::Num(row.r->total_cost * 1e3, 2),
                    Table::Num(row.r->total_cost / ro.total_cost, 3),
                    Table::Int(row.r->survivors)});
      dsps::telemetry::Labels labels = dsps::telemetry::MakeLabels(
          {{"drift", Table::Num(magnitude, 1)}, {"policy", row.name}});
      report.SetHeadline("cpu_ms", row.r->total_cost * 1e3, labels);
      report.SetHeadline("vs_oracle", row.r->total_cost / ro.total_cost,
                         labels);
      report.SetHeadline("evaluations", row.r->evaluations, labels);
    }
  }
  report.WriteFileOrDie();
  table.Print(
      "E5 (Section 4.2): adaptive operator ordering under selectivity "
      "drift, 5 distributed filters — the AM tracks the oracle; static "
      "degrades as drift grows");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE5();
  return 0;
}
