// Experiment E10 (Section 3.2.2, closed loop): runtime adaptive
// repartitioning of LIVE queries between entities. Query churn (arrivals
// allocated by the fast coordinator path) gradually erodes an initially
// good interest-clustered assignment; periodic repartitioning rounds
// restore it. Inter-entity moves are query-level reinstalls (state
// restarts) — the price of loose coupling — so the bench reports both the
// recovered dissemination efficiency and the migration count.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "partition/repartitioner.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "telemetry/timeseries.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

/// Total data rate subscribed across entities (duplicate dissemination
/// proxy; exact and cheap to evaluate between rounds).
double SubscribedRate(dsps::system::System* sys) {
  double total = 0.0;
  for (int e = 0; e < sys->num_entities(); ++e) {
    // Rebuild each entity's union from its hosted queries via the
    // dissemination registration the system maintains: approximate with
    // the catalog-measured rate of the entity's interest by re-deriving
    // it from homes (System keeps it internally; we sum per-entity via
    // disseminator tree local interests).
    for (dsps::common::StreamId s : sys->catalog().streams()) {
      const auto* tree = sys->disseminator()->tree(s);
      if (tree == nullptr || !tree->Contains(e)) continue;
      dsps::interest::InterestSet set;
      for (const auto& box : tree->LocalInterest(e)) set.Add(s, box);
      total += dsps::interest::InterestRateBytesPerSec(
          set, s, sys->catalog().stats(s));
    }
  }
  return total;
}

struct ChurnResult {
  double final_subscribed = 0.0;
  int total_migrations = 0;
  double mean_decision_ms = 0.0;
};

ChurnResult RunChurn(const char* policy, int rounds,
                     dsps::telemetry::MetricsRegistry* metrics = nullptr,
                     dsps::telemetry::TimeSeriesRecorder* series = nullptr) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 8;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.allocation = dsps::system::AllocationMode::kGraphPartition;
  cfg.seed = 55;
  cfg.metrics = metrics;
  dsps::system::System sys(cfg);
  dsps::workload::StockTickerGen::Config tcfg;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(9);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));

  dsps::workload::QueryGen::Config qcfg;
  qcfg.join_prob = 0;
  qcfg.agg_prob = 0;
  qcfg.num_hotspots = 3;
  qcfg.hotspot_prob = 0.9;
  dsps::workload::QueryGen gen(qcfg, &sys.catalog(), dsps::common::Rng(7));
  // Initial well-clustered batch.
  if (!sys.SubmitBatch(gen.Batch(64)).ok()) std::abort();

  dsps::partition::HybridRepartitioner hybrid;
  dsps::partition::ScratchRepartitioner scratch_rp;
  ChurnResult r;
  dsps::common::RunningStat decisions;
  dsps::common::Rng churn_rng(17);
  // Churn rounds happen at a frozen sim clock, so the trajectory's time
  // axis is the round number: round+0.5 right after churn lands (erosion
  // peak), round+1 after the repartition round answers it.
  if (series != nullptr) {
    sys.RegisterSeriesProbes(series);
    dsps::system::System* sys_p = &sys;
    series->AddGaugeProbe("series.subscribed_bps", {},
                          [sys_p] { return SubscribedRate(sys_p); });
    series->Sample(0.0);
  }
  for (int round = 0; round < rounds; ++round) {
    // Churn: 16 arrivals stick to whatever entity their client happens to
    // use (interest-blind — the erosion the paper's runtime adaptation
    // must undo).
    for (const auto& q : gen.Batch(16)) {
      if (!sys.SubmitQuery(q).ok()) std::abort();
      auto victim = static_cast<dsps::common::EntityId>(
          churn_rng.NextUint64(static_cast<uint64_t>(sys.num_entities())));
      if (!sys.MigrateQuery(q.id, victim).ok()) std::abort();
    }
    if (series != nullptr) series->Sample(round + 0.5);
    if (std::string(policy) == "hybrid") {
      auto report = sys.RepartitionQueries(&hybrid);
      if (report.ok()) {
        r.total_migrations += report.value().migrations;
        decisions.Add(report.value().decision_seconds * 1e3);
      }
    } else if (std::string(policy) == "scratch") {
      auto report = sys.RepartitionQueries(&scratch_rp);
      if (report.ok()) {
        r.total_migrations += report.value().migrations;
        decisions.Add(report.value().decision_seconds * 1e3);
      }
    }
    if (series != nullptr) series->Sample(round + 1.0);
  }
  r.final_subscribed = SubscribedRate(&sys);
  r.mean_decision_ms = decisions.count() > 0 ? decisions.mean() : 0.0;
  return r;
}

void BM_RepartitionRound(benchmark::State& state) {
  for (auto _ : state) {
    ChurnResult r = RunChurn("hybrid", 2);
    benchmark::DoNotOptimize(r.total_migrations);
  }
}
BENCHMARK(BM_RepartitionRound)->Unit(benchmark::kMillisecond);

void PrintE10() {
  const int rounds = 5;
  dsps::telemetry::BenchReport report("e10_live_repartition");
  Table table({"policy", "final subscribed B/s", "migrations",
               "decision ms/round"});
  // One trajectory per policy; recorders must outlive WriteFileOrDie.
  std::vector<std::unique_ptr<dsps::telemetry::TimeSeriesRecorder>> recorders;
  for (const char* policy : {"none", "hybrid", "scratch"}) {
    // Migration and repartition counters flow through the system registry.
    dsps::telemetry::MetricsRegistry metrics;
    dsps::telemetry::TimeSeriesRecorder::Config scfg;
    scfg.interval_s = 0.5;  // two samples per churn round
    recorders.push_back(
        std::make_unique<dsps::telemetry::TimeSeriesRecorder>(scfg));
    ChurnResult r = RunChurn(policy, rounds, &metrics, recorders.back().get());
    table.AddRow({policy, Table::Num(r.final_subscribed, 0),
                  Table::Int(r.total_migrations),
                  Table::Num(r.mean_decision_ms, 2)});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"policy", policy}});
    report.SetHeadline("final_subscribed_bps", r.final_subscribed, labels);
    report.SetHeadline("migrations", r.total_migrations, labels);
    report.SetHeadline("decision_ms_per_round", r.mean_decision_ms, labels);
    report.MergeSnapshot(metrics.Snapshot(), labels);
    report.AttachSeries(recorders.back().get(), labels);
  }
  report.WriteFileOrDie();
  table.Print(
      "E10 (Section 3.2.2, live): query churn erodes the clustered "
      "assignment; periodic repartitioning of LIVE queries restores "
      "dissemination efficiency — hybrid at a fraction of scratch's "
      "migrations (64 initial + 5x16 churn queries, 8 entities)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE10();
  return 0;
}
