// Regenerates the paper's Table 1 ("degree of cooperation") as a measured
// matrix: the four occupied regimes run on identical workloads; the table
// reports the communication, source-scalability, balance and latency
// consequences of each coupling choice.

#include <benchmark/benchmark.h>

#include "baselines/regimes.h"
#include "common/table.h"
#include "telemetry/bench_report.h"

namespace {

using dsps::baselines::Regime;
using dsps::baselines::RegimeName;
using dsps::baselines::RegimeResult;
using dsps::baselines::RegimeWorkload;

RegimeWorkload Workload() {
  RegimeWorkload wl;
  wl.num_entities = 16;
  wl.processors_per_entity = 2;
  wl.num_streams = 4;
  wl.num_queries = 96;
  wl.duration_s = 3.0;
  wl.ticker_config.tuples_per_s = 100.0;
  // Filter-only queries (no window semantics in the latency signal) with
  // strong hotspot locality and wide interests, so entities' interests
  // overlap heavily — the regime where cooperative transfer matters.
  wl.query_config.join_prob = 0.0;
  wl.query_config.agg_prob = 0.0;
  wl.query_config.width_min_frac = 0.3;
  wl.query_config.width_max_frac = 0.7;
  wl.query_config.num_hotspots = 2;
  wl.query_config.hotspot_prob = 0.9;
  wl.query_config.filter_dims = 1;
  wl.seed = 42;
  return wl;
}

void BM_Regime(benchmark::State& state) {
  Regime regime = static_cast<Regime>(state.range(0));
  RegimeWorkload wl = Workload();
  wl.num_entities = 8;
  wl.num_queries = 32;
  wl.duration_s = 1.0;
  for (auto _ : state) {
    RegimeResult r = dsps::baselines::RunRegime(regime, wl);
    benchmark::DoNotOptimize(r.results);
  }
  state.SetLabel(RegimeName(regime));
}
BENCHMARK(BM_Regime)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void PrintTable1() {
  RegimeWorkload wl = Workload();
  dsps::telemetry::BenchReport report("table1_coupling");
  dsps::common::Table table(
      {"regime (transfer+processing)", "WAN MB", "source MB", "src fanout",
       "load imbalance", "p50 lat ms", "p99 lat ms", "results"});
  for (const RegimeResult& r : dsps::baselines::RunAllRegimes(wl)) {
    table.AddRow({RegimeName(r.regime),
                  dsps::common::Table::Num(r.wan_bytes / 1e6, 2),
                  dsps::common::Table::Num(r.source_egress_bytes / 1e6, 2),
                  dsps::common::Table::Int(r.max_source_fanout),
                  dsps::common::Table::Num(r.load_imbalance, 2),
                  dsps::common::Table::Num(r.latency_p50 * 1e3, 2),
                  dsps::common::Table::Num(r.latency_p99 * 1e3, 2),
                  dsps::common::Table::Int(r.results)});
    dsps::telemetry::Labels row =
        dsps::telemetry::MakeLabels({{"regime", RegimeName(r.regime)}});
    report.SetHeadline("wan_mb", r.wan_bytes / 1e6, row);
    report.SetHeadline("source_mb", r.source_egress_bytes / 1e6, row);
    report.SetHeadline("load_imbalance", r.load_imbalance, row);
    report.SetHeadline("latency_p99_ms", r.latency_p99 * 1e3, row);
    report.SetHeadline("results", r.results, row);
  }
  table.Print(
      "Table 1 (measured): degree of cooperation, 16 entities x 2 procs, "
      "4 streams, 96 queries");
  report.WriteFileOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintTable1();
  return 0;
}
