// Experiment E13 (metro-scale core): one System sized like a metropolitan
// deployment — a 10k-entity WAN hosting 1M standing queries routed through
// the coordinator tree with multi-tenant admission enabled — exercised end
// to end to prove the simulator event core scales: the indexed 4-ary event
// heap (move-only dispatch, cancellable timers), the arena-allocated
// network messages, and the SoA per-query runtime state in system::System.
// Standing queries are installed through the batched System::SubmitQueries
// path (grouped routing + one deferred bulk graph delta per chunk), and
// the per-phase install costs land in the install.* gauges.
//
// Two sizes share one code path, selected by DSPS_E13_SCALE:
//  * smoke (default) — 200 entities / 5k queries. Fast enough for CI;
//    this is the size pinned against bench/baselines/BENCH_e13_metro.json.
//  * full  (=full)   — 10000 entities / 1,000,000 queries, the paper's
//    metro tier. Run locally to prove the core completes at scale.
//
// Headlines and how CI gates them (tools/bench_diff treats larger as
// worse, so the throughput pin is expressed as its inverse):
//  - headline.sim_events        exact event count of the traffic phase —
//                               deterministic, pinned at 1%: any drift
//                               means the simulation itself changed;
//  - headline.sim_us_per_event  wall-clock cost per executed event
//                               (inverse of sim.events_per_sec), gated
//                               with a wide CI-noise allowance;
//  - headline.sim_events_per_sec(+_floor) the human-facing throughput
//                               and the absolute floor tools/dsps_doctor
//                               flags regressions against;
//  - headline.peak_rss_mb       VmHWM of the whole run;
//  - partition.graph_build_us   indexed QueryGraph::Build over a QueryGen
//                               slice with *random* interests (the metro
//                               standing queries deliberately share one
//                               interest box per stream, which would make
//                               the overlap graph quadratic and measure
//                               the wrong thing);
//  - install.*_us_per_query     the batched-install phase breakdown
//                               (route / install / interest / graph);
//                               install.installs is deterministic and
//                               pinned at 1%, the wall-clock per-query
//                               cost gets a wide allowance;
//  - index.*                    interest-index health (DESIGN.md "Learned
//                               interest index") for the graph-build
//                               indexes, the live system indexes, and a
//                               deterministic lookup probe;
//  - headline.latency_p*_ms     result-latency p50/p95/p99 read from the
//                               bounded sketches (cfg.bounded_stats —
//                               no exact sample vectors at tier scale);
//  - trace.stage_s{stage=...}   per-stage delay decomposition from the
//                               full-sampling, stage-aggregated trace
//                               (retain_spans off: zero span drops in
//                               O(stages x buckets) memory).
//
// Acceptance bars (abort on violation): every submission admitted (zero
// rejections — the tier must fit, not shed), traffic produced results,
// and the event count is nonzero.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "engine/query_builder.h"
#include "index_series.h"
#include "interest/box_index.h"
#include "partition/query_graph.h"
#include "sim/simulator.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

constexpr int kTenants = 4;
constexpr double kQueryLoad = 1e-3;
/// Absolute events/sec floor tools/dsps_doctor alarms on. Deliberately
/// far below any healthy machine (CI containers included): it catches
/// order-of-magnitude collapses, while relative drift is bench_diff's
/// job via headline.sim_us_per_event.
constexpr double kEventsPerSecFloor = 20000.0;

struct Scale {
  const char* name;
  int entities;
  int queries;
  int streams;
  /// Simulated seconds of stream traffic after the install phase.
  double duration_s;
  double tuples_per_s;
  /// QueryGen slice size for the partition.graph_build_us pin.
  int graph_queries;
};

Scale PickScale() {
  const char* s = std::getenv("DSPS_E13_SCALE");
  if (s != nullptr && std::string(s) == "full") {
    return Scale{"full", 10000, 1000000, 16, 0.5, 20.0, 20000};
  }
  return Scale{"smoke", 200, 5000, 8, 2.0, 50.0, 4000};
}

struct E13Run {
  int64_t standing = 0;
  int64_t rejected = 0;
  int64_t results = 0;
  uint64_t sim_events = 0;
  double install_wall_s = 0.0;
  double run_wall_s = 0.0;
  dsps::system::System::InstallProfile install_profile;
  dsps::interest::IndexStats index_stats;
  /// Result-latency summary off the bounded sketches (never the exact
  /// sample vectors — the tier's whole point is O(buckets) telemetry).
  int64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  size_t latency_sketch_buckets = 0;
  /// Per-tenant p95 ms, indexed by tenant id - 1.
  std::vector<double> tenant_p95_ms;
};

double WallSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

E13Run Run(const Scale& sc, dsps::telemetry::TraceLog* trace) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = sc.entities;
  cfg.topology.processors_per_entity = 1;
  cfg.topology.num_sources = sc.streams;
  cfg.allocation = dsps::system::AllocationMode::kCoordinatorTree;
  cfg.seed = 13;
  // Online health layer at tier scale: result latency, per-tenant
  // latency, and entity processing time all land in bounded DDSketch-
  // style sketches instead of exact sample vectors, and the trace log
  // aggregates per-stage sketches without retaining spans — so even the
  // full 10k-entity / 1M-query tier reports p50/p95/p99 in O(buckets)
  // memory.
  cfg.bounded_stats = true;
  cfg.trace = trace;
  // Four equal tenants, admission ON: every submission crosses the
  // admission gate (the tier streams *through* it, per the experiment),
  // but capacity is sized so the whole tier fits — E12 owns the
  // contention scenarios, E13 owns scale.
  for (int t = 1; t <= kTenants; ++t) {
    dsps::tenant::TenantSpec spec;
    spec.id = t;
    spec.name = "metro-" + std::to_string(t);
    spec.weight = 1.0;
    cfg.tenants.push_back(spec);
  }
  cfg.admission.load_factor = 4.0;
  dsps::system::System sys(cfg);

  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = sc.tuples_per_s;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng srng(4);
  sys.AddStreams(dsps::workload::MakeTickerStreams(sc.streams, tcfg, &scratch,
                                                   &srng));

  // One template query per stream; the tier shares the template's plan
  // (shared_ptr) and interest box, so 1M installs cost 1M slots — not 1M
  // plan builds — and per-(entity,stream) dissemination updates hit the
  // no-change cutoff after the first resident query.
  std::vector<dsps::engine::Query> templates;
  templates.reserve(sc.streams);
  for (int s = 0; s < sc.streams; ++s) {
    auto q = dsps::engine::QueryBuilder(1000000000 + s)
                 .From(s, sys.catalog())
                 .Build();
    if (!q.ok()) {
      std::fprintf(stderr, "E13: template build failed: %s\n",
                   q.status().ToString().c_str());
      std::abort();
    }
    templates.push_back(q.value());
  }

  // The install storm goes through the batched path: chunks of standing
  // queries submitted via SubmitQueries, which defers the query-graph
  // deltas into one bulk pass per chunk (outcome-identical to the serial
  // per-query loop — E13's system_test twin asserts exactly that).
  E13Run run;
  constexpr int kInstallChunk = 8192;
  auto install_start = std::chrono::steady_clock::now();
  std::vector<dsps::engine::Query> chunk;
  chunk.reserve(std::min(sc.queries, kInstallChunk));
  for (int i = 0; i < sc.queries;) {
    chunk.clear();
    const int end = std::min(sc.queries, i + kInstallChunk);
    for (; i < end; ++i) {
      dsps::engine::Query query = templates[i % sc.streams];
      query.id = i + 1;
      query.tenant = 1 + i % kTenants;
      query.load = kQueryLoad;
      chunk.push_back(std::move(query));
    }
    dsps::system::System::BatchSubmitResult r = sys.SubmitQueries(chunk);
    run.standing += r.admitted;
    run.rejected += r.rejected;
    if (r.failed > 0) {
      std::fprintf(stderr, "E13: unexpected submit error: %s\n",
                   r.first_error.ToString().c_str());
      std::abort();
    }
  }
  run.install_wall_s = WallSince(install_start);
  run.install_profile = sys.install_profile();
  run.index_stats = sys.IndexStatsSnapshot();

  const uint64_t events_before = sys.network()->simulator()->events_executed();
  auto run_start = std::chrono::steady_clock::now();
  sys.GenerateTraffic(sc.duration_s);
  sys.RunUntil(sc.duration_s + 0.5);
  run.run_wall_s = WallSince(run_start);
  run.sim_events =
      sys.network()->simulator()->events_executed() - events_before;

  for (int t = 1; t <= kTenants; ++t) run.results += sys.TenantResults(t);
  if (!sys.admission()->CheckConservation().ok()) {
    std::fprintf(stderr, "E13: tenant conservation violated\n");
    std::abort();
  }

  dsps::system::SystemMetrics m = sys.Collect();
  run.latency_count = m.latency_count();
  run.latency_p50_ms = m.latency_quantile(0.50) * 1e3;
  run.latency_p95_ms = m.latency_quantile(0.95) * 1e3;
  run.latency_p99_ms = m.latency_quantile(0.99) * 1e3;
  run.latency_sketch_buckets = m.latency_sketch.num_buckets();
  for (int t = 1; t <= kTenants; ++t) {
    const dsps::telemetry::Sketch* sk = sys.TenantLatencySketch(t);
    run.tenant_p95_ms.push_back(sk != nullptr && sk->count() > 0
                                    ? sk->p95() * 1e3
                                    : 0.0);
  }
  return run;
}

void CheckBars(const Scale& sc, const E13Run& run) {
  if (run.standing != sc.queries || run.rejected != 0) {
    std::fprintf(stderr,
                 "E13: tier did not fit — %lld standing / %lld rejected of "
                 "%d submitted\n",
                 static_cast<long long>(run.standing),
                 static_cast<long long>(run.rejected), sc.queries);
    std::abort();
  }
  if (run.sim_events == 0) {
    std::fprintf(stderr, "E13: traffic phase executed zero events\n");
    std::abort();
  }
  if (run.results <= 0) {
    std::fprintf(stderr, "E13: standing queries produced no results\n");
    std::abort();
  }
  if (run.latency_count <= 0 || run.latency_sketch_buckets == 0) {
    std::fprintf(stderr,
                 "E13: bounded latency sketch saw no samples "
                 "(count=%lld, buckets=%zu)\n",
                 static_cast<long long>(run.latency_count),
                 run.latency_sketch_buckets);
    std::abort();
  }
}

double PeakRssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

/// Raw event-core microbenchmark: schedule-heavy FIFO churn through the
/// indexed 4-ary heap, including a cancelled-timer slice (the reliable-
/// delivery retry pattern that used to leak queue slots).
void BM_EventHeapChurn(benchmark::State& state) {
  for (auto _ : state) {
    dsps::sim::Simulator sim;
    std::vector<dsps::sim::TimerId> cancelled;
    cancelled.reserve(1000);
    for (int i = 0; i < 10000; ++i) {
      sim.ScheduleAt(i * 1e-6, []() {});
      if (i % 10 == 0) {
        cancelled.push_back(
            sim.ScheduleCancellableAt(i * 1e-6 + 5e-7, []() { std::abort(); }));
      }
    }
    for (dsps::sim::TimerId t : cancelled) sim.Cancel(t);
    sim.RunUntil(1.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventHeapChurn)->Unit(benchmark::kMillisecond);

void PrintE13() {
  const Scale sc = PickScale();
  dsps::telemetry::BenchReport report("e13_metro");
  // Full-sampling trace in stage-aggregation mode: every traced span
  // folds into a bounded per-stage sketch and the raw span is discarded,
  // so the delay decomposition survives at any tier size in
  // O(stages * buckets) memory with zero span drops.
  dsps::telemetry::TraceLog::Config trace_cfg;
  trace_cfg.sample_every_n = 1;
  trace_cfg.aggregate_stages = true;
  trace_cfg.retain_spans = false;
  dsps::telemetry::TraceLog trace(trace_cfg);
  E13Run run = Run(sc, &trace);

  // Graph-construction pin over random-interest queries (see header
  // comment for why the metro tier's shared boxes are unusable here) —
  // same metric name as E3 so bench_diff's --metric aggregation applies.
  dsps::telemetry::MetricsRegistry metrics;
  {
    auto* build_us = metrics.histogram("partition.graph_build_us");
    dsps::interest::StreamCatalog catalog;
    dsps::common::Rng grng(5);
    auto streams = dsps::workload::MakeTickerStreams(
        4, dsps::workload::StockTickerGen::Config{}, &catalog, &grng);
    dsps::workload::QueryGen qgen(dsps::workload::QueryGen::Config{}, &catalog,
                                  dsps::common::Rng(6));
    std::vector<dsps::engine::Query> slice = qgen.Batch(sc.graph_queries);
    dsps::interest::IndexStats build_stats;
    for (int rep = 0; rep < 3; ++rep) {
      dsps::interest::IndexStats rep_stats;
      auto start = std::chrono::steady_clock::now();
      dsps::partition::QueryGraph g =
          dsps::partition::QueryGraph::Build(slice, catalog, 1e-9, &rep_stats);
      build_us->Observe(WallSince(start) * 1e6);
      benchmark::DoNotOptimize(g.total_edge_weight());
      if (rep == 2) build_stats = rep_stats;
    }
    dsps::bench::ExportIndexStats(
        build_stats, &metrics,
        dsps::telemetry::MakeLabels({{"scope", "graph_build"}}));
    // Lookup probe over the slice's own stream-0 interest boxes: at
    // smoke size this population crosses the auto spline threshold, so
    // the E13 report carries real spline lookup latency + fallback rate.
    {
      std::vector<dsps::interest::Box> probe_boxes;
      for (const dsps::engine::Query& q : slice) {
        const std::vector<dsps::interest::Box>* boxes =
            q.interest.boxes_for(0);
        if (boxes == nullptr) continue;
        probe_boxes.insert(probe_boxes.end(), boxes->begin(), boxes->end());
      }
      dsps::bench::RunIndexLookupProbe(
          probe_boxes, catalog.stats(0).domain,
          dsps::bench::IndexProbeConfig{}, &metrics,
          dsps::telemetry::MakeLabels({{"scope", "probe"}}));
    }
  }
  // Live-system index health (dissemination route caches + per-entity
  // stream indexes) after the full install + traffic phases.
  dsps::bench::ExportIndexStats(
      run.index_stats, &metrics,
      dsps::telemetry::MakeLabels({{"scope", "system"}}));

  const double events_per_sec =
      run.run_wall_s > 0 ? static_cast<double>(run.sim_events) / run.run_wall_s
                         : 0.0;
  const double us_per_event =
      run.sim_events > 0 ? run.run_wall_s * 1e6 /
                               static_cast<double>(run.sim_events)
                         : 0.0;
  const double install_us_per_query =
      sc.queries > 0 ? run.install_wall_s * 1e6 / sc.queries : 0.0;
  const double peak_rss_mb = PeakRssMb();

  Table table({"scale", "entities", "queries", "sim events", "events/s",
               "us/event", "install us/q", "results", "peak RSS MB"});
  table.AddRow({sc.name, Table::Int(sc.entities), Table::Int(sc.queries),
                Table::Int(static_cast<int64_t>(run.sim_events)),
                Table::Num(events_per_sec, 0), Table::Num(us_per_event, 3),
                Table::Num(install_us_per_query, 2), Table::Int(run.results),
                Table::Num(peak_rss_mb, 1)});
  table.Print(
      "E13: metro-tier core — " + std::string(sc.name) + " scale, " +
      std::to_string(sc.queries) + " standing queries over " +
      std::to_string(sc.entities) +
      " entities via the coordinator tree, admission on");

  // Install-phase breakdown: where each submitted query's wall time went
  // inside the batched install path (gauges in µs per query, so the full
  // and smoke tiers are comparable and bench_diff can gate drift).
  {
    const dsps::system::System::InstallProfile& p = run.install_profile;
    const double per_q = sc.queries > 0 ? 1.0 / sc.queries : 0.0;
    metrics.gauge("install.route_us_per_query")->Set(p.route_us * per_q);
    metrics.gauge("install.install_us_per_query")->Set(p.install_us * per_q);
    metrics.gauge("install.interest_us_per_query")->Set(p.interest_us * per_q);
    metrics.gauge("install.graph_us_per_query")->Set(p.graph_us * per_q);
    metrics.gauge("install.installs")->Set(static_cast<double>(p.installs));
    Table breakdown({"phase", "total ms", "us/query"});
    struct Row {
      const char* name;
      double us;
    };
    for (const Row& r : {Row{"route (coordinator descent)", p.route_us},
                         Row{"admission + entity install", p.install_us},
                         Row{"interest merge + publication", p.interest_us},
                         Row{"query-graph deltas (bulk)", p.graph_us}}) {
      breakdown.AddRow({r.name, Table::Num(r.us / 1e3, 1),
                        Table::Num(r.us * per_q, 2)});
    }
    breakdown.Print("E13 install-phase breakdown (batched SubmitQueries, " +
                    std::to_string(sc.queries) + " queries)");
  }

  report.SetHeadline("scale_entities", sc.entities);
  report.SetHeadline("scale_queries", sc.queries);
  report.SetHeadline("standing_queries", static_cast<double>(run.standing));
  report.SetHeadline("results_delivered", static_cast<double>(run.results));
  report.SetHeadline("sim_events", static_cast<double>(run.sim_events));
  report.SetHeadline("sim_events_per_sec", events_per_sec);
  report.SetHeadline("sim_events_per_sec_floor", kEventsPerSecFloor);
  report.SetHeadline("sim_us_per_event", us_per_event);
  report.SetHeadline("install_us_per_query", install_us_per_query);
  report.SetHeadline("peak_rss_mb", peak_rss_mb);
  // Result-latency quantiles off the bounded sketches (identical API to
  // the exact path; E1 pins the rank error at <= 1%).
  report.SetHeadline("latency_p50_ms", run.latency_p50_ms);
  report.SetHeadline("latency_p95_ms", run.latency_p95_ms);
  report.SetHeadline("latency_p99_ms", run.latency_p99_ms);
  report.SetHeadline("latency_sketch_buckets",
                     static_cast<double>(run.latency_sketch_buckets));
  for (int t = 1; t <= kTenants; ++t) {
    report.SetHeadline("tenant_latency_p95_ms", run.tenant_p95_ms[t - 1],
                       dsps::telemetry::MakeLabels(
                           {{"tenant", "metro-" + std::to_string(t)}}));
  }
  report.AttachTrace(&trace);
  report.MergeSnapshot(metrics.Snapshot());
  report.WriteFileOrDie();

  // Bars last: a violated bar still leaves the table and the report on
  // disk for diagnosis before the abort fails the CI leg.
  CheckBars(sc, run);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE13();
  return 0;
}
