// Experiment E6 (Section 2): the coupling-degree ablation. One knob —
// how tightly sites cooperate — swept from fully isolated to fully fused,
// measuring the efficiency gains (balance, WAN bytes) against the
// deployability costs Table 1 argues for (engine heterogeneity allowed,
// upgrade blast radius).

#include <benchmark/benchmark.h>

#include "baselines/regimes.h"
#include "common/table.h"
#include "telemetry/bench_report.h"

namespace {

using dsps::baselines::Regime;
using dsps::baselines::RegimeName;
using dsps::baselines::RegimeResult;
using dsps::baselines::RegimeWorkload;
using dsps::common::Table;

RegimeWorkload Workload() {
  RegimeWorkload wl;
  wl.num_entities = 8;
  wl.processors_per_entity = 4;
  wl.num_streams = 4;
  wl.num_queries = 64;
  wl.duration_s = 3.0;
  wl.query_config.join_prob = 0.0;
  wl.query_config.agg_prob = 0.0;
  wl.query_config.width_min_frac = 0.3;
  wl.query_config.width_max_frac = 0.7;
  wl.query_config.num_hotspots = 2;
  wl.query_config.hotspot_prob = 0.9;
  wl.query_config.filter_dims = 1;
  wl.seed = 13;
  return wl;
}

/// Deployability properties are determined by the coupling itself, not
/// measured: whether entities may run different engines, and how many
/// processors must coordinate when one site upgrades its engine.
struct CouplingFacts {
  const char* heterogeneous_engines;
  int upgrade_blast_radius;  // processors that must move in lockstep
};

CouplingFacts FactsFor(Regime regime, const RegimeWorkload& wl) {
  switch (regime) {
    case Regime::kIsolatedDirect:
    case Regime::kQueryLevelDirect:
    case Regime::kQueryLevelTree:
      // Loose coupling: a query never spans entities, so engines differ
      // freely and an upgrade touches one site's cluster only.
      return {"yes", wl.processors_per_entity};
    case Regime::kOperatorLevelFused:
      // Tight coupling: operators move between any processors, so every
      // processor must run the same engine and upgrade together.
      return {"no", wl.num_entities * wl.processors_per_entity};
  }
  return {"?", 0};
}

void BM_Ablation(benchmark::State& state) {
  RegimeWorkload wl = Workload();
  wl.duration_s = 1.0;
  wl.num_queries = 24;
  for (auto _ : state) {
    RegimeResult r =
        dsps::baselines::RunRegime(Regime::kQueryLevelTree, wl);
    benchmark::DoNotOptimize(r.results);
  }
}
BENCHMARK(BM_Ablation)->Unit(benchmark::kMillisecond);

void PrintE6() {
  RegimeWorkload wl = Workload();
  dsps::telemetry::BenchReport report("e6_coupling_ablation");
  Table table({"coupling degree", "WAN MB", "load imbalance", "p99 lat ms",
               "hetero engines", "upgrade blast radius"});
  for (Regime regime :
       {Regime::kIsolatedDirect, Regime::kQueryLevelDirect,
        Regime::kQueryLevelTree, Regime::kOperatorLevelFused}) {
    RegimeResult r = dsps::baselines::RunRegime(regime, wl);
    CouplingFacts facts = FactsFor(regime, wl);
    table.AddRow({RegimeName(regime), Table::Num(r.wan_bytes / 1e6, 2),
                  Table::Num(r.load_imbalance, 2),
                  Table::Num(r.latency_p99 * 1e3, 2),
                  facts.heterogeneous_engines,
                  Table::Int(facts.upgrade_blast_radius)});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"regime", RegimeName(regime)}});
    report.SetHeadline("wan_mb", r.wan_bytes / 1e6, labels);
    report.SetHeadline("load_imbalance", r.load_imbalance, labels);
    report.SetHeadline("latency_p99_ms", r.latency_p99 * 1e3, labels);
    report.SetHeadline("upgrade_blast_radius", facts.upgrade_blast_radius,
                       labels);
  }
  report.WriteFileOrDie();
  table.Print(
      "E6 (Section 2): coupling-degree ablation — efficiency rises with "
      "tighter coupling while deployability falls; the paper's two-layer "
      "design takes query-level+tree");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE6();
  return 0;
}
