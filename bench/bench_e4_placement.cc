// Experiment E4 (Section 4.1): intra-entity operator placement. Runs one
// entity's runtime under load with PR-aware, load-only, and random
// placement, sweeping the distribution limit; reports PR_max (the paper's
// objective), mean PR, LAN traffic and utilization.

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "engine/operators.h"
#include "entity/entity.h"
#include "placement/placement.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "workload/query_gen.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;

struct PlacementRunResult {
  double pr_max = 0.0;
  double pr_p99 = 0.0;
  double pr_mean = 0.0;
  int64_t lan_bytes = 0;
  double max_util = 0.0;
  double mean_util = 0.0;
  int64_t results = 0;
};

PlacementRunResult Run(dsps::placement::PlacementPolicy* policy, int limit,
                       int processors, int num_queries, double duration,
                       uint64_t seed) {
  dsps::sim::Simulator sim;
  dsps::sim::Network net(&sim);
  std::vector<dsps::common::SimNodeId> nodes;
  for (int p = 0; p < processors; ++p) {
    nodes.push_back(net.AddNode({0.01 * p, 0}));
  }
  dsps::entity::Entity::Config cfg;
  cfg.distribution_limit = limit;
  dsps::entity::Entity ent(0, &net, nodes,
                           [] {
                             return std::unique_ptr<dsps::engine::ExecutionEngine>(
                                 new dsps::engine::BasicEngine());
                           },
                           policy, cfg);
  ent.InstallHandlers();

  dsps::interest::StreamCatalog catalog;
  dsps::common::Rng rng(seed);
  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 600.0;
  tcfg.zipf_s = 0.0;  // uniform symbols: coverage-based load estimates are exact
  auto gens = dsps::workload::MakeTickerStreams(4, tcfg, &catalog, &rng);

  dsps::workload::QueryGen::Config qcfg;
  qcfg.join_prob = 0.1;
  qcfg.agg_prob = 0.3;
  qcfg.width_min_frac = 0.2;
  qcfg.width_max_frac = 0.6;
  dsps::workload::QueryGen qgen(qcfg, &catalog, dsps::common::Rng(seed + 1));
  for (int i = 0; i < num_queries; ++i) {
    dsps::engine::Query q = qgen.Next();
    // Inflate operator costs so CPU contention is the bottleneck.
    auto plan = q.plan->Clone();
    for (int op = 0; op < plan->num_operators(); ++op) {
      plan->mutable_op(op)->set_cost_per_tuple(
          plan->mutable_op(op)->cost_per_tuple() * 100.0);
    }
    q.plan = std::shared_ptr<dsps::engine::QueryPlan>(std::move(plan));
    // A query's leaf filters see every tuple of their bound stream that
    // reaches the entity — the full stream rate here (interest coverage
    // only shrinks the filter's OUTPUT, which the fragmenter's
    // selectivity cascade already models).
    double tps = 1.0;
    for (dsps::common::StreamId s : q.interest.streams()) {
      tps = std::max(tps, catalog.stats(s).tuples_per_s);
    }
    if (!ent.InstallQuery(q, tps).ok()) std::abort();
  }

  std::function<void(int, double)> schedule = [&](int s, double end) {
    double t = sim.now() + rng.Exponential(tcfg.tuples_per_s);
    if (t > end) return;
    sim.ScheduleAt(t, [&, s, end]() {
      ent.OnStreamTuple(gens[s]->Next(sim.now()));
      schedule(s, end);
    });
  };
  for (size_t s = 0; s < gens.size(); ++s) {
    schedule(static_cast<int>(s), duration);
  }
  sim.RunUntil(duration + 2.0);

  PlacementRunResult r;
  r.pr_max = ent.pr_histogram().max();
  r.pr_p99 = ent.pr_histogram().p99();
  r.pr_mean = ent.pr_histogram().mean();
  r.lan_bytes = net.total_bytes();
  r.max_util = ent.MaxUtilization();
  r.mean_util = ent.MeanUtilization();
  r.results = ent.results_count();
  return r;
}

void BM_InstallQueries(benchmark::State& state) {
  dsps::placement::PrAwarePlacement policy;
  for (auto _ : state) {
    PlacementRunResult r = Run(&policy, 2, 8, 32, 0.2, 3);
    benchmark::DoNotOptimize(r.results);
  }
}
BENCHMARK(BM_InstallQueries)->Unit(benchmark::kMillisecond);

void PrintE4Policies(dsps::telemetry::BenchReport* report) {
  Table table({"policy", "PR p99", "PR mean", "LAN MB", "max util",
               "mean util", "results"});
  dsps::placement::PrAwarePlacement pr;
  dsps::placement::LoadOnlyPlacement lo;
  dsps::placement::RandomPlacement rnd(7);
  struct Row {
    const char* name;
    dsps::placement::PlacementPolicy* policy;
  };
  for (const Row& row : {Row{"pr-aware", &pr}, Row{"load-only", &lo},
                         Row{"random", &rnd}}) {
    PlacementRunResult r = Run(row.policy, 2, 16, 128, 3.0, 5);
    table.AddRow({row.name, Table::Num(r.pr_p99, 0),
                  Table::Num(r.pr_mean, 0), Table::Num(r.lan_bytes / 1e6, 2),
                  Table::Num(r.max_util, 3), Table::Num(r.mean_util, 3),
                  Table::Int(r.results)});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"policy", row.name}});
    report->SetHeadline("pr_p99", r.pr_p99, labels);
    report->SetHeadline("pr_mean", r.pr_mean, labels);
    report->SetHeadline("lan_mb", r.lan_bytes / 1e6, labels);
    report->SetHeadline("max_util", r.max_util, labels);
  }
  table.Print(
      "E4a (Section 4.1): placement policies, 16 processors, 128 queries — "
      "PR-aware minimizes the worst Performance Ratio");
}

void PrintE4LimitSweep(dsps::telemetry::BenchReport* report) {
  Table table({"distribution limit L", "PR p99", "PR mean", "LAN MB",
               "max util"});
  dsps::placement::PrAwarePlacement pr;
  for (int limit : {1, 2, 4, 8}) {
    PlacementRunResult r = Run(&pr, limit, 16, 128, 3.0, 5);
    table.AddRow({Table::Int(limit), Table::Num(r.pr_p99, 0),
                  Table::Num(r.pr_mean, 0), Table::Num(r.lan_bytes / 1e6, 2),
                  Table::Num(r.max_util, 3)});
    dsps::telemetry::Labels labels =
        dsps::telemetry::MakeLabels({{"limit", std::to_string(limit)}});
    report->SetHeadline("pr_p99", r.pr_p99, labels);
    report->SetHeadline("lan_mb", r.lan_bytes / 1e6, labels);
  }
  table.Print(
      "E4b (Section 4.1): distribution-limit sweep — small L caps "
      "communication, large L buys balance; the knee is the design point");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dsps::telemetry::BenchReport report("e4_placement");
  PrintE4Policies(&report);
  PrintE4LimitSweep(&report);
  report.WriteFileOrDie();
  return 0;
}
