// Experiment E9: where should a query live — near its data or near its
// client? The paper's portal serves "a huge number of clients" while
// §3.2.2 allocates queries to minimize stream-dissemination cost. The two
// pull in opposite directions when clients and sources are far apart.
// This bench measures both anchors. Finding: the high-volume side is the
// stream dissemination, so near-data anchoring wins WAN bytes, while
// client latency barely moves (the source->entity->client path length is
// conserved wherever the entity sits) — which is why the paper allocates
// for dissemination cost.

#include <benchmark/benchmark.h>

#include "common/table.h"
#include "engine/query_builder.h"
#include "system/system.h"
#include "telemetry/bench_report.h"
#include "workload/stream_gen.h"

namespace {

using dsps::common::Table;
using QueryAnchor = dsps::system::System::Config::QueryAnchor;

struct AnchorResult {
  int64_t wan_bytes = 0;
  double client_p50_ms = 0.0;
  double client_p99_ms = 0.0;
  int64_t client_results = 0;
};

AnchorResult Run(QueryAnchor anchor, double selectivity) {
  dsps::system::System::Config cfg;
  cfg.topology.num_entities = 12;
  cfg.topology.processors_per_entity = 2;
  cfg.topology.num_sources = 2;
  cfg.allocation = dsps::system::AllocationMode::kCoordinatorTree;
  cfg.coordinator.route_geo_weight = 2.0;  // geography matters
  cfg.num_clients = 24;
  cfg.query_anchor = anchor;
  cfg.seed = 77;
  dsps::system::System sys(cfg);

  dsps::workload::StockTickerGen::Config tcfg;
  tcfg.tuples_per_s = 200.0;
  tcfg.zipf_s = 0.0;
  dsps::interest::StreamCatalog scratch;
  dsps::common::Rng rng(3);
  sys.AddStreams(dsps::workload::MakeTickerStreams(2, tcfg, &scratch, &rng));

  // One price-band query per client; band width sets dissemination volume.
  double width = 100.0 * selectivity;
  for (int i = 1; i <= 24; ++i) {
    double lo = rng.Uniform(0, 100.0 - width);
    auto q = dsps::engine::QueryBuilder(i)
                 .From(i % 2, sys.catalog())
                 .Where(1, lo, lo + width)
                 .Build();
    if (!q.ok()) std::abort();
    if (!sys.SubmitQuery(q.value()).ok()) std::abort();
  }
  sys.GenerateTraffic(4.0);
  sys.RunUntil(5.0);
  dsps::system::SystemMetrics m = sys.Collect();
  AnchorResult r;
  r.wan_bytes = m.wan_bytes;
  r.client_p50_ms = m.client_latency.p50() * 1e3;
  r.client_p99_ms = m.client_latency.p99() * 1e3;
  r.client_results = m.client_results;
  return r;
}

void BM_ClientRun(benchmark::State& state) {
  for (auto _ : state) {
    AnchorResult r = Run(QueryAnchor::kSource, 0.2);
    benchmark::DoNotOptimize(r.client_results);
  }
}
BENCHMARK(BM_ClientRun)->Unit(benchmark::kMillisecond);

void PrintE9() {
  dsps::telemetry::BenchReport report("e9_clients");
  Table table({"selectivity", "anchor", "WAN MB", "client p50 ms",
               "client p99 ms", "client results"});
  for (double sel : {0.1, 0.4}) {
    for (QueryAnchor anchor : {QueryAnchor::kSource, QueryAnchor::kClient}) {
      AnchorResult r = Run(anchor, sel);
      const char* anchor_name =
          anchor == QueryAnchor::kSource ? "near-data" : "near-client";
      table.AddRow({Table::Num(sel, 1), anchor_name,
                    Table::Num(r.wan_bytes / 1e6, 3),
                    Table::Num(r.client_p50_ms, 1),
                    Table::Num(r.client_p99_ms, 1),
                    Table::Int(r.client_results)});
      dsps::telemetry::Labels labels = dsps::telemetry::MakeLabels(
          {{"selectivity", Table::Num(sel, 1)}, {"anchor", anchor_name}});
      report.SetHeadline("wan_mb", r.wan_bytes / 1e6, labels);
      report.SetHeadline("client_p99_ms", r.client_p99_ms, labels);
      report.SetHeadline("client_results", r.client_results, labels);
    }
  }
  report.WriteFileOrDie();
  table.Print(
      "E9: query anchoring — near-data allocation consistently ships fewer "
      "WAN bytes (streams are high-volume and shared), while client latency "
      "is nearly anchor-invariant (the source->entity->client path length "
      "is conserved) — supporting Section 3.2.2's choice to allocate for "
      "dissemination cost");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintE9();
  return 0;
}
