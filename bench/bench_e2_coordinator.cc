// Experiment E2 (Section 3.2.1): the hierarchical coordinator tree under
// scale and churn — join/leave message costs, tree height, heartbeat
// overhead, invariant health, and query-routing throughput/balance.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "coordinator/coordinator_tree.h"
#include "telemetry/bench_report.h"

namespace {

using dsps::common::Table;
using dsps::coordinator::CoordinatorTree;

dsps::telemetry::BenchReport* g_report = nullptr;

void BM_Join(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    CoordinatorTree::Config cfg;
    cfg.k = 3;
    CoordinatorTree tree(cfg);
    dsps::common::Rng rng(1);
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      auto r = tree.Join(i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
      benchmark::DoNotOptimize(r.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Join)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RouteQuery(benchmark::State& state) {
  CoordinatorTree::Config cfg;
  cfg.k = 3;
  CoordinatorTree tree(cfg);
  dsps::common::Rng rng(2);
  for (int i = 0; i < 512; ++i) {
    if (!tree.Join(i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}).ok()) {
      std::abort();
    }
  }
  for (auto _ : state) {
    auto r = tree.RouteQuery({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, 1.0);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteQuery);

void PrintE2Scale() {
  Table table({"N entities", "k", "height", "msgs/join (mean)",
               "heartbeat msgs/round", "invariants", "route hops",
               "route load max/mean"});
  for (int n : {64, 512, 4096}) {
    for (int k : {3, 6}) {
      CoordinatorTree::Config cfg;
      cfg.k = k;
      CoordinatorTree tree(cfg);
      dsps::common::Rng rng(3);
      dsps::common::RunningStat join_msgs;
      for (int i = 0; i < n; ++i) {
        auto r = tree.Join(i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
        if (!r.ok()) std::abort();
        join_msgs.Add(r.value());
      }
      bool ok = tree.CheckInvariants().ok();
      // Route 4*n queries; record hops and final balance.
      dsps::common::RunningStat hops;
      for (int q = 0; q < 4 * n; ++q) {
        auto r = tree.RouteQuery({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                                 1.0);
        if (!r.ok()) std::abort();
        hops.Add(r.value().hops);
      }
      double max_load = 0, total = 0;
      for (int e = 0; e < n; ++e) {
        max_load = std::max(max_load, tree.LoadOf(e));
        total += tree.LoadOf(e);
      }
      table.AddRow({Table::Int(n), Table::Int(k), Table::Int(tree.height()),
                    Table::Num(join_msgs.mean(), 1),
                    Table::Int(tree.HeartbeatRound()), ok ? "OK" : "VIOLATED",
                    Table::Num(hops.mean(), 2),
                    Table::Num(max_load / (total / n), 2)});
      dsps::telemetry::Labels row = dsps::telemetry::MakeLabels(
          {{"entities", std::to_string(n)}, {"k", std::to_string(k)}});
      g_report->SetHeadline("height", tree.height(), row);
      g_report->SetHeadline("join_msgs_mean", join_msgs.mean(), row);
      g_report->SetHeadline("route_hops_mean", hops.mean(), row);
    }
  }
  table.Print(
      "E2a (Section 3.2.1): coordinator tree vs scale — logarithmic height, "
      "bounded join cost, balanced routing");
}

void PrintE2Churn() {
  Table table({"N", "churn ops", "msgs/leave (mean)", "msgs/join (mean)",
               "maintain msgs", "invariants"});
  for (int n : {128, 1024}) {
    CoordinatorTree::Config cfg;
    cfg.k = 3;
    CoordinatorTree tree(cfg);
    // Cluster-maintenance event counts flow into the report registry,
    // labeled with this churn run's scale.
    dsps::telemetry::MetricsRegistry churn_metrics;
    tree.SetMetrics(&churn_metrics);
    dsps::common::Rng rng(5);
    std::set<int> alive;
    int next_id = 0;
    for (int i = 0; i < n; ++i) {
      if (!tree.Join(next_id, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)})
               .ok()) {
        std::abort();
      }
      alive.insert(next_id++);
    }
    dsps::common::RunningStat leave_msgs, join_msgs;
    int churn_ops = n;  // 50% leaves + 50% joins
    for (int op = 0; op < churn_ops; ++op) {
      if (op % 2 == 0 && !alive.empty()) {
        auto it = alive.begin();
        std::advance(it, rng.NextUint64(alive.size()));
        auto r = tree.Leave(*it);
        if (!r.ok()) std::abort();
        leave_msgs.Add(r.value());
        alive.erase(it);
      } else {
        auto r = tree.Join(next_id,
                           {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
        if (!r.ok()) std::abort();
        join_msgs.Add(r.value());
        alive.insert(next_id++);
      }
    }
    int maintain = tree.Maintain();
    bool ok = tree.CheckInvariants().ok();
    table.AddRow({Table::Int(n), Table::Int(churn_ops),
                  Table::Num(leave_msgs.mean(), 1),
                  Table::Num(join_msgs.mean(), 1), Table::Int(maintain),
                  ok ? "OK" : "VIOLATED"});
    dsps::telemetry::Labels row =
        dsps::telemetry::MakeLabels({{"entities", std::to_string(n)}});
    g_report->SetHeadline("leave_msgs_mean", leave_msgs.mean(), row);
    g_report->SetHeadline("maintain_msgs", maintain, row);
    g_report->MergeSnapshot(churn_metrics.Snapshot(), row);
  }
  table.Print(
      "E2b (Section 3.2.1): coordinator tree under churn — repair costs stay "
      "local, invariants hold");
}

void PrintE2InterestRouting() {
  // Two allocation policies on the same query stream: plain load+geo
  // routing vs interest-aware routing on coarse subtree summaries. The
  // dissemination cost proxy is the total data rate the entities'
  // aggregated interests subscribe to (duplicates across entities cost
  // real WAN bytes).
  dsps::interest::StreamCatalog catalog;
  dsps::interest::StreamStats stats;
  stats.domain = dsps::interest::Box{{0, 100}};
  stats.tuples_per_s = 1000;
  stats.bytes_per_tuple = 64;
  catalog.Register(0, stats);

  Table table({"routing", "total subscribed B/s", "duplicate factor",
               "load max/mean", "queries"});
  for (double weight : {0.0, 0.5, 1.5}) {
    bool interest_aware = weight > 0.0;
    CoordinatorTree::Config cfg;
    cfg.k = 3;
    cfg.route_interest_weight = weight;
    CoordinatorTree tree(cfg);
    dsps::common::Rng rng(31);
    const int n = 32;
    for (int i = 0; i < n; ++i) {
      if (!tree.Join(i, {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}).ok()) {
        std::abort();
      }
    }
    // Hotspot query stream: 4 interest clusters.
    const int queries = 256;
    std::map<int, dsps::interest::InterestSet> entity_interest;
    for (int q = 0; q < queries; ++q) {
      double center = 12.5 + 25.0 * static_cast<double>(rng.NextUint64(4));
      double lo = std::max(0.0, center - 8 + rng.Uniform(-4, 4));
      dsps::interest::InterestSet qi;
      qi.Add(0, dsps::interest::Box{{lo, lo + 16}});
      auto route =
          interest_aware
              ? tree.RouteQueryByInterest(qi, catalog,
                                          {rng.Uniform(0, 1000),
                                           rng.Uniform(0, 1000)},
                                          1.0)
              : tree.RouteQuery({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                                1.0);
      if (!route.ok()) std::abort();
      int home = route.value().entity;
      entity_interest[home].MergeFrom(qi);
      entity_interest[home].Simplify();
      tree.SetEntityInterest(home, entity_interest[home]);
    }
    double subscribed = 0.0;
    for (auto& [e, set] : entity_interest) {
      subscribed += dsps::interest::TotalRateBytesPerSec(set, catalog);
    }
    // One query's own rate covers 16% of the stream.
    double single = 0.16 * stats.bytes_per_s();
    double max_load = 0, total = 0;
    for (int e = 0; e < n; ++e) {
      max_load = std::max(max_load, tree.LoadOf(e));
      total += tree.LoadOf(e);
    }
    std::string label = interest_aware
                            ? "load+geo+interest(w=" + Table::Num(weight, 1) + ")"
                            : "load+geo";
    table.AddRow({label,
                  Table::Num(subscribed, 0),
                  Table::Num(subscribed / (4 * single), 2),
                  Table::Num(max_load / (total / n), 2),
                  Table::Int(queries)});
    dsps::telemetry::Labels row =
        dsps::telemetry::MakeLabels({{"routing", label}});
    g_report->SetHeadline("subscribed_bps", subscribed, row);
    g_report->SetHeadline("duplicate_factor", subscribed / (4 * single), row);
  }
  table.Print(
      "E2c (Sections 3.2.1+3.2.2): interest-aware query routing on coarse "
      "coordinator summaries — co-locating overlapping queries shrinks the "
      "total subscribed rate (duplicate factor 1.0 = perfect sharing)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dsps::telemetry::BenchReport report("e2_coordinator");
  g_report = &report;
  PrintE2Scale();
  PrintE2Churn();
  PrintE2InterestRouting();
  report.WriteFileOrDie();
  return 0;
}
