// Shared bench helper for the learned interest index telemetry: every
// index-bearing bench (E1, E3, E13, E14) publishes the same index.*
// series into its BENCH_<name>.json so tools/bench_diff can gate them and
// tools/dsps_doctor can judge index health from any report uniformly.
//
// Two complementary exports:
//  - ExportIndexStats() dumps an interest::IndexStats snapshot (taken
//    from the live structures — dissemination routing caches, the
//    query-graph inverted indexes, per-entity stream indexes) as gauges.
//    Deterministic: every value derives from counts, never from wall
//    time, except index.build_us which is the accumulated spline
//    (re)build cost.
//  - RunIndexLookupProbe() builds a fresh BoxIndex over a supplied box
//    population and times point-stab lookups against it, emitting the
//    index.lookup_us histogram (whose p95 dsps_doctor surfaces) plus the
//    probe index's own stats under the same labels. The probe is the
//    only honest way to publish per-lookup latency without timing the
//    simulator's hot per-tuple path.

#ifndef DSPS_BENCH_INDEX_SERIES_H_
#define DSPS_BENCH_INDEX_SERIES_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "interest/box_index.h"
#include "telemetry/registry.h"

namespace dsps::bench {

inline void ExportIndexStats(const interest::IndexStats& s,
                             telemetry::MetricsRegistry* metrics,
                             const telemetry::Labels& labels = {}) {
  auto set = [&](const char* name, double v) {
    metrics->gauge(name, labels)->Set(v);
  };
  set("index.indexes", static_cast<double>(s.indexes));
  set("index.grid_indexes", static_cast<double>(s.grid_indexes));
  set("index.spline_indexes", static_cast<double>(s.spline_indexes));
  set("index.boxes", static_cast<double>(s.boxes));
  set("index.mem_bytes", static_cast<double>(s.mem_bytes));
  set("index.build_us", s.build_us);
  set("index.lookups", static_cast<double>(s.lookups));
  set("index.spline_lookups", static_cast<double>(s.spline_lookups));
  set("index.spline_fallbacks", static_cast<double>(s.spline_fallbacks));
  set("index.spline_fallback_rate", s.FallbackRate());
  set("index.spline_rebuilds", static_cast<double>(s.spline_rebuilds));
  set("index.spline_knots", static_cast<double>(s.spline_knots));
  set("index.spline_buckets", static_cast<double>(s.spline_buckets));
  set("index.spline_max_error", static_cast<double>(s.spline_max_error));
  set("index.declared_fallback_bound", s.declared_fallback_bound);
}

struct IndexProbeConfig {
  int lookups = 2000;
  uint64_t seed = 97;
  interest::BoxIndex::Config index;
};

/// Builds a BoxIndex over `boxes` (subscriber i holds boxes[i]) inside
/// `domain`, forces the lazy spline build with one warm-up stab, then
/// times `config.lookups` uniform point stabs. Emits under `labels`:
/// index.build_us (gauge: wall clock of inserts + first build),
/// index.lookup_us (histogram: per-stab latency), and the probe index's
/// full stats via ExportIndexStats. The RNG is seeded, so the probed
/// points — and therefore every non-timing value — are deterministic.
inline void RunIndexLookupProbe(const std::vector<interest::Box>& boxes,
                                const interest::Box& domain,
                                const IndexProbeConfig& config,
                                telemetry::MetricsRegistry* metrics,
                                const telemetry::Labels& labels = {}) {
  using Clock = std::chrono::steady_clock;
  auto us_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
  };
  interest::BoxIndex index(domain, config.index);
  std::vector<double> point(domain.size(), 0.0);
  std::vector<int64_t> out;
  auto build_start = Clock::now();
  for (size_t i = 0; i < boxes.size(); ++i) {
    index.Insert(static_cast<int64_t>(i), boxes[i]);
  }
  // First stab pays the lazy spline build; keep it inside the build
  // timer so lookup_us measures steady-state stabs only.
  for (double& v : point) v = 0.0;
  if (!domain.empty()) point[0] = domain[0].lo;
  index.Match(point.data(), &out);
  metrics->gauge("index.build_us", labels)->Set(us_since(build_start));

  common::Rng rng(config.seed);
  auto* lookup_us = metrics->histogram("index.lookup_us", labels);
  for (int i = 0; i < config.lookups; ++i) {
    for (size_t d = 0; d < domain.size(); ++d) {
      point[d] = rng.Uniform(domain[d].lo, domain[d].hi);
    }
    out.clear();
    auto start = Clock::now();
    index.Match(point.data(), &out);
    lookup_us->Observe(us_since(start));
  }
  interest::IndexStats stats;
  index.AddStatsTo(&stats);
  // The probe's wall-clock build time replaces the stats' accumulated
  // spline build_us (already set above); export the rest.
  const double probe_build_us = metrics->gauge("index.build_us", labels)->value();
  ExportIndexStats(stats, metrics, labels);
  metrics->gauge("index.build_us", labels)->Set(probe_build_us);
}

}  // namespace dsps::bench

#endif  // DSPS_BENCH_INDEX_SERIES_H_
