// Reads a span log (JSON lines, one span per line — the format
// telemetry::WriteSpansJsonLines emits) and reports where traced tuples
// spent their time: a per-stage latency table plus the mean end-to-end
// decomposition across complete traces (those with a `result` span),
// mirroring the paper's delay breakdown d_k = dissemination + queueing +
// execution + delivery.
//
// Usage: trace_stats <spans.jsonl>   ("-" reads stdin)

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "telemetry/json.h"
#include "telemetry/sinks.h"
#include "telemetry/trace.h"

namespace {

using dsps::common::Table;
using dsps::telemetry::JsonValue;
using dsps::telemetry::ParseJson;
using dsps::telemetry::Span;
using dsps::telemetry::Stage;
using dsps::telemetry::StageFromName;
using dsps::telemetry::StageName;

/// Parses one JSONL line into a Span; returns false on malformed input.
bool ParseSpanLine(const std::string& line, Span* span) {
  auto parsed = ParseJson(line);
  if (!parsed.ok() || !parsed.value().is_object()) return false;
  const JsonValue& v = parsed.value();
  span->trace = static_cast<int64_t>(v.NumberOr("trace", 0));
  span->stage = StageFromName(v.StringOr("stage", ""));
  span->start = v.NumberOr("start", 0.0);
  span->end = v.NumberOr("end", 0.0);
  span->from = static_cast<int32_t>(v.NumberOr("from", -1));
  span->to = static_cast<int32_t>(v.NumberOr("to", -1));
  span->query = static_cast<int64_t>(v.NumberOr("query", -1));
  return span->trace != 0;
}

void PrintPerStage(const std::vector<Span>& spans) {
  std::map<Stage, dsps::common::Histogram> per_stage;
  for (const Span& s : spans) per_stage[s.stage].Add(s.duration());
  Table table({"stage", "spans", "total ms", "mean ms", "p50 ms", "p95 ms",
               "p99 ms"});
  for (const auto& [stage, hist] : per_stage) {
    table.AddRow({StageName(stage),
                  Table::Int(static_cast<int64_t>(hist.count())),
                  Table::Num(hist.mean() * hist.count() * 1e3, 3),
                  Table::Num(hist.mean() * 1e3, 4),
                  Table::Num(hist.p50() * 1e3, 4),
                  Table::Num(hist.p95() * 1e3, 4),
                  Table::Num(hist.p99() * 1e3, 4)});
  }
  table.Print("Per-stage latency (all spans)");
}

/// Mean decomposition of end-to-end latency over complete traces. The
/// residual row is end-to-end time not covered by any instrumented stage
/// (ideally ~0: the stages partition the tuple's journey).
void PrintBreakdown(const std::vector<Span>& spans) {
  struct TraceAccum {
    std::map<Stage, double> stage_s;
    double end_to_end = -1.0;
  };
  std::map<int64_t, TraceAccum> traces;
  for (const Span& s : spans) {
    TraceAccum& acc = traces[s.trace];
    if (s.stage == Stage::kResult) {
      // A trace may produce several results (multiple matching queries);
      // the breakdown uses the longest journey.
      acc.end_to_end = std::max(acc.end_to_end, s.duration());
    } else {
      acc.stage_s[s.stage] += s.duration();
    }
  }
  std::map<Stage, dsps::common::RunningStat> mean_stage;
  dsps::common::RunningStat mean_e2e, mean_residual;
  for (const auto& [trace, acc] : traces) {
    if (acc.end_to_end < 0) continue;  // incomplete trace: no result span
    double covered = 0.0;
    for (const auto& [stage, seconds] : acc.stage_s) {
      mean_stage[stage].Add(seconds);
      covered += seconds;
    }
    mean_e2e.Add(acc.end_to_end);
    mean_residual.Add(acc.end_to_end - covered);
  }
  if (mean_e2e.count() == 0) {
    std::cout << "No complete traces (no `result` spans); breakdown skipped."
              << std::endl;
    return;
  }
  Table table({"stage", "mean ms/trace", "% of end-to-end"});
  for (const auto& [stage, stat] : mean_stage) {
    table.AddRow({StageName(stage), Table::Num(stat.sum() / mean_e2e.count() * 1e3, 4),
                  Table::Num(100.0 * stat.sum() / mean_e2e.sum(), 1)});
  }
  table.AddRow({"(unattributed)",
                Table::Num(mean_residual.sum() / mean_e2e.count() * 1e3, 4),
                Table::Num(100.0 * mean_residual.sum() / mean_e2e.sum(), 1)});
  table.AddRow({"end-to-end", Table::Num(mean_e2e.mean() * 1e3, 4),
                Table::Num(100.0, 1)});
  std::ostringstream title;
  title << "End-to-end decomposition over "
        << static_cast<int64_t>(mean_e2e.count()) << " complete traces";
  table.Print(title.str());
}

int RunMain(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_stats <spans.jsonl>  (\"-\" for stdin)"
              << std::endl;
    return 2;
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (std::string(argv[1]) != "-") {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "trace_stats: cannot open " << argv[1] << std::endl;
      return 1;
    }
    in = &file;
  }
  std::vector<Span> spans;
  int64_t malformed = 0;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    Span span;
    if (ParseSpanLine(line, &span)) {
      spans.push_back(span);
    } else {
      ++malformed;
    }
  }
  if (spans.empty()) {
    std::cerr << "trace_stats: no valid spans in input (" << malformed
              << " malformed lines)" << std::endl;
    return 1;
  }
  if (malformed > 0) {
    std::cerr << "trace_stats: skipped " << malformed << " malformed lines"
              << std::endl;
  }
  std::cout << "spans: " << spans.size() << std::endl;
  PrintPerStage(spans);
  PrintBreakdown(spans);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
