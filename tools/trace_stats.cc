// Reads a span log (JSON lines, one span or instant per line — the
// format telemetry::WriteSpansJsonLines emits) and reports where traced
// tuples spent their time: a per-stage latency table plus the end-to-end
// decomposition across complete traces (those with a `result` span),
// mirroring the paper's delay breakdown d_k = dissemination + queueing +
// execution + delivery.
//
// Input is parsed strictly: a malformed or truncated line (e.g. the
// partial final line of a killed run) fails the whole invocation with
// its line number — silently skipping lines would bias every statistic.
//
// Usage: trace_stats [--filter-label tenant=<id>] <spans.jsonl>
//        ("-" reads stdin)
//
// Flight-recorder dumps (telemetry::FlightRecorder::DumpJsonl) are the
// same line format plus a `{"flight":1,...}` header; they are accepted
// directly, and the header's recorded/overwritten counts are echoed so a
// post-incident reader knows how much history the ring had kept.
//
// --filter-label tenant=<id> keeps only the traces whose `result` span is
// tagged with that tenant (and the instants), so per-tenant latency can
// be decomposed from a shared span log without re-running the sim.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/trace.h"

namespace {

using dsps::common::Table;
using dsps::telemetry::Span;
using dsps::telemetry::Stage;
using dsps::telemetry::StageName;

void PrintPerStage(const std::vector<Span>& spans) {
  std::map<Stage, dsps::common::Histogram> per_stage;
  for (const Span& s : spans) per_stage[s.stage].Add(s.duration());
  Table table({"stage", "spans", "total ms", "mean ms", "p50 ms", "p95 ms",
               "p99 ms"});
  for (const auto& [stage, hist] : per_stage) {
    table.AddRow({StageName(stage),
                  Table::Int(static_cast<int64_t>(hist.count())),
                  Table::Num(hist.mean() * hist.count() * 1e3, 3),
                  Table::Num(hist.mean() * 1e3, 4),
                  Table::Num(hist.p50() * 1e3, 4),
                  Table::Num(hist.p95() * 1e3, 4),
                  Table::Num(hist.p99() * 1e3, 4)});
  }
  table.Print("Per-stage latency (all spans)");
}

/// Decomposition of end-to-end latency over complete traces: per stage,
/// the distribution (mean/p50/p95/p99) of that stage's total time within
/// one trace — a stage absent from a trace contributes 0, so the means
/// still sum to the mean end-to-end. The residual row is end-to-end time
/// not covered by any instrumented stage (ideally ~0).
void PrintBreakdown(const std::vector<Span>& spans) {
  struct TraceAccum {
    std::map<Stage, double> stage_s;
    double end_to_end = -1.0;
  };
  std::map<int64_t, TraceAccum> traces;
  for (const Span& s : spans) {
    TraceAccum& acc = traces[s.trace];
    if (s.stage == Stage::kResult) {
      // A trace may produce several results (multiple matching queries);
      // the breakdown uses the longest journey.
      acc.end_to_end = std::max(acc.end_to_end, s.duration());
    } else {
      acc.stage_s[s.stage] += s.duration();
    }
  }
  std::vector<const TraceAccum*> complete;
  std::map<Stage, dsps::common::Histogram> per_stage;
  for (const auto& [trace, acc] : traces) {
    if (acc.end_to_end < 0) continue;  // incomplete trace: no result span
    complete.push_back(&acc);
    for (const auto& [stage, seconds] : acc.stage_s) (void)per_stage[stage];
  }
  if (complete.empty()) {
    std::cout << "No complete traces (no `result` spans); breakdown skipped."
              << std::endl;
    return;
  }
  dsps::common::Histogram e2e, residual;
  for (const TraceAccum* acc : complete) {
    double covered = 0.0;
    for (auto& [stage, hist] : per_stage) {
      auto it = acc->stage_s.find(stage);
      double seconds = it == acc->stage_s.end() ? 0.0 : it->second;
      hist.Add(seconds);
      covered += seconds;
    }
    e2e.Add(acc->end_to_end);
    residual.Add(acc->end_to_end - covered);
  }
  Table table({"stage", "mean ms", "p50 ms", "p95 ms", "p99 ms",
               "% of end-to-end"});
  auto row = [&](const char* name, const dsps::common::Histogram& hist) {
    table.AddRow({name, Table::Num(hist.mean() * 1e3, 4),
                  Table::Num(hist.p50() * 1e3, 4),
                  Table::Num(hist.p95() * 1e3, 4),
                  Table::Num(hist.p99() * 1e3, 4),
                  Table::Num(100.0 * hist.mean() * hist.count() /
                                 (e2e.mean() * e2e.count()),
                             1)});
  };
  for (const auto& [stage, hist] : per_stage) row(StageName(stage), hist);
  row("(unattributed)", residual);
  row("end-to-end", e2e);
  std::ostringstream title;
  title << "End-to-end decomposition over " << complete.size()
        << " complete traces (per-trace totals)";
  table.Print(title.str());
}

/// Keeps only the traces whose `result` span carries `tenant`. Non-result
/// spans are not tenant-tagged (the tag is applied where the result is
/// recorded), so membership is decided per trace, not per span.
std::vector<Span> FilterByTenant(const std::vector<Span>& spans,
                                 int64_t tenant) {
  std::map<int64_t, bool> keep;
  for (const Span& s : spans) {
    if (s.stage == Stage::kResult && s.tenant == tenant) keep[s.trace] = true;
  }
  std::vector<Span> out;
  for (const Span& s : spans) {
    auto it = keep.find(s.trace);
    if (it != keep.end() && it->second) out.push_back(s);
  }
  return out;
}

int RunMain(int argc, char** argv) {
  bool have_tenant = false;
  int64_t tenant = -1;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--filter-label") {
      if (i + 1 >= argc) {
        std::cerr << "trace_stats: --filter-label needs tenant=<id>"
                  << std::endl;
        return 2;
      }
      arg = argv[++i];
      const std::string prefix = "tenant=";
      if (arg.rfind(prefix, 0) != 0) {
        std::cerr << "trace_stats: unsupported filter label \"" << arg
                  << "\" (only tenant=<id>)" << std::endl;
        return 2;
      }
      char* end = nullptr;
      tenant = std::strtol(arg.c_str() + prefix.size(), &end, 10);
      if (end == nullptr || *end != '\0' ||
          arg.size() == prefix.size()) {
        std::cerr << "trace_stats: bad tenant id in \"" << arg << "\""
                  << std::endl;
        return 2;
      }
      have_tenant = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::cerr << "usage: trace_stats [--filter-label tenant=<id>] "
                 "<spans.jsonl>  (\"-\" for stdin)"
              << std::endl;
    return 2;
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (positional[0] != "-") {
    file.open(positional[0]);
    if (!file) {
      std::cerr << "trace_stats: cannot open " << positional[0] << std::endl;
      return 1;
    }
    in = &file;
  }
  auto records = dsps::telemetry::ReadTraceJsonLines(*in);
  if (!records.ok()) {
    std::cerr << "trace_stats: " << records.status().ToString()
              << " — refusing to report on partial input" << std::endl;
    return 1;
  }
  if (records.value().from_flight_recorder) {
    std::cout << "flight-recorder dump: capacity "
              << records.value().flight_capacity << ", recorded "
              << records.value().flight_recorded << ", overwritten "
              << records.value().flight_overwritten
              << (records.value().flight_overwritten > 0
                      ? " (oldest events lost)"
                      : "")
              << std::endl;
  }
  std::vector<Span> spans = records.value().spans;
  if (have_tenant) {
    size_t before = spans.size();
    spans = FilterByTenant(spans, tenant);
    std::cout << "filter tenant=" << tenant << ": kept " << spans.size()
              << " of " << before << " spans" << std::endl;
  }
  if (spans.empty()) {
    // A flight dump from an anomaly or fatal abort is often all instants
    // (anomaly.*, net.drop.*) — summarise those instead of failing.
    const auto& instants = records.value().instants;
    if (!have_tenant && !instants.empty()) {
      std::map<std::string, int64_t> by_name;
      for (const auto& inst : instants) by_name[inst.name] += 1;
      Table table({"instant", "events"});
      for (const auto& [name, n] : by_name) {
        table.AddRow({name, Table::Int(n)});
      }
      table.Print("Instants (no spans in input)");
      return 0;
    }
    std::cerr << "trace_stats: no spans "
              << (have_tenant ? "match the filter" : "in input") << std::endl;
    return 1;
  }
  std::cout << "spans: " << spans.size()
            << "  instants: " << records.value().instants.size() << std::endl;
  PrintPerStage(spans);
  PrintBreakdown(spans);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
