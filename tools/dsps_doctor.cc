// Health summarizer over the observability plane's machine-readable
// outputs: audit reports (system::Auditor::WriteReport) and bench JSON
// (telemetry::BenchReport). Prints one table row per file and exits
// non-zero when anything is unhealthy, so CI can gate on it:
//
//   - an audit report is unhealthy when violations > 0 (or it recorded
//     zero sweeps — an auditor that never ran proves nothing);
//   - a bench report is unhealthy when its telemetry.nonfinite_values
//     counter is non-zero (NaN/Inf leaked into the metrics), or when any
//     "unplaced" headline is non-zero (queries were orphaned by a failure
//     and never re-homed — the failover acceptance bar is zero);
//   - "recovery_time" headlines are summarized as a range so the failover
//     experiments' repair latency is visible at a glance;
//   - bench reports carrying per-tenant headline gauges (the multi-tenant
//     benches label headline.tenant_* with {tenant=<name>}) get a
//     per-tenant admission table, and a tenant whose reject count exceeds
//     its declared quota headroom (headline.tenant_quota_headroom) marks
//     the file unhealthy;
//   - reports that publish simulator throughput (headline.sim_events_per_sec
//     plus its self-declared headline.sim_events_per_sec_floor) show the
//     rate in the headline table and go unhealthy when it falls below the
//     floor — the order-of-magnitude-collapse alarm backing the E13
//     bench_diff gate;
//   - reports carrying index.* gauges (the learned-interest-index series
//     the index-bearing benches export per label scope) get a per-scope
//     index table: strategy mix, box count, spline error bound, lookup
//     p95 (from the index.lookup_us histogram when present), and the
//     spline fallback rate. A scope whose fallback rate exceeds its
//     declared bound (index.declared_fallback_bound) marks the file
//     unhealthy — the spline's bounded-error self-certification failed
//     more often than it promised;
//   - reports with anomaly.* counters (runs under telemetry::Watchdog)
//     get an anomaly table, one row per detector. Anomalies alone do not
//     mark a file unhealthy — fault-injection legs flag them by design;
//     the benches' own acceptance bars decide which ones are fatal;
//   - non-zero trace.dropped_spans / trace.dropped_instants (span budget
//     exhausted — the decomposition silently under-counts; raise
//     max_spans or switch to stage aggregation) and non-zero
//     common.histogram_overflow (an exact histogram hit its sample cap)
//     mark the file unhealthy: truncated telemetry must never pass for
//     complete.
//
// Usage: dsps_doctor <report.json>...
// Exit status: 0 = healthy, 1 = violations found, 2 = usage/parse error.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "telemetry/json.h"

namespace {

using dsps::common::Table;
using dsps::telemetry::JsonValue;
using dsps::telemetry::ParseJson;

struct TenantHealth {
  double submitted = 0.0;
  double admitted = 0.0;
  double queued = 0.0;
  double degraded = 0.0;
  double rejected = 0.0;
  double slo_attainment = -1.0;  // worst across scenarios; -1 = none seen
  double quota_headroom = -1.0;  // reject budget; -1 = not declared
};

struct IndexHealth {
  double indexes = 0.0;
  double grid_indexes = 0.0;
  double spline_indexes = 0.0;
  double boxes = 0.0;
  double mem_bytes = 0.0;
  double spline_max_error = 0.0;
  double fallback_rate = -1.0;    // -1 = not reported
  double declared_bound = -1.0;   // -1 = not declared
  double spline_lookups = 0.0;
  double lookup_p95_us = -1.0;    // -1 = no lookup histogram in scope
};

struct FileHealth {
  std::string path;
  std::string kind;
  std::string summary;
  bool healthy = true;
  /// Per-tenant admission rollup (empty for non-tenant reports).
  std::map<std::string, TenantHealth> tenants;
  /// Per-scope learned-index rollup keyed by the sample's full label
  /// set (empty for reports without index.* series).
  std::map<std::string, IndexHealth> indexes;
  /// Watchdog anomaly counts keyed by detector name (empty when the run
  /// had no watchdog or it stayed silent).
  std::map<std::string, double> anomalies;
};

/// {"report":"audit","sweeps":..,"violations":..,"checks":[...]}
FileHealth SummarizeAudit(const std::string& path, const JsonValue& doc) {
  FileHealth h;
  h.path = path;
  h.kind = "audit";
  auto sweeps = static_cast<int64_t>(doc.NumberOr("sweeps", 0));
  auto violations = static_cast<int64_t>(doc.NumberOr("violations", -1));
  std::ostringstream os;
  os << sweeps << " sweeps, " << violations << " violations";
  if (violations != 0) {
    h.healthy = false;
    const JsonValue* checks = doc.Find("checks");
    if (checks != nullptr && checks->is_array()) {
      for (const JsonValue& check : checks->items) {
        if (check.NumberOr("violations", 0) > 0) {
          os << "; " << check.StringOr("name", "?") << ": "
             << check.StringOr("last_detail", "?");
          break;
        }
      }
    }
  } else if (sweeps == 0) {
    h.healthy = false;
    os << " (auditor never ran)";
  }
  h.summary = os.str();
  return h;
}

/// {"bench":name,"metrics":[{"name":..,"value":..},...],...}
FileHealth SummarizeBench(const std::string& path, const JsonValue& doc) {
  FileHealth h;
  h.path = path;
  h.kind = "bench " + doc.StringOr("bench", "?");
  double nonfinite = 0.0;
  double audit_violations = 0.0;
  double unplaced = 0.0;
  double anomaly_total = 0.0;
  double dropped_spans = 0.0;
  double dropped_instants = 0.0;
  double histogram_overflow = 0.0;
  double recovery_min = 0.0, recovery_max = 0.0;
  int recovery_samples = 0;
  double events_per_sec = -1.0;
  double events_per_sec_floor = -1.0;
  size_t num_metrics = 0;
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics != nullptr && metrics->is_array()) {
    num_metrics = metrics->items.size();
    for (const JsonValue& sample : metrics->items) {
      std::string name = sample.StringOr("name", "");
      if (name == "telemetry.nonfinite_values") {
        nonfinite += sample.NumberOr("value", 0.0);
      } else if (name == "audit.violations") {
        audit_violations += sample.NumberOr("value", 0.0);
      } else if (name == "anomaly.total") {
        anomaly_total += sample.NumberOr("value", 0.0);
      } else if (name == "anomaly.events") {
        const JsonValue* labels = sample.Find("labels");
        std::string detector =
            labels != nullptr ? labels->StringOr("detector", "") : "";
        if (detector.empty()) detector = "(unlabeled)";
        h.anomalies[detector] += sample.NumberOr("value", 0.0);
      } else if (name == "trace.dropped_spans") {
        dropped_spans += sample.NumberOr("value", 0.0);
      } else if (name == "trace.dropped_instants") {
        dropped_instants += sample.NumberOr("value", 0.0);
      } else if (name == "common.histogram_overflow") {
        histogram_overflow += sample.NumberOr("value", 0.0);
      } else if (name.rfind("headline.tenant_", 0) == 0) {
        const JsonValue* labels = sample.Find("labels");
        std::string who =
            labels != nullptr ? labels->StringOr("tenant", "") : "";
        if (who.empty()) continue;
        TenantHealth& t = h.tenants[who];
        double value = sample.NumberOr("value", 0.0);
        std::string field = name.substr(std::string("headline.").size());
        if (field == "tenant_submitted") {
          t.submitted += value;
        } else if (field == "tenant_admitted") {
          t.admitted += value;
        } else if (field == "tenant_queued") {
          t.queued += value;
        } else if (field == "tenant_degraded") {
          t.degraded += value;
        } else if (field == "tenant_rejected") {
          t.rejected += value;
        } else if (field == "tenant_slo_attainment") {
          // Several scenarios may report; the doctor keeps the worst.
          t.slo_attainment = t.slo_attainment < 0
                                 ? value
                                 : std::min(t.slo_attainment, value);
        } else if (field == "tenant_quota_headroom") {
          t.quota_headroom = t.quota_headroom < 0
                                 ? value
                                 : std::min(t.quota_headroom, value);
        }
      } else if (name == "headline.sim_events_per_sec") {
        events_per_sec = sample.NumberOr("value", -1.0);
      } else if (name == "headline.sim_events_per_sec_floor") {
        events_per_sec_floor = sample.NumberOr("value", -1.0);
      } else if (name.rfind("index.", 0) == 0) {
        // One IndexHealth rollup per label set (the benches label each
        // index scope — "system", "probe", per-(boxes,strategy), ...).
        const JsonValue* labels = sample.Find("labels");
        std::string scope;
        if (labels != nullptr && labels->is_object()) {
          for (const auto& [k, v] : labels->members) {
            if (!scope.empty()) scope += ",";
            scope += k + "=" + (v.kind == JsonValue::Kind::kString
                                    ? v.string
                                    : std::to_string(v.number));
          }
        }
        if (scope.empty()) scope = "(unlabeled)";
        IndexHealth& ix = h.indexes[scope];
        double value = sample.NumberOr("value", 0.0);
        if (name == "index.indexes") {
          ix.indexes = value;
        } else if (name == "index.grid_indexes") {
          ix.grid_indexes = value;
        } else if (name == "index.spline_indexes") {
          ix.spline_indexes = value;
        } else if (name == "index.boxes") {
          ix.boxes = value;
        } else if (name == "index.mem_bytes") {
          ix.mem_bytes = value;
        } else if (name == "index.spline_max_error") {
          ix.spline_max_error = value;
        } else if (name == "index.spline_fallback_rate") {
          ix.fallback_rate = value;
        } else if (name == "index.declared_fallback_bound") {
          ix.declared_bound = value;
        } else if (name == "index.spline_lookups") {
          ix.spline_lookups = value;
        } else if (name == "index.lookup_us.p95") {
          ix.lookup_p95_us = value;
        }
      } else if (name.rfind("headline.", 0) == 0) {
        double value = sample.NumberOr("value", 0.0);
        if (name.find("unplaced") != std::string::npos) {
          unplaced += value;
        } else if (name.find("recovery_time") != std::string::npos) {
          recovery_min =
              recovery_samples == 0 ? value : std::min(recovery_min, value);
          recovery_max =
              recovery_samples == 0 ? value : std::max(recovery_max, value);
          ++recovery_samples;
        }
      }
    }
  }
  size_t num_series = 0;
  const JsonValue* series = doc.Find("series");
  if (series != nullptr && series->is_array()) num_series = series->items.size();
  std::ostringstream os;
  os << num_metrics << " metrics, " << num_series << " series blocks";
  if (recovery_samples == 1) {
    os << ", recovery " << recovery_max << " s";
  } else if (recovery_samples > 1) {
    os << ", recovery " << recovery_min << ".." << recovery_max << " s";
  }
  if (events_per_sec >= 0) {
    os << ", " << static_cast<int64_t>(events_per_sec) << " events/s";
    if (events_per_sec_floor >= 0 && events_per_sec < events_per_sec_floor) {
      h.healthy = false;
      os << " < floor " << static_cast<int64_t>(events_per_sec_floor);
    }
  }
  if (nonfinite > 0) {
    h.healthy = false;
    os << "; " << nonfinite << " non-finite values";
  }
  if (audit_violations > 0) {
    h.healthy = false;
    os << "; " << audit_violations << " audit violations";
  }
  if (unplaced > 0) {
    h.healthy = false;
    os << "; " << unplaced << " queries unplaced";
  }
  // Anomalies are surfaced, not judged: fault legs raise them by design,
  // and each bench's own acceptance bars decide which ones abort.
  if (anomaly_total > 0) {
    os << "; " << anomaly_total << " anomalies flagged";
  }
  if (dropped_spans > 0 || dropped_instants > 0) {
    h.healthy = false;
    os << "; trace dropped " << dropped_spans << " spans / "
       << dropped_instants
       << " instants (budget exhausted — raise max_spans/max_instants or "
          "aggregate stages)";
  }
  if (histogram_overflow > 0) {
    h.healthy = false;
    os << "; " << histogram_overflow
       << " histogram samples dropped at the cap (use telemetry::Sketch "
          "for unbounded streams)";
  }
  for (const auto& [who, t] : h.tenants) {
    if (t.quota_headroom >= 0 && t.rejected > t.quota_headroom) {
      h.healthy = false;
      os << "; tenant " << who << " rejected " << t.rejected
         << " > headroom " << t.quota_headroom;
    }
  }
  for (const auto& [scope, ix] : h.indexes) {
    // Only judge scopes that actually took spline lookups: a scope with
    // zero spline traffic has nothing to certify.
    if (ix.declared_bound >= 0 && ix.spline_lookups > 0 &&
        ix.fallback_rate > ix.declared_bound) {
      h.healthy = false;
      os << "; index " << scope << " fallback rate " << ix.fallback_rate
         << " > declared bound " << ix.declared_bound;
    }
  }
  h.summary = os.str();
  return h;
}

void PrintIndexTable(const FileHealth& h) {
  Table table({"scope", "strategy", "boxes", "mem MB", "max err",
               "lookup p95 us", "fallback rate", "bound"});
  for (const auto& [scope, ix] : h.indexes) {
    std::string strategy;
    if (ix.spline_indexes > 0 && ix.grid_indexes > 0) {
      strategy = "mixed (" + Table::Num(ix.grid_indexes, 0) + " grid / " +
                 Table::Num(ix.spline_indexes, 0) + " spline)";
    } else if (ix.spline_indexes > 0) {
      strategy = "spline";
    } else if (ix.grid_indexes > 0) {
      strategy = "grid";
    } else {
      strategy = "-";
    }
    table.AddRow(
        {scope, strategy, Table::Num(ix.boxes, 0),
         Table::Num(ix.mem_bytes / 1e6, 2), Table::Num(ix.spline_max_error, 0),
         ix.lookup_p95_us < 0 ? "-" : Table::Num(ix.lookup_p95_us, 3),
         ix.fallback_rate < 0 ? "-" : Table::Num(ix.fallback_rate, 4),
         ix.declared_bound < 0 ? "-" : Table::Num(ix.declared_bound, 4)});
  }
  table.Print("Interest indexes in " + h.path);
}

void PrintTenantTable(const FileHealth& h) {
  Table table({"tenant", "submitted", "admitted", "queued", "degraded",
               "rejected", "headroom", "worst SLO attain"});
  for (const auto& [who, t] : h.tenants) {
    table.AddRow(
        {who, Table::Num(t.submitted, 0), Table::Num(t.admitted, 0),
         Table::Num(t.queued, 0), Table::Num(t.degraded, 0),
         Table::Num(t.rejected, 0),
         t.quota_headroom < 0 ? "-" : Table::Num(t.quota_headroom, 0),
         t.slo_attainment < 0 ? "-" : Table::Num(t.slo_attainment, 3)});
  }
  table.Print("Tenants in " + h.path);
}

void PrintAnomalyTable(const FileHealth& h) {
  Table table({"detector", "events"});
  for (const auto& [detector, events] : h.anomalies) {
    table.AddRow({detector, Table::Num(events, 0)});
  }
  table.Print("Anomalies in " + h.path);
}

int RunMain(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: dsps_doctor <report.json>..." << std::endl;
    return 2;
  }
  std::vector<FileHealth> results;
  for (int i = 1; i < argc; ++i) {
    std::string path = argv[i];
    std::ifstream file(path);
    if (!file) {
      std::cerr << "dsps_doctor: cannot open " << path << std::endl;
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    auto parsed = ParseJson(buf.str());
    if (!parsed.ok()) {
      std::cerr << "dsps_doctor: " << path << ": "
                << parsed.status().ToString() << std::endl;
      return 2;
    }
    const JsonValue& doc = parsed.value();
    if (doc.StringOr("report", "") == "audit") {
      results.push_back(SummarizeAudit(path, doc));
    } else if (doc.Find("bench") != nullptr) {
      results.push_back(SummarizeBench(path, doc));
    } else {
      std::cerr << "dsps_doctor: " << path
                << ": neither an audit report nor a bench report"
                << std::endl;
      return 2;
    }
  }
  Table table({"file", "kind", "status", "summary"});
  bool all_healthy = true;
  for (const FileHealth& h : results) {
    all_healthy = all_healthy && h.healthy;
    table.AddRow({h.path, h.kind, h.healthy ? "OK" : "UNHEALTHY", h.summary});
  }
  table.Print("dsps_doctor");
  for (const FileHealth& h : results) {
    if (!h.tenants.empty()) PrintTenantTable(h);
    if (!h.indexes.empty()) PrintIndexTable(h);
    if (!h.anomalies.empty()) PrintAnomalyTable(h);
  }
  return all_healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
