// Health summarizer over the observability plane's machine-readable
// outputs: audit reports (system::Auditor::WriteReport) and bench JSON
// (telemetry::BenchReport). Prints one table row per file and exits
// non-zero when anything is unhealthy, so CI can gate on it:
//
//   - an audit report is unhealthy when violations > 0 (or it recorded
//     zero sweeps — an auditor that never ran proves nothing);
//   - a bench report is unhealthy when its telemetry.nonfinite_values
//     counter is non-zero (NaN/Inf leaked into the metrics), or when any
//     "unplaced" headline is non-zero (queries were orphaned by a failure
//     and never re-homed — the failover acceptance bar is zero);
//   - "recovery_time" headlines are summarized as a range so the failover
//     experiments' repair latency is visible at a glance.
//
// Usage: dsps_doctor <report.json>...
// Exit status: 0 = healthy, 1 = violations found, 2 = usage/parse error.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "telemetry/json.h"

namespace {

using dsps::common::Table;
using dsps::telemetry::JsonValue;
using dsps::telemetry::ParseJson;

struct FileHealth {
  std::string path;
  std::string kind;
  std::string summary;
  bool healthy = true;
};

/// {"report":"audit","sweeps":..,"violations":..,"checks":[...]}
FileHealth SummarizeAudit(const std::string& path, const JsonValue& doc) {
  FileHealth h;
  h.path = path;
  h.kind = "audit";
  auto sweeps = static_cast<int64_t>(doc.NumberOr("sweeps", 0));
  auto violations = static_cast<int64_t>(doc.NumberOr("violations", -1));
  std::ostringstream os;
  os << sweeps << " sweeps, " << violations << " violations";
  if (violations != 0) {
    h.healthy = false;
    const JsonValue* checks = doc.Find("checks");
    if (checks != nullptr && checks->is_array()) {
      for (const JsonValue& check : checks->items) {
        if (check.NumberOr("violations", 0) > 0) {
          os << "; " << check.StringOr("name", "?") << ": "
             << check.StringOr("last_detail", "?");
          break;
        }
      }
    }
  } else if (sweeps == 0) {
    h.healthy = false;
    os << " (auditor never ran)";
  }
  h.summary = os.str();
  return h;
}

/// {"bench":name,"metrics":[{"name":..,"value":..},...],...}
FileHealth SummarizeBench(const std::string& path, const JsonValue& doc) {
  FileHealth h;
  h.path = path;
  h.kind = "bench " + doc.StringOr("bench", "?");
  double nonfinite = 0.0;
  double audit_violations = 0.0;
  double unplaced = 0.0;
  double recovery_min = 0.0, recovery_max = 0.0;
  int recovery_samples = 0;
  size_t num_metrics = 0;
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics != nullptr && metrics->is_array()) {
    num_metrics = metrics->items.size();
    for (const JsonValue& sample : metrics->items) {
      std::string name = sample.StringOr("name", "");
      if (name == "telemetry.nonfinite_values") {
        nonfinite += sample.NumberOr("value", 0.0);
      } else if (name == "audit.violations") {
        audit_violations += sample.NumberOr("value", 0.0);
      } else if (name.rfind("headline.", 0) == 0) {
        double value = sample.NumberOr("value", 0.0);
        if (name.find("unplaced") != std::string::npos) {
          unplaced += value;
        } else if (name.find("recovery_time") != std::string::npos) {
          recovery_min =
              recovery_samples == 0 ? value : std::min(recovery_min, value);
          recovery_max =
              recovery_samples == 0 ? value : std::max(recovery_max, value);
          ++recovery_samples;
        }
      }
    }
  }
  size_t num_series = 0;
  const JsonValue* series = doc.Find("series");
  if (series != nullptr && series->is_array()) num_series = series->items.size();
  std::ostringstream os;
  os << num_metrics << " metrics, " << num_series << " series blocks";
  if (recovery_samples == 1) {
    os << ", recovery " << recovery_max << " s";
  } else if (recovery_samples > 1) {
    os << ", recovery " << recovery_min << ".." << recovery_max << " s";
  }
  if (nonfinite > 0) {
    h.healthy = false;
    os << "; " << nonfinite << " non-finite values";
  }
  if (audit_violations > 0) {
    h.healthy = false;
    os << "; " << audit_violations << " audit violations";
  }
  if (unplaced > 0) {
    h.healthy = false;
    os << "; " << unplaced << " queries unplaced";
  }
  h.summary = os.str();
  return h;
}

int RunMain(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: dsps_doctor <report.json>..." << std::endl;
    return 2;
  }
  std::vector<FileHealth> results;
  for (int i = 1; i < argc; ++i) {
    std::string path = argv[i];
    std::ifstream file(path);
    if (!file) {
      std::cerr << "dsps_doctor: cannot open " << path << std::endl;
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    auto parsed = ParseJson(buf.str());
    if (!parsed.ok()) {
      std::cerr << "dsps_doctor: " << path << ": "
                << parsed.status().ToString() << std::endl;
      return 2;
    }
    const JsonValue& doc = parsed.value();
    if (doc.StringOr("report", "") == "audit") {
      results.push_back(SummarizeAudit(path, doc));
    } else if (doc.Find("bench") != nullptr) {
      results.push_back(SummarizeBench(path, doc));
    } else {
      std::cerr << "dsps_doctor: " << path
                << ": neither an audit report nor a bench report"
                << std::endl;
      return 2;
    }
  }
  Table table({"file", "kind", "status", "summary"});
  bool all_healthy = true;
  for (const FileHealth& h : results) {
    all_healthy = all_healthy && h.healthy;
    table.AddRow({h.path, h.kind, h.healthy ? "OK" : "UNHEALTHY", h.summary});
  }
  table.Print("dsps_doctor");
  return all_healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
