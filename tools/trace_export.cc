// Converts a span/instant JSONL log (the format
// telemetry::WriteSpansJsonLines emits) into a Chrome trace-event JSON
// document loadable by chrome://tracing, Perfetto (ui.perfetto.dev), and
// speedscope. Traced tuples appear as one track each (their causal spans
// laid out in simulated time); control-plane instants (repartition
// rounds, tree reorganizations, crash/recover/detect events) appear as
// global markers on a separate "system events" process.
//
// Input is parsed strictly: a malformed or truncated line fails the
// whole export with its line number.
//
// Usage: trace_export <spans.jsonl> [out.json]
//        ("-" reads stdin; default output is stdout)

#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/chrome_trace.h"

namespace {

int RunMain(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << "usage: trace_export <spans.jsonl> [out.json]  "
                 "(\"-\" for stdin)"
              << std::endl;
    return 2;
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (std::string(argv[1]) != "-") {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "trace_export: cannot open " << argv[1] << std::endl;
      return 1;
    }
    in = &file;
  }
  auto records = dsps::telemetry::ReadTraceJsonLines(*in);
  if (!records.ok()) {
    std::cerr << "trace_export: " << records.status().ToString()
              << " — refusing to export partial input" << std::endl;
    return 1;
  }
  std::string json = dsps::telemetry::ToChromeTraceJson(records.value());
  if (argc == 3) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "trace_export: cannot open " << argv[2] << std::endl;
      return 1;
    }
    out << json << '\n';
    out.flush();
    if (!out) {
      std::cerr << "trace_export: write failed for " << argv[2] << std::endl;
      return 1;
    }
    std::cerr << "trace_export: wrote " << records.value().spans.size()
              << " spans + " << records.value().instants.size()
              << " instants to " << argv[2] << std::endl;
  } else {
    std::cout << json << std::endl;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunMain(argc, argv); }
