#ifndef DSPS_ENGINE_QUERY_BUILDER_H_
#define DSPS_ENGINE_QUERY_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/operators.h"
#include "engine/plan.h"
#include "interest/measure.h"

namespace dsps::engine {

/// Fluent construction of the common continuous-query shapes, deriving the
/// query's data interest from its filters automatically:
///
///   auto q = QueryBuilder(42)
///                .From(ticker, catalog)            // stream + domains
///                .Where(0, 10, 20)                 // symbol in [10, 20]
///                .Where(1, 50, 100)                // price in [50, 100]
///                .Aggregate(WindowAggregateOp::Func::kAvg,
///                           /*window_s=*/10, /*key=*/0, /*value=*/1)
///                .Build();
///
/// Join queries combine two builders:
///
///   auto q = QueryBuilder::Join(43, left_side, right_side,
///                               /*window_s=*/5, /*lkey=*/0, /*rkey=*/0);
///
/// Build() validates the plan; errors surface as a failed Result rather
/// than a malformed query.
class QueryBuilder {
 public:
  explicit QueryBuilder(common::QueryId id);

  /// Binds the source stream; `catalog` supplies the attribute domains so
  /// unconstrained dimensions default to the full range. Must be called
  /// before Where/Aggregate/TopK.
  QueryBuilder& From(common::StreamId stream,
                     const interest::StreamCatalog& catalog);

  /// Adds the conjunct `lo <= attribute[dim] <= hi` to the selection.
  QueryBuilder& Where(int dim, double lo, double hi);

  /// Appends a tumbling-window aggregate over the selection.
  QueryBuilder& Aggregate(WindowAggregateOp::Func func, double window_s,
                          int key_field, int value_field);

  /// Appends a sliding-window aggregate over the selection.
  QueryBuilder& SlidingAggregate(WindowAggregateOp::Func func,
                                 double window_s, double slide_s,
                                 int key_field, int value_field);

  /// Appends a per-window top-k over the selection.
  QueryBuilder& TopK(double window_s, int k, int key_field, int value_field);

  /// Appends time-windowed duplicate elimination.
  QueryBuilder& Distinct(double window_s, int key_field);

  /// Finalizes into a Query (filter plus appended operators). Fails if
  /// From() was never called or the plan fails validation.
  common::Result<Query> Build();

  /// A windowed equi-join of two single-stream selections: each side's
  /// filter feeds one join input. Aggregates/TopK requested on the sides
  /// are rejected (compose them downstream of the join instead).
  static common::Result<Query> Join(common::QueryId id,
                                    const QueryBuilder& left,
                                    const QueryBuilder& right, double window_s,
                                    int left_key, int right_key);

 private:
  struct Stage {
    std::unique_ptr<Operator> op;
  };
  common::Status BuildFilter(QueryPlan* plan, common::OperatorId* filter_out,
                             interest::InterestSet* interest) const;

  common::QueryId id_;
  common::StreamId stream_ = common::kInvalidStream;
  interest::Box domain_;
  interest::Box selection_;
  std::vector<Stage> stages_;
  bool has_source_ = false;
};

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_QUERY_BUILDER_H_
