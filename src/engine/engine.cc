#include "engine/engine.h"

#include <utility>

#include "common/check.h"

namespace dsps::engine {

common::Status ExecutionEngine::Install(
    std::unique_ptr<FragmentInstance> fragment) {
  DSPS_CHECK(fragment != nullptr);
  common::FragmentId id = fragment->id();
  if (fragments_.count(id) > 0) {
    return common::Status::AlreadyExists("fragment already installed");
  }
  fragments_[id] = std::move(fragment);
  return common::Status::OK();
}

common::Result<std::unique_ptr<FragmentInstance>> ExecutionEngine::Remove(
    common::FragmentId id, std::vector<TaggedOutput>* out) {
  (void)out;
  auto it = fragments_.find(id);
  if (it == fragments_.end()) {
    return common::Status::NotFound("fragment not installed");
  }
  std::unique_ptr<FragmentInstance> frag = std::move(it->second);
  fragments_.erase(it);
  return frag;
}

FragmentInstance* ExecutionEngine::Find(common::FragmentId id) {
  auto it = fragments_.find(id);
  return it == fragments_.end() ? nullptr : it->second.get();
}

std::vector<common::FragmentId> ExecutionEngine::fragment_ids() const {
  std::vector<common::FragmentId> ids;
  ids.reserve(fragments_.size());
  for (const auto& [id, frag] : fragments_) ids.push_back(id);
  return ids;
}

// -------------------------------------------------------------- BasicEngine

common::Status BasicEngine::Inject(common::FragmentId fragment,
                                   common::OperatorId op, int port,
                                   const Tuple& tuple,
                                   std::vector<TaggedOutput>* out) {
  FragmentInstance* frag = Find(fragment);
  if (frag == nullptr) return common::Status::NotFound("fragment not found");
  std::vector<FragmentInstance::Output> local;
  DSPS_RETURN_IF_ERROR(frag->Inject(op, port, tuple, &local));
  pending_cost_ += frag->DrainCpuCost();
  for (auto& o : local) out->push_back(TaggedOutput{fragment, std::move(o)});
  return common::Status::OK();
}

void BasicEngine::Flush(std::vector<TaggedOutput>* /*out*/) {}

double BasicEngine::DrainCpuCost() {
  double c = pending_cost_;
  pending_cost_ = 0.0;
  return c;
}

// -------------------------------------------------------------- BatchEngine

BatchEngine::BatchEngine(int batch_size, double cpu_discount,
                         double batch_overhead_s)
    : batch_size_(batch_size),
      cpu_discount_(cpu_discount),
      batch_overhead_s_(batch_overhead_s) {
  DSPS_CHECK(batch_size >= 1);
}

common::Status BatchEngine::Inject(common::FragmentId fragment,
                                   common::OperatorId op, int port,
                                   const Tuple& tuple,
                                   std::vector<TaggedOutput>* out) {
  if (Find(fragment) == nullptr) {
    return common::Status::NotFound("fragment not found");
  }
  buffer_.push_back(Buffered{fragment, op, port, tuple});
  if (static_cast<int>(buffer_.size()) >= batch_size_) RunBatch(out);
  return common::Status::OK();
}

void BatchEngine::RunBatch(std::vector<TaggedOutput>* out) {
  if (buffer_.empty()) return;
  std::vector<Buffered> batch;
  batch.swap(buffer_);
  pending_cost_ += batch_overhead_s_;
  std::vector<FragmentInstance::Output> local;
  for (Buffered& b : batch) {
    FragmentInstance* frag = Find(b.fragment);
    // Fragment may have been removed between buffering and flush.
    if (frag == nullptr) continue;
    local.clear();
    common::Status s = frag->Inject(b.op, b.port, b.tuple, &local);
    DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    pending_cost_ += frag->DrainCpuCost() * cpu_discount_;
    for (auto& o : local) {
      out->push_back(TaggedOutput{b.fragment, std::move(o)});
    }
  }
}

void BatchEngine::Flush(std::vector<TaggedOutput>* out) { RunBatch(out); }

double BatchEngine::DrainCpuCost() {
  double c = pending_cost_;
  pending_cost_ = 0.0;
  return c;
}

common::Result<std::unique_ptr<FragmentInstance>> BatchEngine::Remove(
    common::FragmentId id, std::vector<TaggedOutput>* out) {
  // Flush buffered work first so the migrated fragment carries a state that
  // reflects every tuple it was given.
  RunBatch(out);
  return ExecutionEngine::Remove(id, out);
}

}  // namespace dsps::engine
