#include "engine/query_builder.h"

#include <utility>

#include "common/check.h"

namespace dsps::engine {

QueryBuilder::QueryBuilder(common::QueryId id) : id_(id) {}

QueryBuilder& QueryBuilder::From(common::StreamId stream,
                                 const interest::StreamCatalog& catalog) {
  DSPS_CHECK_MSG(!has_source_, "From() called twice");
  DSPS_CHECK_MSG(catalog.Contains(stream), "unknown stream %d", stream);
  stream_ = stream;
  domain_ = catalog.stats(stream).domain;
  selection_ = domain_;
  has_source_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::Where(int dim, double lo, double hi) {
  DSPS_CHECK_MSG(has_source_, "Where() before From()");
  DSPS_CHECK_MSG(dim >= 0 && static_cast<size_t>(dim) < selection_.size(),
                 "dimension %d out of range", dim);
  selection_[dim] = selection_[dim].Intersect(interest::Interval{lo, hi});
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(WindowAggregateOp::Func func,
                                      double window_s, int key_field,
                                      int value_field) {
  stages_.push_back(Stage{std::make_unique<WindowAggregateOp>(
      window_s, func, key_field, value_field)});
  return *this;
}

QueryBuilder& QueryBuilder::SlidingAggregate(WindowAggregateOp::Func func,
                                             double window_s, double slide_s,
                                             int key_field, int value_field) {
  stages_.push_back(Stage{std::make_unique<SlidingWindowAggregateOp>(
      window_s, slide_s, func, key_field, value_field)});
  return *this;
}

QueryBuilder& QueryBuilder::TopK(double window_s, int k, int key_field,
                                 int value_field) {
  stages_.push_back(
      Stage{std::make_unique<TopKOp>(window_s, k, key_field, value_field)});
  return *this;
}

QueryBuilder& QueryBuilder::Distinct(double window_s, int key_field) {
  stages_.push_back(Stage{std::make_unique<DistinctOp>(window_s, key_field)});
  return *this;
}

common::Status QueryBuilder::BuildFilter(QueryPlan* plan,
                                         common::OperatorId* filter_out,
                                         interest::InterestSet* interest) const {
  if (!has_source_) {
    return common::Status::FailedPrecondition("QueryBuilder without From()");
  }
  if (interest::BoxEmpty(selection_)) {
    return common::Status::InvalidArgument("selection is empty");
  }
  std::vector<int> dims(selection_.size());
  for (size_t d = 0; d < selection_.size(); ++d) dims[d] = static_cast<int>(d);
  auto filter = std::make_unique<FilterOp>(dims, selection_);
  double dom_vol = interest::BoxVolume(domain_);
  if (dom_vol > 0) {
    filter->set_estimated_selectivity(interest::BoxVolume(selection_) /
                                      dom_vol);
  }
  *filter_out = plan->AddOperator(std::move(filter));
  DSPS_RETURN_IF_ERROR(plan->BindStream(stream_, *filter_out, 0));
  interest->Add(stream_, selection_);
  return common::Status::OK();
}

common::Result<Query> QueryBuilder::Build() {
  Query q;
  q.id = id_;
  auto plan = std::make_shared<QueryPlan>();
  common::OperatorId prev = -1;
  DSPS_RETURN_IF_ERROR(BuildFilter(plan.get(), &prev, &q.interest));
  for (Stage& stage : stages_) {
    common::OperatorId next = plan->AddOperator(std::move(stage.op));
    DSPS_RETURN_IF_ERROR(plan->Connect(prev, next, 0));
    prev = next;
  }
  DSPS_RETURN_IF_ERROR(plan->Validate());
  q.plan = std::move(plan);
  return q;
}

common::Result<Query> QueryBuilder::Join(common::QueryId id,
                                         const QueryBuilder& left,
                                         const QueryBuilder& right,
                                         double window_s, int left_key,
                                         int right_key) {
  if (!left.stages_.empty() || !right.stages_.empty()) {
    return common::Status::InvalidArgument(
        "join sides must be plain selections");
  }
  Query q;
  q.id = id;
  auto plan = std::make_shared<QueryPlan>();
  common::OperatorId lf = -1, rf = -1;
  DSPS_RETURN_IF_ERROR(left.BuildFilter(plan.get(), &lf, &q.interest));
  DSPS_RETURN_IF_ERROR(right.BuildFilter(plan.get(), &rf, &q.interest));
  auto join = std::make_unique<WindowJoinOp>(window_s, left_key, right_key);
  common::OperatorId j = plan->AddOperator(std::move(join));
  DSPS_RETURN_IF_ERROR(plan->Connect(lf, j, 0));
  DSPS_RETURN_IF_ERROR(plan->Connect(rf, j, 1));
  DSPS_RETURN_IF_ERROR(plan->Validate());
  q.plan = std::move(plan);
  return q;
}

}  // namespace dsps::engine
