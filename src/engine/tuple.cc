#include "engine/tuple.h"

namespace dsps::engine {

double AsDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return 0.0;
}

int64_t AsInt64(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  return 0;
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Schema::NumericFieldIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type != ValueType::kString) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

int64_t Tuple::SizeBytes() const {
  // Fixed header (stream id + timestamp) plus per-field payload.
  int64_t size = 12;
  for (const Value& v : values) {
    if (const auto* s = std::get_if<std::string>(&v)) {
      size += 4 + static_cast<int64_t>(s->size());
    } else {
      size += 8;
    }
  }
  return size;
}

void ExtractNumeric(const Tuple& tuple, const std::vector<int>& numeric_indices,
                    std::vector<double>* out) {
  out->resize(numeric_indices.size());
  for (size_t i = 0; i < numeric_indices.size(); ++i) {
    int idx = numeric_indices[i];
    (*out)[i] = idx >= 0 && static_cast<size_t>(idx) < tuple.values.size()
                    ? AsDouble(tuple.values[idx])
                    : 0.0;
  }
}

}  // namespace dsps::engine
