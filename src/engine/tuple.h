#ifndef DSPS_ENGINE_TUPLE_H_
#define DSPS_ENGINE_TUPLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"

namespace dsps::engine {

/// Types a tuple field can hold.
enum class ValueType { kInt64, kDouble, kString };

/// A single field value.
using Value = std::variant<int64_t, double, std::string>;

/// Returns the value as a double for numeric types; strings return 0.
double AsDouble(const Value& v);

/// Returns the value as int64 (doubles truncate, strings return 0).
int64_t AsInt64(const Value& v);

/// One field of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// An ordered, named list of fields describing one stream or one operator
/// output. Schemas are immutable after construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Indices of all numeric (int64/double) fields, in schema order. The
  /// interest boxes of a stream are defined over exactly these dimensions.
  std::vector<int> NumericFieldIndices() const;

 private:
  std::vector<Field> fields_;
};

/// A data tuple flowing through the system.
struct Tuple {
  /// The originating stream (kept through operators for provenance).
  common::StreamId stream = common::kInvalidStream;
  /// Source emission time (simulated seconds); basis for latency and for
  /// time-based windows.
  double timestamp = 0.0;
  /// Telemetry trace this tuple belongs to; 0 = untraced (the default —
  /// tracing is sampled at the source). Purely observational: carries no
  /// wire size and never influences processing.
  int64_t trace_id = 0;
  std::vector<Value> values;

  /// Approximate wire size in bytes (drives bandwidth costs).
  int64_t SizeBytes() const;
};

/// Copies the numeric fields of `tuple` (per `numeric_indices`, as returned
/// by Schema::NumericFieldIndices) into `out`, resizing it. Used to match
/// tuples against interest boxes.
void ExtractNumeric(const Tuple& tuple, const std::vector<int>& numeric_indices,
                    std::vector<double>* out);

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_TUPLE_H_
