#include "engine/fragment.h"

#include <deque>
#include <set>

#include "common/check.h"

namespace dsps::engine {

FragmentInstance::FragmentInstance(common::QueryId query, common::FragmentId id)
    : query_(query), id_(id) {}

common::Result<std::unique_ptr<FragmentInstance>> FragmentInstance::Create(
    const QueryPlan& plan, common::QueryId query, common::FragmentId id,
    const std::vector<common::OperatorId>& ops) {
  if (ops.empty()) {
    return common::Status::InvalidArgument("fragment needs >= 1 operator");
  }
  std::set<common::OperatorId> op_set(ops.begin(), ops.end());
  for (common::OperatorId op : op_set) {
    if (op < 0 || op >= plan.num_operators()) {
      return common::Status::InvalidArgument("fragment operator out of range");
    }
  }
  std::unique_ptr<FragmentInstance> frag(new FragmentInstance(query, id));
  for (common::OperatorId op : op_set) {
    frag->ops_[op] = plan.op(op).Clone();
    frag->is_sink_[op] = plan.OutEdges(op).empty();
  }
  for (const PlanEdge& e : plan.edges()) {
    if (op_set.count(e.from) == 0) continue;
    if (op_set.count(e.to) > 0) {
      frag->internal_edges_[e.from].push_back(e);
    } else {
      frag->remote_edges_[e.from].push_back(e);
    }
  }
  return frag;
}

std::vector<common::OperatorId> FragmentInstance::op_ids() const {
  std::vector<common::OperatorId> out;
  out.reserve(ops_.size());
  for (const auto& [id, op] : ops_) out.push_back(id);
  return out;
}

const std::vector<PlanEdge>& FragmentInstance::RemoteEdges(
    common::OperatorId from_op) const {
  auto it = remote_edges_.find(from_op);
  if (it == remote_edges_.end()) return empty_edges_;
  return it->second;
}

common::Status FragmentInstance::Inject(common::OperatorId op, int port,
                                        const Tuple& tuple,
                                        std::vector<Output>* out) {
  auto start = ops_.find(op);
  if (start == ops_.end()) {
    return common::Status::NotFound("operator not in fragment");
  }
  struct Work {
    common::OperatorId op;
    int port;
    Tuple tuple;
  };
  std::deque<Work> queue;
  queue.push_back(Work{op, port, tuple});
  std::vector<Tuple> produced;
  while (!queue.empty()) {
    Work w = std::move(queue.front());
    queue.pop_front();
    auto it = ops_.find(w.op);
    DSPS_CHECK(it != ops_.end());
    Operator* oper = it->second.get();
    produced.clear();
    oper->Process(w.port, w.tuple, &produced);
    pending_cpu_cost_ += oper->cost_per_tuple();
    const bool sink = is_sink_.at(w.op);
    auto internal_it = internal_edges_.find(w.op);
    auto remote_it = remote_edges_.find(w.op);
    const bool has_remote = remote_it != remote_edges_.end();
    for (Tuple& t : produced) {
      if (internal_it != internal_edges_.end()) {
        for (const PlanEdge& e : internal_it->second) {
          queue.push_back(Work{e.to, e.to_port, t});
        }
      }
      if (sink || has_remote) {
        out->push_back(Output{w.op, sink, std::move(t)});
      }
    }
  }
  return common::Status::OK();
}

double FragmentInstance::DrainCpuCost() {
  double c = pending_cpu_cost_;
  pending_cpu_cost_ = 0.0;
  return c;
}

int64_t FragmentInstance::StateBytes() const {
  int64_t total = 0;
  for (const auto& [id, op] : ops_) total += op->StateBytes();
  return total;
}

const Operator& FragmentInstance::op(common::OperatorId id) const {
  auto it = ops_.find(id);
  DSPS_CHECK(it != ops_.end());
  return *it->second;
}

Operator* FragmentInstance::mutable_op(common::OperatorId id) {
  auto it = ops_.find(id);
  DSPS_CHECK(it != ops_.end());
  return it->second.get();
}

double FragmentInstance::StaticCostPerTuple() const {
  double c = 0.0;
  for (const auto& [id, op] : ops_) c += op->cost_per_tuple();
  return c;
}

}  // namespace dsps::engine
