#include "engine/operators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dsps::engine {

void Operator::Process(int port, const Tuple& tuple, std::vector<Tuple>* out) {
  DSPS_DCHECK(port >= 0 && port < num_inputs());
  size_t before = out->size();
  DoProcess(port, tuple, out);
  in_count_ += 1;
  out_count_ += static_cast<int64_t>(out->size() - before);
}

double Operator::observed_selectivity() const {
  if (in_count_ == 0) return estimated_selectivity_;
  return static_cast<double>(out_count_) / static_cast<double>(in_count_);
}

void Operator::ResetObservedStats() {
  in_count_ = 0;
  out_count_ = 0;
}

// ---------------------------------------------------------------- FilterOp

FilterOp::FilterOp(std::vector<int> numeric_indices, interest::Box box)
    : numeric_indices_(std::move(numeric_indices)), box_(std::move(box)) {
  DSPS_CHECK(numeric_indices_.size() == box_.size());
  set_cost_per_tuple(1e-6);
}

void FilterOp::DoProcess(int /*port*/, const Tuple& tuple,
                         std::vector<Tuple>* out) {
  ExtractNumeric(tuple, numeric_indices_, &scratch_);
  if (interest::BoxContains(box_, scratch_.data())) out->push_back(tuple);
}

std::unique_ptr<Operator> FilterOp::Clone() const {
  auto copy = std::make_unique<FilterOp>(numeric_indices_, box_);
  CopyModelTo(copy.get());
  return copy;
}

// ------------------------------------------------------------------- MapOp

MapOp::MapOp(std::vector<int> keep_indices, double scale)
    : keep_indices_(std::move(keep_indices)), scale_(scale) {
  set_cost_per_tuple(5e-7);
}

void MapOp::DoProcess(int /*port*/, const Tuple& tuple,
                      std::vector<Tuple>* out) {
  Tuple result;
  result.stream = tuple.stream;
  result.timestamp = tuple.timestamp;
  result.values.reserve(keep_indices_.size());
  for (int idx : keep_indices_) {
    if (idx < 0 || static_cast<size_t>(idx) >= tuple.values.size()) {
      result.values.emplace_back(int64_t{0});
      continue;
    }
    Value v = tuple.values[idx];
    if (scale_ != 1.0) {
      if (auto* d = std::get_if<double>(&v)) {
        *d *= scale_;
      } else if (auto* i = std::get_if<int64_t>(&v)) {
        *i = static_cast<int64_t>(static_cast<double>(*i) * scale_);
      }
    }
    result.values.push_back(std::move(v));
  }
  out->push_back(std::move(result));
}

std::unique_ptr<Operator> MapOp::Clone() const {
  auto copy = std::make_unique<MapOp>(keep_indices_, scale_);
  CopyModelTo(copy.get());
  return copy;
}

// ------------------------------------------------------------ WindowJoinOp

WindowJoinOp::WindowJoinOp(double window_s, int left_key, int right_key)
    : window_s_(window_s) {
  DSPS_CHECK(window_s > 0);
  key_[0] = left_key;
  key_[1] = right_key;
  set_cost_per_tuple(5e-6);
}

void WindowJoinOp::Evict(Side* side, double watermark) {
  while (!side->arrival_order.empty() &&
         side->arrival_order.front().first < watermark) {
    auto [ts, key] = side->arrival_order.front();
    side->arrival_order.pop_front();
    auto it = side->by_key.find(key);
    if (it != side->by_key.end() && !it->second.empty()) {
      side->state_bytes -= it->second.front().SizeBytes();
      it->second.pop_front();
      if (it->second.empty()) side->by_key.erase(it);
    }
  }
}

void WindowJoinOp::DoProcess(int port, const Tuple& tuple,
                             std::vector<Tuple>* out) {
  DSPS_DCHECK(port == 0 || port == 1);
  int other = 1 - port;
  double watermark = tuple.timestamp - window_s_;
  Evict(&sides_[other], watermark);
  Evict(&sides_[port], watermark);

  int key_field = key_[port];
  int64_t key = key_field >= 0 &&
                        static_cast<size_t>(key_field) < tuple.values.size()
                    ? AsInt64(tuple.values[key_field])
                    : 0;
  auto it = sides_[other].by_key.find(key);
  if (it != sides_[other].by_key.end()) {
    for (const Tuple& match : it->second) {
      Tuple joined;
      // Keep the left input's stream id for provenance; timestamp is the
      // later of the two so downstream windows see monotone-ish time.
      joined.stream = port == 0 ? tuple.stream : match.stream;
      joined.timestamp = std::max(tuple.timestamp, match.timestamp);
      const Tuple& left = port == 0 ? tuple : match;
      const Tuple& right = port == 0 ? match : tuple;
      joined.values.reserve(left.values.size() + right.values.size());
      joined.values.insert(joined.values.end(), left.values.begin(),
                           left.values.end());
      joined.values.insert(joined.values.end(), right.values.begin(),
                           right.values.end());
      out->push_back(std::move(joined));
    }
  }
  sides_[port].by_key[key].push_back(tuple);
  sides_[port].arrival_order.emplace_back(tuple.timestamp, key);
  sides_[port].state_bytes += tuple.SizeBytes();
}

int64_t WindowJoinOp::StateBytes() const {
  return sides_[0].state_bytes + sides_[1].state_bytes;
}

std::unique_ptr<Operator> WindowJoinOp::Clone() const {
  auto copy = std::make_unique<WindowJoinOp>(window_s_, key_[0], key_[1]);
  CopyModelTo(copy.get());
  return copy;
}

// ------------------------------------------------------- WindowAggregateOp

WindowAggregateOp::WindowAggregateOp(double window_s, Func func, int key_field,
                                     int value_field)
    : window_s_(window_s),
      func_(func),
      key_field_(key_field),
      value_field_(value_field) {
  DSPS_CHECK(window_s > 0);
  set_cost_per_tuple(2e-6);
  set_estimated_selectivity(0.1);
}

void WindowAggregateOp::EmitWindow(double window_start,
                                   std::vector<Tuple>* out) {
  for (const auto& [key, g] : groups_) {
    double agg = 0.0;
    switch (func_) {
      case Func::kCount:
        agg = static_cast<double>(g.count);
        break;
      case Func::kSum:
        agg = g.sum;
        break;
      case Func::kAvg:
        agg = g.count > 0 ? g.sum / static_cast<double>(g.count) : 0.0;
        break;
      case Func::kMin:
        agg = g.min;
        break;
      case Func::kMax:
        agg = g.max;
        break;
    }
    Tuple t;
    t.stream = last_stream_;
    t.timestamp = window_start + window_s_;
    t.values = {Value{key}, Value{agg}, Value{window_start + window_s_}};
    out->push_back(std::move(t));
  }
  groups_.clear();
}

void WindowAggregateOp::DoProcess(int /*port*/, const Tuple& tuple,
                                  std::vector<Tuple>* out) {
  double window_start =
      std::floor(tuple.timestamp / window_s_) * window_s_;
  if (current_window_start_ < 0) {
    current_window_start_ = window_start;
  } else if (window_start > current_window_start_) {
    EmitWindow(current_window_start_, out);
    current_window_start_ = window_start;
  }
  last_stream_ = tuple.stream;
  int64_t key =
      key_field_ >= 0 && static_cast<size_t>(key_field_) < tuple.values.size()
          ? AsInt64(tuple.values[key_field_])
          : 0;
  double v = value_field_ >= 0 &&
                     static_cast<size_t>(value_field_) < tuple.values.size()
                 ? AsDouble(tuple.values[value_field_])
                 : 0.0;
  auto [it, inserted] = groups_.try_emplace(key);
  Group& g = it->second;
  if (inserted) {
    g.min = v;
    g.max = v;
  } else {
    g.min = std::min(g.min, v);
    g.max = std::max(g.max, v);
  }
  g.count += 1;
  g.sum += v;
}

int64_t WindowAggregateOp::StateBytes() const {
  return static_cast<int64_t>(groups_.size()) * 40;
}

std::unique_ptr<Operator> WindowAggregateOp::Clone() const {
  auto copy = std::make_unique<WindowAggregateOp>(window_s_, func_, key_field_,
                                                  value_field_);
  CopyModelTo(copy.get());
  return copy;
}

// ------------------------------------------------- SlidingWindowAggregateOp

SlidingWindowAggregateOp::SlidingWindowAggregateOp(double window_s,
                                                   double slide_s, Func func,
                                                   int key_field,
                                                   int value_field)
    : window_s_(window_s),
      slide_s_(slide_s),
      func_(func),
      key_field_(key_field),
      value_field_(value_field) {
  DSPS_CHECK(window_s > 0);
  DSPS_CHECK(slide_s > 0);
  set_cost_per_tuple(3e-6);
  set_estimated_selectivity(0.2);
}

void SlidingWindowAggregateOp::EmitAt(double emit_time,
                                      std::vector<Tuple>* out) {
  // Evict entries older than the window ending at emit_time.
  while (!buffer_.empty() && buffer_.front().ts < emit_time - window_s_) {
    buffer_.pop_front();
  }
  std::map<int64_t, std::pair<int64_t, double>> count_sum;
  std::map<int64_t, std::pair<double, double>> min_max;
  for (const Entry& e : buffer_) {
    if (e.ts >= emit_time) continue;  // not yet part of this window
    auto [it, inserted] = count_sum.try_emplace(e.key, 0, 0.0);
    it->second.first += 1;
    it->second.second += e.value;
    auto [mit, minserted] = min_max.try_emplace(e.key, e.value, e.value);
    if (!minserted) {
      mit->second.first = std::min(mit->second.first, e.value);
      mit->second.second = std::max(mit->second.second, e.value);
    }
  }
  for (const auto& [key, cs] : count_sum) {
    double agg = 0.0;
    switch (func_) {
      case Func::kCount:
        agg = static_cast<double>(cs.first);
        break;
      case Func::kSum:
        agg = cs.second;
        break;
      case Func::kAvg:
        agg = cs.first > 0 ? cs.second / static_cast<double>(cs.first) : 0.0;
        break;
      case Func::kMin:
        agg = min_max.at(key).first;
        break;
      case Func::kMax:
        agg = min_max.at(key).second;
        break;
    }
    Tuple t;
    t.stream = last_stream_;
    t.timestamp = emit_time;
    t.values = {Value{key}, Value{agg}, Value{emit_time}};
    out->push_back(std::move(t));
  }
}

void SlidingWindowAggregateOp::DoProcess(int /*port*/, const Tuple& tuple,
                                         std::vector<Tuple>* out) {
  last_stream_ = tuple.stream;
  if (next_emit_ < 0) {
    next_emit_ =
        (std::floor(tuple.timestamp / slide_s_) + 1.0) * slide_s_;
  }
  while (tuple.timestamp >= next_emit_) {
    EmitAt(next_emit_, out);
    next_emit_ += slide_s_;
  }
  int64_t key =
      key_field_ >= 0 && static_cast<size_t>(key_field_) < tuple.values.size()
          ? AsInt64(tuple.values[key_field_])
          : 0;
  double v = value_field_ >= 0 &&
                     static_cast<size_t>(value_field_) < tuple.values.size()
                 ? AsDouble(tuple.values[value_field_])
                 : 0.0;
  buffer_.push_back(Entry{tuple.timestamp, key, v});
}

int64_t SlidingWindowAggregateOp::StateBytes() const {
  return static_cast<int64_t>(buffer_.size()) * 24;
}

std::unique_ptr<Operator> SlidingWindowAggregateOp::Clone() const {
  auto copy = std::make_unique<SlidingWindowAggregateOp>(
      window_s_, slide_s_, func_, key_field_, value_field_);
  CopyModelTo(copy.get());
  return copy;
}

// ---------------------------------------------------------------- DistinctOp

DistinctOp::DistinctOp(double window_s, int key_field)
    : window_s_(window_s), key_field_(key_field) {
  DSPS_CHECK(window_s > 0);
  set_cost_per_tuple(1e-6);
  set_estimated_selectivity(0.3);
}

void DistinctOp::DoProcess(int /*port*/, const Tuple& tuple,
                           std::vector<Tuple>* out) {
  int64_t key =
      key_field_ >= 0 && static_cast<size_t>(key_field_) < tuple.values.size()
          ? AsInt64(tuple.values[key_field_])
          : 0;
  auto it = last_seen_.find(key);
  bool fresh =
      it == last_seen_.end() || tuple.timestamp - it->second > window_s_;
  last_seen_[key] = tuple.timestamp;
  if (fresh) out->push_back(tuple);
  // Opportunistic eviction keeps the map bounded by live keys.
  if (last_seen_.size() > 4096) {
    for (auto e = last_seen_.begin(); e != last_seen_.end();) {
      if (tuple.timestamp - e->second > window_s_) {
        e = last_seen_.erase(e);
      } else {
        ++e;
      }
    }
  }
}

int64_t DistinctOp::StateBytes() const {
  return static_cast<int64_t>(last_seen_.size()) * 16;
}

std::unique_ptr<Operator> DistinctOp::Clone() const {
  auto copy = std::make_unique<DistinctOp>(window_s_, key_field_);
  CopyModelTo(copy.get());
  return copy;
}

// -------------------------------------------------------------------- TopKOp

TopKOp::TopKOp(double window_s, int k, int key_field, int value_field)
    : window_s_(window_s),
      k_(k),
      key_field_(key_field),
      value_field_(value_field) {
  DSPS_CHECK(window_s > 0);
  DSPS_CHECK(k >= 1);
  set_cost_per_tuple(2e-6);
  set_estimated_selectivity(0.05);
}

void TopKOp::EmitWindow(double window_start, std::vector<Tuple>* out) {
  std::vector<std::pair<double, int64_t>> ranked;
  ranked.reserve(sums_.size());
  for (const auto& [key, sum] : sums_) ranked.emplace_back(sum, key);
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < ranked.size() && i < static_cast<size_t>(k_); ++i) {
    Tuple t;
    t.stream = last_stream_;
    t.timestamp = window_start + window_s_;
    t.values = {Value{ranked[i].second}, Value{ranked[i].first},
                Value{window_start + window_s_}};
    out->push_back(std::move(t));
  }
  sums_.clear();
}

void TopKOp::DoProcess(int /*port*/, const Tuple& tuple,
                       std::vector<Tuple>* out) {
  double window_start = std::floor(tuple.timestamp / window_s_) * window_s_;
  if (current_window_start_ < 0) {
    current_window_start_ = window_start;
  } else if (window_start > current_window_start_) {
    EmitWindow(current_window_start_, out);
    current_window_start_ = window_start;
  }
  last_stream_ = tuple.stream;
  int64_t key =
      key_field_ >= 0 && static_cast<size_t>(key_field_) < tuple.values.size()
          ? AsInt64(tuple.values[key_field_])
          : 0;
  double v = value_field_ >= 0 &&
                     static_cast<size_t>(value_field_) < tuple.values.size()
                 ? AsDouble(tuple.values[value_field_])
                 : 0.0;
  sums_[key] += v;
}

int64_t TopKOp::StateBytes() const {
  return static_cast<int64_t>(sums_.size()) * 16;
}

std::unique_ptr<Operator> TopKOp::Clone() const {
  auto copy = std::make_unique<TopKOp>(window_s_, k_, key_field_, value_field_);
  CopyModelTo(copy.get());
  return copy;
}

// ----------------------------------------------------------------- UnionOp

UnionOp::UnionOp(int num_inputs) : num_inputs_(num_inputs) {
  DSPS_CHECK(num_inputs >= 1);
  set_cost_per_tuple(2e-7);
}

void UnionOp::DoProcess(int /*port*/, const Tuple& tuple,
                        std::vector<Tuple>* out) {
  out->push_back(tuple);
}

std::unique_ptr<Operator> UnionOp::Clone() const {
  auto copy = std::make_unique<UnionOp>(num_inputs_);
  CopyModelTo(copy.get());
  return copy;
}

// ------------------------------------------------------- PredicateFilterOp

PredicateFilterOp::PredicateFilterOp(Predicate pred, std::string label)
    : pred_(std::move(pred)), label_(std::move(label)) {
  DSPS_CHECK(pred_ != nullptr);
  set_cost_per_tuple(1e-6);
}

void PredicateFilterOp::DoProcess(int /*port*/, const Tuple& tuple,
                                  std::vector<Tuple>* out) {
  if (pred_(tuple)) out->push_back(tuple);
}

std::unique_ptr<Operator> PredicateFilterOp::Clone() const {
  auto copy = std::make_unique<PredicateFilterOp>(pred_, label_);
  CopyModelTo(copy.get());
  return copy;
}

}  // namespace dsps::engine
