#ifndef DSPS_ENGINE_OPERATORS_H_
#define DSPS_ENGINE_OPERATORS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/tuple.h"
#include "interest/interval.h"

namespace dsps::engine {

/// Base class for continuous-query operators.
///
/// Operators are push-based: Process() consumes one input tuple on a given
/// input port and appends any output tuples to `out`. Each operator carries
/// a cost model (CPU seconds per input tuple, expected selectivity) used by
/// the placement and ordering optimizers, and tracks observed input/output
/// counts so adaptive components can refresh their estimates.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Number of input ports (1 for unary operators, 2 for joins, ...).
  virtual int num_inputs() const { return 1; }

  /// Consumes `tuple` arriving on `port` and appends outputs to `out`.
  /// Updates observed statistics.
  void Process(int port, const Tuple& tuple, std::vector<Tuple>* out);

  /// Estimated CPU seconds to process one input tuple.
  double cost_per_tuple() const { return cost_per_tuple_; }
  void set_cost_per_tuple(double c) { cost_per_tuple_ = c; }

  /// Estimated output/input tuple ratio (the optimizer's prior).
  double estimated_selectivity() const { return estimated_selectivity_; }
  void set_estimated_selectivity(double s) { estimated_selectivity_ = s; }

  /// Observed output/input ratio; falls back to the estimate before any
  /// input has been seen.
  double observed_selectivity() const;

  int64_t in_count() const { return in_count_; }
  int64_t out_count() const { return out_count_; }
  void ResetObservedStats();

  /// Bytes of operator state (window contents); migration cost proxy.
  virtual int64_t StateBytes() const { return 0; }

  /// Operator kind, for logs and plan dumps ("Filter", "WindowJoin", ...).
  virtual const char* name() const = 0;

  /// Deep copy with *empty* runtime state (fresh windows), preserving the
  /// cost model. Used to instantiate plans into fragments.
  virtual std::unique_ptr<Operator> Clone() const = 0;

 protected:
  virtual void DoProcess(int port, const Tuple& tuple,
                         std::vector<Tuple>* out) = 0;

  void CopyModelTo(Operator* dst) const {
    dst->cost_per_tuple_ = cost_per_tuple_;
    dst->estimated_selectivity_ = estimated_selectivity_;
  }

 private:
  double cost_per_tuple_ = 1e-6;
  double estimated_selectivity_ = 1.0;
  int64_t in_count_ = 0;
  int64_t out_count_ = 0;
};

/// Selection by an axis-aligned box over the tuple's numeric fields —
/// declarative so it can be shipped between engines and folded into
/// dissemination-tree early filters.
class FilterOp : public Operator {
 public:
  /// `box` has one interval per entry of `numeric_indices`; a tuple passes
  /// if every selected numeric field falls inside its interval.
  FilterOp(std::vector<int> numeric_indices, interest::Box box);

  const interest::Box& box() const { return box_; }
  const std::vector<int>& numeric_indices() const { return numeric_indices_; }

  const char* name() const override { return "Filter"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  std::vector<int> numeric_indices_;
  interest::Box box_;
  std::vector<double> scratch_;
};

/// Projection to a subset of fields (by index), optionally scaling numeric
/// fields by a constant (a stand-in for cheap per-tuple transforms).
class MapOp : public Operator {
 public:
  explicit MapOp(std::vector<int> keep_indices, double scale = 1.0);

  const std::vector<int>& keep_indices() const { return keep_indices_; }
  double scale() const { return scale_; }

  const char* name() const override { return "Map"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  std::vector<int> keep_indices_;
  double scale_;
};

/// Sliding-window symmetric hash equi-join on an int64 key field. Output
/// tuples concatenate the left and right tuples' values; the output
/// timestamp is the newer input's.
class WindowJoinOp : public Operator {
 public:
  /// Joins input 0 (key at `left_key`) with input 1 (key at `right_key`),
  /// matching tuples whose timestamps differ by at most `window_s`.
  WindowJoinOp(double window_s, int left_key, int right_key);

  double window_s() const { return window_s_; }
  int left_key() const { return key_[0]; }
  int right_key() const { return key_[1]; }

  int num_inputs() const override { return 2; }
  int64_t StateBytes() const override;

  const char* name() const override { return "WindowJoin"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  struct Side {
    std::map<int64_t, std::deque<Tuple>> by_key;
    std::deque<std::pair<double, int64_t>> arrival_order;  // (ts, key)
    int64_t state_bytes = 0;
  };
  void Evict(Side* side, double watermark);

  double window_s_;
  int key_[2];
  Side sides_[2];
};

/// Aggregation over tumbling windows, grouped by an int64 key field.
/// Emits one tuple (key, aggregate, window_end) per group when a window
/// closes (i.e., when a tuple at or past the window boundary arrives).
class WindowAggregateOp : public Operator {
 public:
  enum class Func { kCount, kSum, kAvg, kMin, kMax };

  /// Aggregates `value_field` with `func` over windows of `window_s`
  /// seconds, grouped by `key_field` (-1 for a single global group).
  WindowAggregateOp(double window_s, Func func, int key_field, int value_field);

  double window_s() const { return window_s_; }
  Func func() const { return func_; }
  int key_field() const { return key_field_; }
  int value_field() const { return value_field_; }

  int64_t StateBytes() const override;

  const char* name() const override { return "WindowAggregate"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  struct Group {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  void EmitWindow(double window_start, std::vector<Tuple>* out);

  double window_s_;
  Func func_;
  int key_field_;
  int value_field_;
  double current_window_start_ = -1.0;
  common::StreamId last_stream_ = common::kInvalidStream;
  std::map<int64_t, Group> groups_;
};

/// Aggregation over *sliding* windows: every `slide_s` seconds, emits one
/// (key, aggregate, window_end) tuple per group over the last `window_s`
/// seconds. window_s must be a positive multiple of slide_s for the
/// classic overlapping-window semantics (not enforced; any positive pair
/// works).
class SlidingWindowAggregateOp : public Operator {
 public:
  using Func = WindowAggregateOp::Func;

  SlidingWindowAggregateOp(double window_s, double slide_s, Func func,
                           int key_field, int value_field);

  double window_s() const { return window_s_; }
  double slide_s() const { return slide_s_; }
  Func func() const { return func_; }
  int key_field() const { return key_field_; }
  int value_field() const { return value_field_; }

  int64_t StateBytes() const override;

  const char* name() const override { return "SlidingWindowAggregate"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  struct Entry {
    double ts;
    int64_t key;
    double value;
  };
  void EmitAt(double emit_time, std::vector<Tuple>* out);

  double window_s_;
  double slide_s_;
  Func func_;
  int key_field_;
  int value_field_;
  double next_emit_ = -1.0;
  common::StreamId last_stream_ = common::kInvalidStream;
  std::deque<Entry> buffer_;
};

/// Time-windowed duplicate elimination: a tuple passes iff its key was not
/// seen within the last `window_s` seconds.
class DistinctOp : public Operator {
 public:
  DistinctOp(double window_s, int key_field);

  double window_s() const { return window_s_; }
  int key_field() const { return key_field_; }

  int64_t StateBytes() const override;

  const char* name() const override { return "Distinct"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  double window_s_;
  int key_field_;
  std::map<int64_t, double> last_seen_;
};

/// Per-tumbling-window top-k: when a window closes, emits the k keys with
/// the largest summed value, as (key, sum, window_end) tuples in
/// descending order.
class TopKOp : public Operator {
 public:
  TopKOp(double window_s, int k, int key_field, int value_field);

  double window_s() const { return window_s_; }
  int k() const { return k_; }
  int key_field() const { return key_field_; }
  int value_field() const { return value_field_; }

  int64_t StateBytes() const override;

  const char* name() const override { return "TopK"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  void EmitWindow(double window_start, std::vector<Tuple>* out);

  double window_s_;
  int k_;
  int key_field_;
  int value_field_;
  double current_window_start_ = -1.0;
  common::StreamId last_stream_ = common::kInvalidStream;
  std::map<int64_t, double> sums_;
};

/// Merges any number of inputs into one output stream (pass-through).
class UnionOp : public Operator {
 public:
  explicit UnionOp(int num_inputs);

  int num_inputs() const override { return num_inputs_; }

  const char* name() const override { return "Union"; }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  int num_inputs_;
};

/// Wraps an arbitrary predicate; for examples/tests that need selections
/// not expressible as boxes. Not shippable into early filters.
class PredicateFilterOp : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  explicit PredicateFilterOp(Predicate pred, std::string label = "Predicate");

  const char* name() const override { return label_.c_str(); }
  std::unique_ptr<Operator> Clone() const override;

 protected:
  void DoProcess(int port, const Tuple& tuple,
                 std::vector<Tuple>* out) override;

 private:
  Predicate pred_;
  std::string label_;
};

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_OPERATORS_H_
