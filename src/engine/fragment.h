#ifndef DSPS_ENGINE_FRAGMENT_H_
#define DSPS_ENGINE_FRAGMENT_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/plan.h"

namespace dsps::engine {

/// A runnable instance of one query fragment: a connected subset of a
/// plan's operators, cloned with fresh state, plus the routing metadata
/// needed at the fragment boundary (which of an exit operator's edges stay
/// internal, which leave the fragment, and which produce query results).
///
/// Fragments are the unit of intra-entity operator placement (Section 4.1):
/// the placement policy decides which processor hosts each fragment, and
/// the entity runtime moves tuples across fragment boundaries.
class FragmentInstance {
 public:
  /// One tuple leaving the fragment.
  struct Output {
    /// The operator that produced the tuple.
    common::OperatorId from_op = -1;
    /// True if from_op is a plan sink (the tuple is a query result);
    /// otherwise the tuple must be routed along the plan's remote edges
    /// from from_op.
    bool is_result = false;
    Tuple tuple;
  };

  /// Builds a fragment executing `ops` of `plan`. Fails if `ops` is empty
  /// or contains an id out of range. Operators are cloned (fresh state);
  /// plan edges with both endpoints in `ops` become internal.
  static common::Result<std::unique_ptr<FragmentInstance>> Create(
      const QueryPlan& plan, common::QueryId query, common::FragmentId id,
      const std::vector<common::OperatorId>& ops);

  common::FragmentId id() const { return id_; }
  common::QueryId query() const { return query_; }

  /// Operator ids (plan-scoped) hosted by this fragment.
  std::vector<common::OperatorId> op_ids() const;

  bool Contains(common::OperatorId op) const { return ops_.count(op) > 0; }

  /// The plan edges leaving `from_op` whose target operator is NOT in this
  /// fragment; the entity runtime ships non-result outputs along these.
  const std::vector<PlanEdge>& RemoteEdges(common::OperatorId from_op) const;

  /// Feeds one tuple to (op, port). Runs the operator cascade through all
  /// internal edges; appends boundary outputs to `out`. Accumulates CPU
  /// cost (see DrainCpuCost).
  common::Status Inject(common::OperatorId op, int port, const Tuple& tuple,
                        std::vector<Output>* out);

  /// CPU-seconds consumed by Process calls since the last drain, per the
  /// operators' cost models. The simulated processor charges this time.
  double DrainCpuCost();

  /// Total operator state (window contents) — migration cost proxy.
  int64_t StateBytes() const;

  /// Access to a hosted operator (for statistics inspection).
  const Operator& op(common::OperatorId id) const;
  Operator* mutable_op(common::OperatorId id);

  /// Sum of hosted operators' cost_per_tuple weighted by nothing — a cheap
  /// static proxy of the fragment's per-tuple CPU demand.
  double StaticCostPerTuple() const;

 private:
  FragmentInstance(common::QueryId query, common::FragmentId id);

  common::QueryId query_;
  common::FragmentId id_;
  std::map<common::OperatorId, std::unique_ptr<Operator>> ops_;
  /// Internal edges: from op -> list of (to op, port) inside the fragment.
  std::map<common::OperatorId, std::vector<PlanEdge>> internal_edges_;
  /// Remote edges: from op -> list of plan edges leaving the fragment.
  std::map<common::OperatorId, std::vector<PlanEdge>> remote_edges_;
  /// Plan sinks hosted here (their outputs are query results).
  std::map<common::OperatorId, bool> is_sink_;
  double pending_cpu_cost_ = 0.0;
  std::vector<PlanEdge> empty_edges_;
};

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_FRAGMENT_H_
