#ifndef DSPS_ENGINE_PLAN_IO_H_
#define DSPS_ENGINE_PLAN_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/plan.h"

namespace dsps::engine {

/// Declarative plan wire format.
///
/// The paper's inter-entity layer ships queries — not operator objects —
/// between entities that may run entirely different engines. That only
/// works if a plan has a platform-independent description every engine can
/// instantiate. This is that description: a line-oriented text form
/// listing operators (by kind and parameters), dataflow edges, and stream
/// bindings. All declarative operators round-trip; PredicateFilterOp
/// (arbitrary native code) deliberately does not — exactly the kind of
/// engine-private construct the paper says cannot cross entity boundaries.
///
/// Example:
///   PLAN v1
///   OP 0 Filter dims=0,1 box=0:10,20:30 cost=1e-06 sel=0.05
///   OP 1 WindowAggregate window=10 func=avg key=0 value=1
///   EDGE 0 1 0
///   BIND 3 0 0
///
/// Grammar (one record per line, '#' starts a comment):
///   PLAN v1
///   OP <id> <Kind> <key>=<value>...
///   EDGE <from> <to> <to_port>
///   BIND <stream> <to> <to_port>

/// Serializes `plan`. Fails with InvalidArgument if the plan contains an
/// operator without a declarative form.
common::Result<std::string> SerializePlan(const QueryPlan& plan);

/// Parses the wire format back into an executable plan. The result is
/// validated before being returned.
common::Result<std::unique_ptr<QueryPlan>> ParsePlan(const std::string& text);

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_PLAN_IO_H_
