#ifndef DSPS_ENGINE_PLAN_H_
#define DSPS_ENGINE_PLAN_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/operators.h"
#include "interest/interest.h"

namespace dsps::engine {

/// A dataflow edge: every output tuple of `from` is delivered to input
/// `to_port` of `to`.
struct PlanEdge {
  common::OperatorId from = -1;
  common::OperatorId to = -1;
  int to_port = 0;
};

/// Binds a raw stream to an operator input port.
struct StreamBinding {
  common::StreamId stream = common::kInvalidStream;
  common::OperatorId to = -1;
  int to_port = 0;
};

/// A continuous query plan: a DAG of operators fed by bound streams.
/// Operators without outgoing edges are sinks; their outputs are the query
/// results delivered to the client.
class QueryPlan {
 public:
  QueryPlan() = default;
  QueryPlan(const QueryPlan&) = delete;
  QueryPlan& operator=(const QueryPlan&) = delete;

  /// Adds an operator; returns its id within this plan.
  common::OperatorId AddOperator(std::unique_ptr<Operator> op);

  /// Adds the dataflow edge from -> (to, to_port).
  common::Status Connect(common::OperatorId from, common::OperatorId to,
                         int to_port);

  /// Feeds `stream` into (to, to_port).
  common::Status BindStream(common::StreamId stream, common::OperatorId to,
                            int to_port);

  int num_operators() const { return static_cast<int>(ops_.size()); }
  const Operator& op(common::OperatorId id) const;
  Operator* mutable_op(common::OperatorId id);

  const std::vector<PlanEdge>& edges() const { return edges_; }
  const std::vector<StreamBinding>& bindings() const { return bindings_; }

  /// Out-edges of `id`.
  std::vector<PlanEdge> OutEdges(common::OperatorId id) const;

  /// Operators with no outgoing edges (result producers).
  std::vector<common::OperatorId> SinkOps() const;

  /// Checks that ids/ports are in range, every input port is fed exactly
  /// once (by a stream or an edge), and the graph is acyclic.
  common::Status Validate() const;

  /// Operator ids in topological order; error if cyclic.
  common::Result<std::vector<common::OperatorId>> TopologicalOrder() const;

  /// Deep copy (operators cloned with fresh state).
  std::unique_ptr<QueryPlan> Clone() const;

  /// Estimated CPU seconds spent evaluating the plan per source tuple,
  /// propagating operator selectivities from the stream bindings down the
  /// DAG. This is the "inherent complexity" p_k of Section 4.1 (up to the
  /// arrival-rate scale factor, which cancels in the Performance Ratio).
  double EstimateInherentCostPerTuple() const;

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<PlanEdge> edges_;
  std::vector<StreamBinding> bindings_;
};

/// A registered continuous query.
struct Query {
  common::QueryId id = common::kInvalidQuery;
  std::shared_ptr<const QueryPlan> plan;
  /// The streams+value-ranges this query needs (drives dissemination and
  /// the query-graph edge weights).
  interest::InterestSet interest;
  /// Processing load this query imposes (query-graph vertex weight).
  double load = 1.0;
  /// Owning tenant (multi-tenant admission control). 0 is the implicit
  /// tenant every untagged query belongs to, so single-tenant workloads
  /// need no configuration.
  int32_t tenant = 0;
};

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_PLAN_H_
