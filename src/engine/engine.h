#ifndef DSPS_ENGINE_ENGINE_H_
#define DSPS_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/fragment.h"

namespace dsps::engine {

/// A fragment output tagged with the fragment that produced it (needed by
/// engines that buffer work across fragments).
struct TaggedOutput {
  common::FragmentId fragment = -1;
  FragmentInstance::Output output;
};

/// Abstract single-site stream processing engine.
///
/// The paper assumes each entity may run a different engine (STREAM,
/// TelegraphCQ, ...) and that all intra-entity techniques stay platform
/// independent. This interface is that boundary: the entity runtime and the
/// Adaptation Module only talk to engines through it. Two implementations
/// with genuinely different processing models are provided (BasicEngine,
/// BatchEngine); both must produce the same logical outputs.
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  /// Engine family name ("basic", "batch").
  virtual const char* name() const = 0;

  /// Deploys a fragment. Fails on duplicate fragment id.
  virtual common::Status Install(std::unique_ptr<FragmentInstance> fragment);

  /// Undeploys a fragment and returns it (with its state) for migration;
  /// buffered work for it is flushed into `out` first.
  virtual common::Result<std::unique_ptr<FragmentInstance>> Remove(
      common::FragmentId id, std::vector<TaggedOutput>* out);

  /// The deployed fragment, or nullptr.
  FragmentInstance* Find(common::FragmentId id);

  /// Ids of all deployed fragments.
  std::vector<common::FragmentId> fragment_ids() const;

  /// Feeds one tuple to (fragment, op, port). Boundary outputs may be
  /// appended to `out` now or on a later call/Flush (batching engines).
  virtual common::Status Inject(common::FragmentId fragment,
                                common::OperatorId op, int port,
                                const Tuple& tuple,
                                std::vector<TaggedOutput>* out) = 0;

  /// Completes any buffered work, appending outputs to `out`.
  virtual void Flush(std::vector<TaggedOutput>* out) = 0;

  /// CPU-seconds consumed since the last drain (simulated accounting).
  virtual double DrainCpuCost() = 0;

 protected:
  std::map<common::FragmentId, std::unique_ptr<FragmentInstance>> fragments_;
};

/// Tuple-at-a-time engine: every injected tuple runs through its fragment
/// immediately. CPU cost is the operators' modeled cost, unmodified.
class BasicEngine : public ExecutionEngine {
 public:
  const char* name() const override { return "basic"; }

  common::Status Inject(common::FragmentId fragment, common::OperatorId op,
                        int port, const Tuple& tuple,
                        std::vector<TaggedOutput>* out) override;
  void Flush(std::vector<TaggedOutput>* out) override;
  double DrainCpuCost() override;

 private:
  double pending_cost_ = 0.0;
};

/// Micro-batching engine: buffers up to `batch_size` injected tuples and
/// runs them together, paying a fixed per-batch overhead but a discounted
/// per-tuple cost. Demonstrates a different processing model behind the
/// same interface (logical outputs are identical to BasicEngine's).
class BatchEngine : public ExecutionEngine {
 public:
  /// `cpu_discount` scales the per-tuple cost (amortization); each flush
  /// additionally costs `batch_overhead_s`.
  explicit BatchEngine(int batch_size = 32, double cpu_discount = 0.7,
                       double batch_overhead_s = 2e-6);

  const char* name() const override { return "batch"; }

  common::Status Inject(common::FragmentId fragment, common::OperatorId op,
                        int port, const Tuple& tuple,
                        std::vector<TaggedOutput>* out) override;
  void Flush(std::vector<TaggedOutput>* out) override;
  double DrainCpuCost() override;

  common::Result<std::unique_ptr<FragmentInstance>> Remove(
      common::FragmentId id, std::vector<TaggedOutput>* out) override;

 private:
  struct Buffered {
    common::FragmentId fragment;
    common::OperatorId op;
    int port;
    Tuple tuple;
  };

  void RunBatch(std::vector<TaggedOutput>* out);

  int batch_size_;
  double cpu_discount_;
  double batch_overhead_s_;
  std::vector<Buffered> buffer_;
  double pending_cost_ = 0.0;
};

}  // namespace dsps::engine

#endif  // DSPS_ENGINE_ENGINE_H_
