#include "engine/plan.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/check.h"

namespace dsps::engine {

common::OperatorId QueryPlan::AddOperator(std::unique_ptr<Operator> op) {
  DSPS_CHECK(op != nullptr);
  ops_.push_back(std::move(op));
  return static_cast<common::OperatorId>(ops_.size() - 1);
}

common::Status QueryPlan::Connect(common::OperatorId from,
                                  common::OperatorId to, int to_port) {
  if (from < 0 || from >= num_operators() || to < 0 || to >= num_operators()) {
    return common::Status::InvalidArgument("Connect: operator id out of range");
  }
  if (to_port < 0 || to_port >= ops_[to]->num_inputs()) {
    return common::Status::InvalidArgument("Connect: port out of range");
  }
  edges_.push_back(PlanEdge{from, to, to_port});
  return common::Status::OK();
}

common::Status QueryPlan::BindStream(common::StreamId stream,
                                     common::OperatorId to, int to_port) {
  if (to < 0 || to >= num_operators()) {
    return common::Status::InvalidArgument("BindStream: operator id out of range");
  }
  if (to_port < 0 || to_port >= ops_[to]->num_inputs()) {
    return common::Status::InvalidArgument("BindStream: port out of range");
  }
  bindings_.push_back(StreamBinding{stream, to, to_port});
  return common::Status::OK();
}

const Operator& QueryPlan::op(common::OperatorId id) const {
  DSPS_CHECK(id >= 0 && id < num_operators());
  return *ops_[id];
}

Operator* QueryPlan::mutable_op(common::OperatorId id) {
  DSPS_CHECK(id >= 0 && id < num_operators());
  return ops_[id].get();
}

std::vector<PlanEdge> QueryPlan::OutEdges(common::OperatorId id) const {
  std::vector<PlanEdge> out;
  for (const PlanEdge& e : edges_) {
    if (e.from == id) out.push_back(e);
  }
  return out;
}

std::vector<common::OperatorId> QueryPlan::SinkOps() const {
  std::vector<bool> has_out(ops_.size(), false);
  for (const PlanEdge& e : edges_) has_out[e.from] = true;
  std::vector<common::OperatorId> sinks;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (!has_out[i]) sinks.push_back(static_cast<common::OperatorId>(i));
  }
  return sinks;
}

common::Status QueryPlan::Validate() const {
  if (ops_.empty()) {
    return common::Status::FailedPrecondition("plan has no operators");
  }
  // Every input port fed exactly once.
  std::set<std::pair<common::OperatorId, int>> fed;
  for (const StreamBinding& b : bindings_) {
    if (!fed.insert({b.to, b.to_port}).second) {
      return common::Status::FailedPrecondition("input port fed twice");
    }
  }
  for (const PlanEdge& e : edges_) {
    if (!fed.insert({e.to, e.to_port}).second) {
      return common::Status::FailedPrecondition("input port fed twice");
    }
  }
  for (int i = 0; i < num_operators(); ++i) {
    for (int p = 0; p < ops_[i]->num_inputs(); ++p) {
      if (fed.count({i, p}) == 0) {
        return common::Status::FailedPrecondition("unfed operator input port");
      }
    }
  }
  if (!TopologicalOrder().ok()) {
    return common::Status::FailedPrecondition("plan has a cycle");
  }
  return common::Status::OK();
}

common::Result<std::vector<common::OperatorId>> QueryPlan::TopologicalOrder()
    const {
  std::vector<int> indegree(ops_.size(), 0);
  for (const PlanEdge& e : edges_) indegree[e.to] += 1;
  std::queue<common::OperatorId> ready;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<common::OperatorId>(i));
  }
  std::vector<common::OperatorId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    common::OperatorId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const PlanEdge& e : edges_) {
      if (e.from == id && --indegree[e.to] == 0) ready.push(e.to);
    }
  }
  if (order.size() != ops_.size()) {
    return common::Status::FailedPrecondition("plan has a cycle");
  }
  return order;
}

std::unique_ptr<QueryPlan> QueryPlan::Clone() const {
  auto copy = std::make_unique<QueryPlan>();
  for (const auto& op : ops_) copy->ops_.push_back(op->Clone());
  copy->edges_ = edges_;
  copy->bindings_ = bindings_;
  return copy;
}

double QueryPlan::EstimateInherentCostPerTuple() const {
  auto order_result = TopologicalOrder();
  if (!order_result.ok()) return 0.0;
  // Relative input rate per operator, normalized so that each bound stream
  // contributes rate 1. Selectivity propagates multiplicatively.
  std::vector<double> in_rate(ops_.size(), 0.0);
  for (const StreamBinding& b : bindings_) in_rate[b.to] += 1.0;
  double total_cost = 0.0;
  for (common::OperatorId id : order_result.value()) {
    double rate = in_rate[id];
    total_cost += rate * ops_[id]->cost_per_tuple();
    double out_rate = rate * ops_[id]->estimated_selectivity();
    for (const PlanEdge& e : edges_) {
      if (e.from == id) in_rate[e.to] += out_rate;
    }
  }
  return total_cost;
}

}  // namespace dsps::engine
