#include "engine/plan_io.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/operators.h"

namespace dsps::engine {

namespace {

using Func = WindowAggregateOp::Func;

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FmtInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  return out;
}

std::string FmtBox(const interest::Box& box) {
  std::string out;
  for (size_t i = 0; i < box.size(); ++i) {
    if (i > 0) out += ',';
    out += FmtDouble(box[i].lo) + ":" + FmtDouble(box[i].hi);
  }
  return out;
}

const char* FuncName(Func f) {
  switch (f) {
    case Func::kCount:
      return "count";
    case Func::kSum:
      return "sum";
    case Func::kAvg:
      return "avg";
    case Func::kMin:
      return "min";
    case Func::kMax:
      return "max";
  }
  return "?";
}

common::Result<Func> ParseFunc(const std::string& s) {
  if (s == "count") return Func::kCount;
  if (s == "sum") return Func::kSum;
  if (s == "avg") return Func::kAvg;
  if (s == "min") return Func::kMin;
  if (s == "max") return Func::kMax;
  return common::Status::InvalidArgument("unknown aggregate func: " + s);
}

/// key=value pairs from the remainder of an OP line.
using Params = std::map<std::string, std::string>;

common::Result<std::string> Param(const Params& params,
                                  const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) {
    return common::Status::InvalidArgument("missing param: " + key);
  }
  return it->second;
}

common::Result<double> ParamDouble(const Params& params,
                                   const std::string& key) {
  auto v = Param(params, key);
  if (!v.ok()) return v.status();
  return std::strtod(v.value().c_str(), nullptr);
}

common::Result<int> ParamInt(const Params& params, const std::string& key) {
  auto v = Param(params, key);
  if (!v.ok()) return v.status();
  return static_cast<int>(std::strtol(v.value().c_str(), nullptr, 10));
}

std::vector<int> SplitInts(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<int>(std::strtol(item.c_str(), nullptr, 10)));
    }
  }
  return out;
}

common::Result<interest::Box> ParseBox(const std::string& s) {
  interest::Box box;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return common::Status::InvalidArgument("bad box interval: " + item);
    }
    box.push_back(interest::Interval{
        std::strtod(item.substr(0, colon).c_str(), nullptr),
        std::strtod(item.substr(colon + 1).c_str(), nullptr)});
  }
  return box;
}

/// The declarative body of one operator, excluding cost/sel.
common::Result<std::string> DescribeOp(const Operator& op) {
  if (const auto* f = dynamic_cast<const FilterOp*>(&op)) {
    return "Filter dims=" + FmtInts(f->numeric_indices()) +
           " box=" + FmtBox(f->box());
  }
  if (const auto* m = dynamic_cast<const MapOp*>(&op)) {
    return "Map keep=" + FmtInts(m->keep_indices()) +
           " scale=" + FmtDouble(m->scale());
  }
  if (const auto* j = dynamic_cast<const WindowJoinOp*>(&op)) {
    return "WindowJoin window=" + FmtDouble(j->window_s()) +
           " lkey=" + std::to_string(j->left_key()) +
           " rkey=" + std::to_string(j->right_key());
  }
  if (const auto* a = dynamic_cast<const SlidingWindowAggregateOp*>(&op)) {
    return std::string("SlidingWindowAggregate window=") +
           FmtDouble(a->window_s()) + " slide=" + FmtDouble(a->slide_s()) +
           " func=" + FuncName(a->func()) +
           " key=" + std::to_string(a->key_field()) +
           " value=" + std::to_string(a->value_field());
  }
  if (const auto* a = dynamic_cast<const WindowAggregateOp*>(&op)) {
    return std::string("WindowAggregate window=") + FmtDouble(a->window_s()) +
           " func=" + FuncName(a->func()) +
           " key=" + std::to_string(a->key_field()) +
           " value=" + std::to_string(a->value_field());
  }
  if (const auto* t = dynamic_cast<const TopKOp*>(&op)) {
    return "TopK window=" + FmtDouble(t->window_s()) +
           " k=" + std::to_string(t->k()) +
           " key=" + std::to_string(t->key_field()) +
           " value=" + std::to_string(t->value_field());
  }
  if (const auto* d = dynamic_cast<const DistinctOp*>(&op)) {
    return "Distinct window=" + FmtDouble(d->window_s()) +
           " key=" + std::to_string(d->key_field());
  }
  if (const auto* u = dynamic_cast<const UnionOp*>(&op)) {
    return "Union inputs=" + std::to_string(u->num_inputs());
  }
  return common::Status::InvalidArgument(
      std::string("operator has no declarative form: ") + op.name());
}

common::Result<std::unique_ptr<Operator>> MakeOp(const std::string& kind,
                                                 const Params& params) {
  std::unique_ptr<Operator> op;
  if (kind == "Filter") {
    auto dims = Param(params, "dims");
    auto box = Param(params, "box");
    if (!dims.ok()) return dims.status();
    if (!box.ok()) return box.status();
    auto parsed = ParseBox(box.value());
    if (!parsed.ok()) return parsed.status();
    op = std::make_unique<FilterOp>(SplitInts(dims.value()),
                                    std::move(parsed).value());
  } else if (kind == "Map") {
    auto keep = Param(params, "keep");
    auto scale = ParamDouble(params, "scale");
    if (!keep.ok()) return keep.status();
    if (!scale.ok()) return scale.status();
    op = std::make_unique<MapOp>(SplitInts(keep.value()), scale.value());
  } else if (kind == "WindowJoin") {
    auto window = ParamDouble(params, "window");
    auto lkey = ParamInt(params, "lkey");
    auto rkey = ParamInt(params, "rkey");
    if (!window.ok()) return window.status();
    if (!lkey.ok()) return lkey.status();
    if (!rkey.ok()) return rkey.status();
    op = std::make_unique<WindowJoinOp>(window.value(), lkey.value(),
                                        rkey.value());
  } else if (kind == "WindowAggregate" || kind == "SlidingWindowAggregate") {
    auto window = ParamDouble(params, "window");
    auto func_s = Param(params, "func");
    auto key = ParamInt(params, "key");
    auto value = ParamInt(params, "value");
    if (!window.ok()) return window.status();
    if (!func_s.ok()) return func_s.status();
    if (!key.ok()) return key.status();
    if (!value.ok()) return value.status();
    auto func = ParseFunc(func_s.value());
    if (!func.ok()) return func.status();
    if (kind == "WindowAggregate") {
      op = std::make_unique<WindowAggregateOp>(window.value(), func.value(),
                                               key.value(), value.value());
    } else {
      auto slide = ParamDouble(params, "slide");
      if (!slide.ok()) return slide.status();
      op = std::make_unique<SlidingWindowAggregateOp>(
          window.value(), slide.value(), func.value(), key.value(),
          value.value());
    }
  } else if (kind == "TopK") {
    auto window = ParamDouble(params, "window");
    auto k = ParamInt(params, "k");
    auto key = ParamInt(params, "key");
    auto value = ParamInt(params, "value");
    if (!window.ok()) return window.status();
    if (!k.ok()) return k.status();
    if (!key.ok()) return key.status();
    if (!value.ok()) return value.status();
    op = std::make_unique<TopKOp>(window.value(), k.value(), key.value(),
                                  value.value());
  } else if (kind == "Distinct") {
    auto window = ParamDouble(params, "window");
    auto key = ParamInt(params, "key");
    if (!window.ok()) return window.status();
    if (!key.ok()) return key.status();
    op = std::make_unique<DistinctOp>(window.value(), key.value());
  } else if (kind == "Union") {
    auto inputs = ParamInt(params, "inputs");
    if (!inputs.ok()) return inputs.status();
    op = std::make_unique<UnionOp>(inputs.value());
  } else {
    return common::Status::InvalidArgument("unknown operator kind: " + kind);
  }
  return op;
}

}  // namespace

common::Result<std::string> SerializePlan(const QueryPlan& plan) {
  std::string out = "PLAN v1\n";
  for (int i = 0; i < plan.num_operators(); ++i) {
    const Operator& op = plan.op(i);
    auto body = DescribeOp(op);
    if (!body.ok()) return body.status();
    out += "OP " + std::to_string(i) + " " + body.value() +
           " cost=" + FmtDouble(op.cost_per_tuple()) +
           " sel=" + FmtDouble(op.estimated_selectivity()) + "\n";
  }
  for (const PlanEdge& e : plan.edges()) {
    out += "EDGE " + std::to_string(e.from) + " " + std::to_string(e.to) +
           " " + std::to_string(e.to_port) + "\n";
  }
  for (const StreamBinding& b : plan.bindings()) {
    out += "BIND " + std::to_string(b.stream) + " " + std::to_string(b.to) +
           " " + std::to_string(b.to_port) + "\n";
  }
  return out;
}

common::Result<std::unique_ptr<QueryPlan>> ParsePlan(const std::string& text) {
  auto plan = std::make_unique<QueryPlan>();
  std::stringstream lines(text);
  std::string line;
  bool saw_header = false;
  int expected_op = 0;
  while (std::getline(lines, line)) {
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::stringstream ss(line);
    std::string token;
    if (!(ss >> token)) continue;
    if (token == "PLAN") {
      std::string version;
      ss >> version;
      if (version != "v1") {
        return common::Status::InvalidArgument("unsupported plan version");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return common::Status::InvalidArgument("missing PLAN header");
    }
    if (token == "OP") {
      int id;
      std::string kind;
      if (!(ss >> id >> kind)) {
        return common::Status::InvalidArgument("malformed OP line: " + line);
      }
      if (id != expected_op) {
        return common::Status::InvalidArgument("OP ids must be sequential");
      }
      Params params;
      std::string kv;
      while (ss >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          return common::Status::InvalidArgument("malformed param: " + kv);
        }
        params[kv.substr(0, eq)] = kv.substr(eq + 1);
      }
      auto op = MakeOp(kind, params);
      if (!op.ok()) return op.status();
      auto cost = ParamDouble(params, "cost");
      auto sel = ParamDouble(params, "sel");
      if (cost.ok()) op.value()->set_cost_per_tuple(cost.value());
      if (sel.ok()) op.value()->set_estimated_selectivity(sel.value());
      plan->AddOperator(std::move(op).value());
      ++expected_op;
      continue;
    }
    if (token == "EDGE") {
      int from, to, port;
      if (!(ss >> from >> to >> port)) {
        return common::Status::InvalidArgument("malformed EDGE line: " + line);
      }
      DSPS_RETURN_IF_ERROR(plan->Connect(from, to, port));
      continue;
    }
    if (token == "BIND") {
      int stream, to, port;
      if (!(ss >> stream >> to >> port)) {
        return common::Status::InvalidArgument("malformed BIND line: " + line);
      }
      DSPS_RETURN_IF_ERROR(plan->BindStream(stream, to, port));
      continue;
    }
    return common::Status::InvalidArgument("unknown record: " + token);
  }
  DSPS_RETURN_IF_ERROR(plan->Validate());
  return plan;
}

}  // namespace dsps::engine
