#ifndef DSPS_WORKLOAD_QUERY_GEN_H_
#define DSPS_WORKLOAD_QUERY_GEN_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "engine/plan.h"
#include "interest/measure.h"

namespace dsps::workload {

/// A generated query plus its arrival time in the query stream.
struct QueryArrival {
  engine::Query query;
  double arrival_time = 0.0;
};

/// Generates a continuous stream of queries ("query streams", Section
/// 3.2.1) with controllable interest locality, overlap and load skew.
///
/// Each query is one of:
///  * filter:      stream -> Filter(box) -> sink
///  * aggregate:   stream -> Filter(box) -> WindowAggregate -> sink
///  * join:        s1 -> Filter ┐
///                              ├ WindowJoin -> sink
///                 s2 -> Filter ┘
/// The filter boxes define the query's data interest. Interest centers are
/// drawn from per-stream hotspots (with probability hotspot_prob) or
/// uniformly, so overlapping interest clusters emerge naturally.
class QueryGen {
 public:
  struct Config {
    double join_prob = 0.15;
    double agg_prob = 0.35;
    /// Interest width per dimension, as a fraction of the domain.
    double width_min_frac = 0.05;
    double width_max_frac = 0.25;
    /// Interest locality.
    int num_hotspots = 5;
    double hotspot_prob = 0.7;
    double hotspot_stddev_frac = 0.05;
    /// Which stream(s) a query reads: Zipf over the catalog.
    double stream_zipf_s = 0.8;
    /// Multiplicative load noise: exp(Gaussian(0, sigma)).
    double load_noise_sigma = 0.4;
    /// Query stream rate (queries per second of simulated time).
    double queries_per_s = 1.0;
    /// Dimensions the filter constrains (first k numeric dims).
    int filter_dims = 2;
    /// Window length for joins/aggregates.
    double window_s = 10.0;
    /// Tenant stamped on every generated query (multi-tenant workloads
    /// run one tagged generator per tenant; 0 = the implicit tenant).
    int32_t tenant = 0;
  };

  QueryGen(const Config& config, const interest::StreamCatalog* catalog,
           common::Rng rng);

  /// Generates the next query; ids are sequential from 1.
  engine::Query Next();

  /// Generates the next query with an exponential interarrival timestamp.
  QueryArrival NextArrival();

  /// Convenience: `n` queries (ignoring arrival times).
  std::vector<engine::Query> Batch(int n);

 private:
  /// Draws an interest box for `stream` and remembers it for the plan.
  interest::Box DrawInterestBox(common::StreamId stream);
  common::StreamId DrawStream();

  Config config_;
  const interest::StreamCatalog* catalog_;
  common::Rng rng_;
  common::QueryId next_id_ = 1;
  double clock_ = 0.0;
  /// hotspots_[stream][h] = hotspot center in [0,1]^dims (domain fractions).
  std::vector<std::vector<std::vector<double>>> hotspots_;
  std::vector<common::StreamId> stream_ids_;
};

}  // namespace dsps::workload

#endif  // DSPS_WORKLOAD_QUERY_GEN_H_
