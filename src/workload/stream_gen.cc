#include "workload/stream_gen.h"

#include <algorithm>

#include "common/check.h"

namespace dsps::workload {

using engine::Field;
using engine::Schema;
using engine::Tuple;
using engine::Value;
using engine::ValueType;

// ----------------------------------------------------------- StockTickerGen

StockTickerGen::StockTickerGen(const Config& config, common::Rng rng)
    : config_(config),
      rng_(rng),
      schema_(Schema({Field{"symbol", ValueType::kInt64},
                      Field{"price", ValueType::kDouble},
                      Field{"volume", ValueType::kDouble}})) {
  DSPS_CHECK(config.num_symbols > 0);
  DSPS_CHECK(config.price_max > config.price_min);
  prices_.resize(config.num_symbols);
  for (double& p : prices_) {
    p = rng_.Uniform(config.price_min, config.price_max);
  }
}

interest::StreamStats StockTickerGen::stats() const {
  interest::StreamStats s;
  s.domain = interest::Box{
      {0.0, static_cast<double>(config_.num_symbols - 1)},
      {config_.price_min, config_.price_max},
      {0.0, config_.mean_volume * 20.0}};
  s.tuples_per_s = config_.tuples_per_s;
  // symbol + price + volume + header.
  s.bytes_per_tuple = 12 + 3 * 8;
  return s;
}

Tuple StockTickerGen::Next(double timestamp) {
  int64_t symbol = static_cast<int64_t>(
      rng_.Zipf(static_cast<uint64_t>(config_.num_symbols), config_.zipf_s));
  double& price = prices_[symbol];
  price += rng_.Uniform(-config_.walk_step, config_.walk_step);
  price = std::clamp(price, config_.price_min, config_.price_max);
  double volume = rng_.Exponential(1.0 / config_.mean_volume);
  Tuple t;
  t.stream = config_.stream;
  t.timestamp = timestamp;
  t.values = {Value{symbol}, Value{price}, Value{volume}};
  return t;
}

// ----------------------------------------------------------------- NetMonGen

NetMonGen::NetMonGen(const Config& config, common::Rng rng)
    : config_(config),
      rng_(rng),
      schema_(Schema({Field{"src_host", ValueType::kInt64},
                      Field{"dst_host", ValueType::kInt64},
                      Field{"bytes", ValueType::kDouble}})) {
  DSPS_CHECK(config.num_hosts > 0);
}

interest::StreamStats NetMonGen::stats() const {
  interest::StreamStats s;
  s.domain = interest::Box{
      {0.0, static_cast<double>(config_.num_hosts - 1)},
      {0.0, static_cast<double>(config_.num_hosts - 1)},
      {0.0, config_.max_flow_bytes}};
  s.tuples_per_s = config_.tuples_per_s;
  s.bytes_per_tuple = 12 + 3 * 8;
  return s;
}

Tuple NetMonGen::Next(double timestamp) {
  uint64_t n = static_cast<uint64_t>(config_.num_hosts);
  int64_t src = static_cast<int64_t>(rng_.Zipf(n, config_.zipf_s));
  int64_t dst = static_cast<int64_t>(rng_.Zipf(n, config_.zipf_s));
  double bytes = std::min(rng_.Exponential(1.0 / config_.mean_flow_bytes),
                          config_.max_flow_bytes);
  Tuple t;
  t.stream = config_.stream;
  t.timestamp = timestamp;
  t.values = {Value{src}, Value{dst}, Value{bytes}};
  return t;
}

// ----------------------------------------------------------------- Helpers

void RegisterStream(const StreamGen& gen, interest::StreamCatalog* catalog) {
  DSPS_CHECK(catalog != nullptr);
  catalog->Register(gen.stream(), gen.stats());
}

std::vector<std::unique_ptr<StreamGen>> MakeTickerStreams(
    int n, const StockTickerGen::Config& base,
    interest::StreamCatalog* catalog, common::Rng* rng) {
  std::vector<std::unique_ptr<StreamGen>> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    StockTickerGen::Config cfg = base;
    cfg.stream = i;
    auto gen = std::make_unique<StockTickerGen>(
        cfg, rng->Fork(static_cast<uint64_t>(i) + 1000));
    if (catalog != nullptr) RegisterStream(*gen, catalog);
    out.push_back(std::move(gen));
  }
  return out;
}

}  // namespace dsps::workload
