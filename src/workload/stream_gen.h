#ifndef DSPS_WORKLOAD_STREAM_GEN_H_
#define DSPS_WORKLOAD_STREAM_GEN_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "engine/tuple.h"
#include "interest/measure.h"

namespace dsps::workload {

/// Generates the tuples of one logical stream. Implementations model the
/// paper's motivating feeds (stock tickers, network monitoring) with
/// controllable rates and value distributions.
class StreamGen {
 public:
  virtual ~StreamGen() = default;

  /// The stream this generator produces.
  virtual common::StreamId stream() const = 0;

  /// Tuple schema.
  virtual const engine::Schema& schema() const = 0;

  /// Stream stats (domain over numeric fields, rate) for the catalog.
  virtual interest::StreamStats stats() const = 0;

  /// Produces the next tuple, stamped with `timestamp`.
  virtual engine::Tuple Next(double timestamp) = 0;
};

/// Stock ticker: (symbol:int64, price:double, volume:double). Symbols are
/// Zipf-distributed (hot symbols trade more); each symbol's price follows
/// a bounded random walk; volume is exponential.
class StockTickerGen : public StreamGen {
 public:
  struct Config {
    common::StreamId stream = 0;
    int num_symbols = 100;
    double zipf_s = 1.0;
    double price_min = 0.0;
    double price_max = 100.0;
    double walk_step = 0.5;
    double mean_volume = 1000.0;
    double tuples_per_s = 100.0;
  };

  StockTickerGen(const Config& config, common::Rng rng);

  common::StreamId stream() const override { return config_.stream; }
  const engine::Schema& schema() const override { return schema_; }
  interest::StreamStats stats() const override;
  engine::Tuple Next(double timestamp) override;

 private:
  Config config_;
  common::Rng rng_;
  engine::Schema schema_;
  std::vector<double> prices_;
};

/// Network monitoring: (src_host:int64, dst_host:int64, bytes:double).
/// Hosts are Zipf-distributed; flow sizes are exponential.
class NetMonGen : public StreamGen {
 public:
  struct Config {
    common::StreamId stream = 0;
    int num_hosts = 256;
    double zipf_s = 0.8;
    double mean_flow_bytes = 4096.0;
    double max_flow_bytes = 1e6;
    double tuples_per_s = 200.0;
  };

  NetMonGen(const Config& config, common::Rng rng);

  common::StreamId stream() const override { return config_.stream; }
  const engine::Schema& schema() const override { return schema_; }
  interest::StreamStats stats() const override;
  engine::Tuple Next(double timestamp) override;

 private:
  Config config_;
  common::Rng rng_;
  engine::Schema schema_;
};

/// Registers `gen`'s stats in `catalog` under its stream id.
void RegisterStream(const StreamGen& gen, interest::StreamCatalog* catalog);

/// Builds `n` stock ticker streams (stream ids 0..n-1) with the given base
/// config, registering each in `catalog`. Rngs are forked from `rng`.
std::vector<std::unique_ptr<StreamGen>> MakeTickerStreams(
    int n, const StockTickerGen::Config& base, interest::StreamCatalog* catalog,
    common::Rng* rng);

}  // namespace dsps::workload

#endif  // DSPS_WORKLOAD_STREAM_GEN_H_
