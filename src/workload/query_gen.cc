#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "engine/operators.h"

namespace dsps::workload {

using engine::FilterOp;
using engine::Query;
using engine::QueryPlan;
using engine::WindowAggregateOp;
using engine::WindowJoinOp;
using interest::Box;
using interest::Interval;

QueryGen::QueryGen(const Config& config,
                   const interest::StreamCatalog* catalog, common::Rng rng)
    : config_(config), catalog_(catalog), rng_(rng) {
  DSPS_CHECK(catalog != nullptr);
  DSPS_CHECK(catalog->size() > 0);
  stream_ids_ = catalog->streams();
  hotspots_.resize(stream_ids_.size());
  for (size_t s = 0; s < stream_ids_.size(); ++s) {
    hotspots_[s].resize(config.num_hotspots);
    size_t dims = catalog->stats(stream_ids_[s]).domain.size();
    for (auto& spot : hotspots_[s]) {
      spot.resize(dims);
      for (double& c : spot) c = rng_.NextDouble();
    }
  }
}

common::StreamId QueryGen::DrawStream() {
  size_t idx = rng_.Zipf(stream_ids_.size(), config_.stream_zipf_s);
  return stream_ids_[idx];
}

Box QueryGen::DrawInterestBox(common::StreamId stream) {
  const interest::StreamStats& stats = catalog_->stats(stream);
  size_t dims = stats.domain.size();
  size_t stream_idx =
      std::find(stream_ids_.begin(), stream_ids_.end(), stream) -
      stream_ids_.begin();
  // Center: hotspot + jitter, or uniform.
  std::vector<double> center(dims);
  if (!hotspots_[stream_idx].empty() && rng_.Bernoulli(config_.hotspot_prob)) {
    const auto& spot = hotspots_[stream_idx][rng_.NextUint64(
        hotspots_[stream_idx].size())];
    for (size_t d = 0; d < dims; ++d) {
      center[d] = std::clamp(
          spot[d] + rng_.Gaussian(0.0, config_.hotspot_stddev_frac), 0.0, 1.0);
    }
  } else {
    for (double& c : center) c = rng_.NextDouble();
  }
  Box box(dims);
  int constrained = std::min<int>(config_.filter_dims, static_cast<int>(dims));
  for (size_t d = 0; d < dims; ++d) {
    const Interval& dom = stats.domain[d];
    if (static_cast<int>(d) < constrained) {
      double width = dom.length() *
                     rng_.Uniform(config_.width_min_frac, config_.width_max_frac);
      double c = dom.lo + center[d] * dom.length();
      box[d] = Interval{std::max(dom.lo, c - width / 2),
                        std::min(dom.hi, c + width / 2)};
    } else {
      box[d] = dom;  // unconstrained dimension
    }
  }
  return box;
}

Query QueryGen::Next() {
  Query q;
  q.id = next_id_++;
  q.tenant = config_.tenant;
  auto plan = std::make_unique<QueryPlan>();
  double roll = rng_.NextDouble();
  bool is_join = roll < config_.join_prob && catalog_->size() >= 1;
  bool is_agg = !is_join && roll < config_.join_prob + config_.agg_prob;

  auto add_filter = [&](common::StreamId stream) {
    Box box = DrawInterestBox(stream);
    const interest::StreamStats& stats = catalog_->stats(stream);
    std::vector<int> dims(box.size());
    for (size_t d = 0; d < box.size(); ++d) dims[d] = static_cast<int>(d);
    auto op = std::make_unique<FilterOp>(dims, box);
    double sel = interest::BoxVolume(box) / interest::BoxVolume(stats.domain);
    op->set_estimated_selectivity(sel);
    common::OperatorId id = plan->AddOperator(std::move(op));
    DSPS_CHECK(plan->BindStream(stream, id, 0).ok());
    q.interest.Add(stream, box);
    return id;
  };

  if (is_join) {
    common::StreamId s1 = DrawStream();
    common::StreamId s2 = DrawStream();
    common::OperatorId f1 = add_filter(s1);
    common::OperatorId f2 = add_filter(s2);
    auto join = std::make_unique<WindowJoinOp>(config_.window_s, 0, 0);
    join->set_estimated_selectivity(0.5);
    common::OperatorId j = plan->AddOperator(std::move(join));
    DSPS_CHECK(plan->Connect(f1, j, 0).ok());
    DSPS_CHECK(plan->Connect(f2, j, 1).ok());
  } else if (is_agg) {
    common::StreamId s = DrawStream();
    common::OperatorId f = add_filter(s);
    common::OperatorId a =
        plan->AddOperator(std::make_unique<WindowAggregateOp>(
            config_.window_s, WindowAggregateOp::Func::kAvg, 0, 1));
    DSPS_CHECK(plan->Connect(f, a, 0).ok());
  } else {
    add_filter(DrawStream());
  }
  DSPS_CHECK(plan->Validate().ok());

  // Load: CPU-seconds per second = arrival rate x inherent per-tuple cost,
  // with multiplicative noise (queries differ in constant factors the cost
  // model does not see).
  double arrival_tps = 0.0;
  for (common::StreamId s : q.interest.streams()) {
    const interest::StreamStats& stats = catalog_->stats(s);
    arrival_tps += stats.tuples_per_s *
                   interest::CoverageFraction(q.interest, s, stats.domain);
  }
  double noise = std::exp(rng_.Gaussian(0.0, config_.load_noise_sigma));
  q.load = std::max(1e-9, arrival_tps * plan->EstimateInherentCostPerTuple() *
                              noise * 1e3);
  q.plan = std::move(plan);
  return q;
}

QueryArrival QueryGen::NextArrival() {
  QueryArrival qa;
  clock_ += rng_.Exponential(config_.queries_per_s);
  qa.arrival_time = clock_;
  qa.query = Next();
  return qa;
}

std::vector<Query> QueryGen::Batch(int n) {
  std::vector<Query> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace dsps::workload
