#ifndef DSPS_COMMON_RNG_H_
#define DSPS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dsps::common {

/// Deterministic pseudo-random number generator (xoshiro256**, seeded via
/// SplitMix64). All randomness in the library flows through this type so
/// that every experiment is exactly reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce identical sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses an O(1) rejection-inversion sampler.
  uint64_t Zipf(uint64_t n, double s);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent generator for a labeled sub-component.
  Rng Fork(uint64_t label);

 private:
  uint64_t state_[4];
};

}  // namespace dsps::common

#endif  // DSPS_COMMON_RNG_H_
