#include "common/check.h"

namespace dsps::common {

namespace {
FatalHook g_fatal_hook = nullptr;
}  // namespace

void SetFatalHook(FatalHook hook) { g_fatal_hook = hook; }

void RunFatalHook() {
  // Detach before invoking so a failed check inside the hook itself
  // cannot recurse; the hook runs at most once per process.
  FatalHook hook = g_fatal_hook;
  g_fatal_hook = nullptr;
  if (hook != nullptr) hook();
}

}  // namespace dsps::common
