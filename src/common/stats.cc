#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dsps::common {

namespace {
// Constant-initialized so histograms constructed during static init see
// the built-in default.
size_t g_default_sample_cap = size_t{1} << 25;
int64_t g_total_overflow = 0;
}  // namespace

void Histogram::SetDefaultSampleCap(size_t cap) { g_default_sample_cap = cap; }

size_t Histogram::default_sample_cap() { return g_default_sample_cap; }

int64_t Histogram::TotalOverflow() { return g_total_overflow; }

void Histogram::CountOverflow(int64_t n) {
  // Debug builds fail loudly: an uncapped accumulation site is a bug —
  // the fix is a larger explicit cap or a telemetry::Sketch, not silence.
  DSPS_DCHECK(false &&
              "common::Histogram sample cap exceeded; use a Sketch or "
              "set_sample_cap for genuinely exact needs");
  overflow_ += n;
  g_total_overflow += n;
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = new_mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Add(double x) {
  if (samples_.size() >= cap_) {
    CountOverflow(1);
    return;
  }
  samples_.push_back(x);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  if (other.samples_.empty()) return;
  size_t room = cap_ > samples_.size() ? cap_ - samples_.size() : 0;
  size_t take = std::min(room, other.samples_.size());
  if (take < other.samples_.size()) {
    CountOverflow(static_cast<int64_t>(other.samples_.size() - take));
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.begin() + static_cast<ptrdiff_t>(take));
  sorted_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  double rank = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace dsps::common
