#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace dsps::common {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = new_mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  double rank = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace dsps::common
