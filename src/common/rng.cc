#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace dsps::common {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  DSPS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DSPS_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  DSPS_CHECK(rate > 0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  DSPS_CHECK(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return NextUint64(n);
  // Rejection-inversion sampling (Hormann & Derflinger 1996), following
  // the Apache Commons RejectionInversionZipfSampler formulation, which
  // keeps the acceptance rate bounded for every exponent (a naive
  // sampling region degenerates for large s). Ranks are 1..n; the result
  // is shifted to 0-based.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h = [s](double x) { return std::pow(x, -s); };
  auto h_integral_inverse = [s](double u) {
    if (s == 1.0) return std::exp(u);
    double t = std::max(0.0, u * (1.0 - s) + 1.0);
    return std::pow(t, 1.0 / (1.0 - s));
  };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  const double accept_s =
      2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  for (;;) {
    double u = h_n + NextDouble() * (h_x1 - h_n);
    double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > nd) kd = nd;
    if (kd - x <= accept_s || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<uint64_t>(kd) - 1;
    }
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(uint64_t label) {
  uint64_t mix = Next() ^ (label * 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

}  // namespace dsps::common
