#ifndef DSPS_COMMON_IDS_H_
#define DSPS_COMMON_IDS_H_

#include <cstdint>

namespace dsps::common {

/// Identifier conventions used across subsystems. Plain integers are used
/// (rather than strong types) to keep hot-path structs trivially copyable;
/// each alias documents the namespace an id lives in.

/// A stream source / logical stream.
using StreamId = int32_t;
/// A business entity (processing-service provider).
using EntityId = int32_t;
/// A processor (machine) within an entity.
using ProcessorId = int32_t;
/// A continuous query.
using QueryId = int64_t;
/// An operator within a query plan.
using OperatorId = int32_t;
/// A query fragment (connected sub-plan).
using FragmentId = int64_t;
/// A node in the discrete-event network simulator.
using SimNodeId = int32_t;

inline constexpr StreamId kInvalidStream = -1;
inline constexpr EntityId kInvalidEntity = -1;
inline constexpr ProcessorId kInvalidProcessor = -1;
inline constexpr QueryId kInvalidQuery = -1;
inline constexpr SimNodeId kInvalidSimNode = -1;

}  // namespace dsps::common

#endif  // DSPS_COMMON_IDS_H_
