#ifndef DSPS_COMMON_CHECK_H_
#define DSPS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dsps::common {

/// Process-wide hook invoked (at most once) just before a failed
/// DSPS_CHECK aborts — the flight recorder installs one to flush its
/// ring so post-mortems see the events leading up to the fatal check.
/// The hook must be async-signal-ish tame: no allocation-heavy work, no
/// further fatal checks (re-entry is suppressed, not survived).
using FatalHook = void (*)();
void SetFatalHook(FatalHook hook);
/// Runs and clears the installed hook; called by the check macros.
void RunFatalHook();

}  // namespace dsps::common

/// Fatal invariant check. Used for programming errors only; recoverable
/// failures go through Status/Result.
#define DSPS_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DSPS_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                    \
      ::dsps::common::RunFatalHook();                                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Fatal invariant check with a formatted explanation.
#define DSPS_CHECK_MSG(cond, ...)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DSPS_CHECK failed: %s at %s:%d: ", #cond,      \
                   __FILE__, __LINE__);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      ::dsps::common::RunFatalHook();                                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define DSPS_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define DSPS_DCHECK(cond) DSPS_CHECK(cond)
#endif

#endif  // DSPS_COMMON_CHECK_H_
