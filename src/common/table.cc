#include "common/table.h"

#include <cinttypes>
#include <cstdio>

namespace dsps::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out->append(cell);
      if (c + 1 < headers_.size()) {
        out->append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void Table::Print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

}  // namespace dsps::common
