#ifndef DSPS_COMMON_TABLE_H_
#define DSPS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dsps::common {

/// Plain-text aligned table printer used by the benchmark harnesses to emit
/// paper-style result tables.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  /// Convenience: formats integers.
  static std::string Int(int64_t v);

  /// Renders the table with a header underline and column alignment.
  std::string ToString() const;

  /// Prints to stdout with a title banner.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsps::common

#endif  // DSPS_COMMON_TABLE_H_
