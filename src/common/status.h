#ifndef DSPS_COMMON_STATUS_H_
#define DSPS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace dsps::common {

/// Error categories used across the library. Kept deliberately small;
/// the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error result used instead of exceptions on all
/// fallible paths (RocksDB-style). An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder. Access to the value requires `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    DSPS_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    DSPS_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    DSPS_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    DSPS_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace dsps::common

/// Propagates a non-OK status to the caller.
#define DSPS_RETURN_IF_ERROR(expr)                       \
  do {                                                   \
    ::dsps::common::Status _dsps_status = (expr);        \
    if (!_dsps_status.ok()) return _dsps_status;         \
  } while (0)

#endif  // DSPS_COMMON_STATUS_H_
