#ifndef DSPS_COMMON_STATS_H_
#define DSPS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsps::common {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact-percentile histogram: stores all samples; intended for experiment
/// harnesses where sample counts are modest (<= millions). The "modest"
/// contract is enforced: once a histogram reaches its sample cap, further
/// Adds fail a fatal check in debug builds and are counted (overflow())
/// but not stored in release builds — never silent multi-GB growth. For
/// unbounded hot-path streams use telemetry::Sketch instead.
class Histogram {
 public:
  /// Adds one observation (dropped and counted once at the cap).
  void Add(double x);

  /// Merges all of `other`'s samples into this histogram; percentiles of
  /// the merge are exact (both sample sets are kept, up to the cap).
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double mean() const;
  /// The q-quantile (q in [0,1]) with linear interpolation between the
  /// two nearest sorted samples; 0 when empty.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }
  double max() const { return Percentile(1.0); }

  /// Stored samples in unspecified order (sorted after any percentile
  /// query). Exposed so accuracy harnesses can replay exact samples into
  /// a Sketch for error measurement.
  const std::vector<double>& samples() const { return samples_; }

  /// Per-instance sample cap; new histograms start at default_sample_cap.
  void set_sample_cap(size_t cap) { cap_ = cap; }
  size_t sample_cap() const { return cap_; }
  /// Samples rejected at the cap by this instance (release builds).
  int64_t overflow() const { return overflow_; }

  /// Process-wide default cap applied to histograms constructed after the
  /// call (2^25 samples = 256 MB of doubles out of the box).
  static void SetDefaultSampleCap(size_t cap);
  static size_t default_sample_cap();
  /// Total samples rejected at the cap across every histogram in the
  /// process; bench reports surface this so truncation is never silent.
  static int64_t TotalOverflow();

 private:
  void EnsureSorted() const;
  void CountOverflow(int64_t n);

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  size_t cap_ = default_sample_cap();
  int64_t overflow_ = 0;
};

}  // namespace dsps::common

#endif  // DSPS_COMMON_STATS_H_
