#ifndef DSPS_COMMON_STATS_H_
#define DSPS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsps::common {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact-percentile histogram: stores all samples; intended for experiment
/// harnesses where sample counts are modest (<= millions).
class Histogram {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges all of `other`'s samples into this histogram; percentiles of
  /// the merge are exact (both sample sets are kept).
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double mean() const;
  /// The q-quantile (q in [0,1]) by nearest-rank on the sorted samples;
  /// 0 when empty.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }
  double max() const { return Percentile(1.0); }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace dsps::common

#endif  // DSPS_COMMON_STATS_H_
