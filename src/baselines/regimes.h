#ifndef DSPS_BASELINES_REGIMES_H_
#define DSPS_BASELINES_REGIMES_H_

#include <string>
#include <vector>

#include "system/system.h"
#include "workload/query_gen.h"

namespace dsps::baselines {

/// The four occupied cells of the paper's Table 1 (degree-of-cooperation
/// matrix): {stream transfer: non-cooperated | cooperated} x
/// {query processing: isolated | query-level sharing | operator-level}.
enum class Regime {
  /// Non-cooperated transfer + isolated processing ("all single-site
  /// engines"): sources feed every entity directly, queries stick to
  /// whichever entity their client uses.
  kIsolatedDirect,
  /// Non-cooperated transfer + query-level load sharing ([9,11,6]-style
  /// allocation without cooperative dissemination).
  kQueryLevelDirect,
  /// Cooperated transfer + query-level sharing — THIS PAPER (Sections 3).
  kQueryLevelTree,
  /// Cooperated (trivially: one logical cluster) + operator-level sharing
  /// (Flux/Borealis/Medusa-style): all processors behave as one tightly
  /// coupled engine; operators of a query may land on any processor
  /// anywhere, paying WAN hops between sites. Requires homogeneous
  /// engines — exactly the coupling cost Table 1 calls out.
  kOperatorLevelFused,
};

const char* RegimeName(Regime regime);

/// Workload knobs shared by all regimes of one comparison.
struct RegimeWorkload {
  int num_entities = 8;
  int processors_per_entity = 4;
  int num_streams = 4;
  int num_queries = 64;
  /// Simulated seconds of stream traffic.
  double duration_s = 5.0;
  workload::QueryGen::Config query_config;
  workload::StockTickerGen::Config ticker_config;
  uint64_t seed = 1;
};

/// One row of the regenerated Table 1.
struct RegimeResult {
  Regime regime = Regime::kIsolatedDirect;
  /// Inter-site bytes (WAN) — the communication cost of the regime.
  int64_t wan_bytes = 0;
  /// Bytes leaving the stream sources (source scalability).
  int64_t source_egress_bytes = 0;
  int max_source_fanout = 0;
  /// Load imbalance across sites (max/mean committed load).
  double load_imbalance = 1.0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  int64_t results = 0;
};

/// Runs one regime on the given workload and reports its row.
RegimeResult RunRegime(Regime regime, const RegimeWorkload& workload);

/// Runs all four regimes with identical workloads (same seed).
std::vector<RegimeResult> RunAllRegimes(const RegimeWorkload& workload);

}  // namespace dsps::baselines

#endif  // DSPS_BASELINES_REGIMES_H_
