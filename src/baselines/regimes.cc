#include "baselines/regimes.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/stats.h"
#include "dissemination/disseminator.h"
#include "entity/entity.h"
#include "placement/placement.h"
#include "sim/topology.h"
#include "workload/stream_gen.h"

namespace dsps::baselines {

const char* RegimeName(Regime regime) {
  switch (regime) {
    case Regime::kIsolatedDirect:
      return "isolated+direct";
    case Regime::kQueryLevelDirect:
      return "query-level+direct";
    case Regime::kQueryLevelTree:
      return "query-level+tree";
    case Regime::kOperatorLevelFused:
      return "operator-level+fused";
  }
  return "?";
}

namespace {

/// Regimes 1-3 differ only in System configuration.
RegimeResult RunSystemRegime(Regime regime, const RegimeWorkload& wl) {
  system::System::Config cfg;
  cfg.topology.num_entities = wl.num_entities;
  cfg.topology.processors_per_entity = wl.processors_per_entity;
  cfg.topology.num_sources = wl.num_streams;
  cfg.seed = wl.seed;
  switch (regime) {
    case Regime::kIsolatedDirect:
      cfg.allocation = system::AllocationMode::kIsolatedZipf;
      cfg.dissemination.tree.policy = dissemination::TreePolicy::kSourceDirect;
      break;
    case Regime::kQueryLevelDirect:
      cfg.allocation = system::AllocationMode::kCoordinatorTree;
      cfg.dissemination.tree.policy = dissemination::TreePolicy::kSourceDirect;
      break;
    case Regime::kQueryLevelTree:
      cfg.allocation = system::AllocationMode::kCoordinatorTree;
      cfg.dissemination.tree.policy =
          dissemination::TreePolicy::kClosestParent;
      break;
    default:
      DSPS_CHECK(false);
  }
  system::System sys(cfg);

  common::Rng rng(wl.seed);
  interest::StreamCatalog scratch_catalog;
  auto gens = workload::MakeTickerStreams(wl.num_streams, wl.ticker_config,
                                          &scratch_catalog, &rng);
  sys.AddStreams(std::move(gens));

  workload::QueryGen qgen(wl.query_config, &sys.catalog(),
                          common::Rng(wl.seed + 17));
  auto queries = qgen.Batch(wl.num_queries);
  for (const engine::Query& q : queries) {
    common::Status s = sys.SubmitQuery(q);
    DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  sys.GenerateTraffic(wl.duration_s);
  sys.RunUntil(wl.duration_s + 1.0);

  system::SystemMetrics m = sys.Collect();
  RegimeResult r;
  r.regime = regime;
  r.wan_bytes = m.wan_bytes;
  r.source_egress_bytes = m.source_egress_bytes;
  r.max_source_fanout = m.max_source_fanout;
  r.load_imbalance = m.entity_load_imbalance;
  r.latency_p50 = m.latency.p50();
  r.latency_p99 = m.latency.p99();
  r.results = m.results;
  return r;
}

/// Regime 4: every processor of every site fused into one tightly coupled
/// cluster (homogeneous engines required); operators land anywhere, LAN or
/// not. Built from components directly because it deliberately violates
/// the two-layer structure.
RegimeResult RunFusedRegime(const RegimeWorkload& wl) {
  sim::Simulator simulator;
  sim::Network network(&simulator);
  sim::TopologyConfig topo_cfg;
  topo_cfg.num_entities = wl.num_entities;
  topo_cfg.processors_per_entity = wl.processors_per_entity;
  topo_cfg.num_sources = wl.num_streams;
  common::Rng rng(wl.seed);
  common::Rng topo_rng = rng.Fork(1);
  sim::Topology topo = sim::BuildTopology(&network, topo_cfg, &topo_rng);

  // One mega-entity spanning every processor node of every site.
  std::vector<common::SimNodeId> all_nodes;
  std::map<common::SimNodeId, int> site_of;
  for (const sim::EntitySite& site : topo.entities) {
    for (common::SimNodeId n : site.processors) {
      all_nodes.push_back(n);
      site_of[n] = site.entity;
    }
  }
  placement::LoadOnlyPlacement policy;  // pure balancing, Flux-style
  entity::Entity::Config ecfg;
  ecfg.distribution_limit = static_cast<int>(all_nodes.size());
  entity::Entity fused(0, &network, all_nodes,
                       [] {
                         return std::unique_ptr<engine::ExecutionEngine>(
                             new engine::BasicEngine());
                       },
                       &policy, ecfg);

  interest::StreamCatalog catalog;
  auto gens =
      workload::MakeTickerStreams(wl.num_streams, wl.ticker_config, &catalog,
                                  &rng);

  dissemination::Disseminator::Config dcfg;
  dcfg.tree.policy = dissemination::TreePolicy::kSourceDirect;
  dissemination::Disseminator dissem(&network, dcfg);
  for (const sim::SourceSite& src : topo.sources) {
    DSPS_CHECK(dissem.AddSource(src.stream, src.node).ok());
  }
  DSPS_CHECK(dissem.AddEntity(0, fused.gateway_node()).ok());
  dissem.SetDeliveryHandler(
      [&fused](common::EntityId, const engine::Tuple& tuple) {
        fused.OnStreamTuple(tuple);
      });
  for (common::SimNodeId node : all_nodes) {
    network.SetHandler(node, [&fused, &dissem](const sim::Message& msg) {
      if (fused.HandleMessage(msg)) return;
      dissem.HandleMessage(msg);
    });
  }

  common::Histogram latency;
  fused.SetResultHandler(
      [&latency](const entity::Entity::ResultRecord& rec,
                 const engine::Tuple&) { latency.Add(rec.latency); });

  workload::QueryGen qgen(wl.query_config, &catalog, common::Rng(wl.seed + 17));
  auto queries = qgen.Batch(wl.num_queries);
  interest::InterestSet all_interest;
  for (const engine::Query& q : queries) {
    double tps = 1.0;
    for (common::StreamId s : q.interest.streams()) {
      const interest::StreamStats& stats = catalog.stats(s);
      tps += stats.tuples_per_s *
             interest::CoverageFraction(q.interest, s, stats.domain);
    }
    DSPS_CHECK(fused.InstallQuery(q, tps).ok());
    all_interest.MergeFrom(q.interest);
  }
  all_interest.Simplify();
  for (common::StreamId s : all_interest.streams()) {
    DSPS_CHECK(
        dissem.SetEntityInterest(0, s, *all_interest.boxes_for(s)).ok());
  }

  // Traffic.
  struct EmitState {
    std::vector<std::unique_ptr<workload::StreamGen>> gens;
  };
  auto state = std::make_shared<EmitState>();
  state->gens = std::move(gens);
  std::function<void(size_t, double)> schedule = [&](size_t i, double end) {
    double rate = catalog.stats(state->gens[i]->stream()).tuples_per_s;
    double t = simulator.now() + rng.Exponential(rate);
    if (t > end) return;
    simulator.ScheduleAt(t, [&, i, end]() {
      engine::Tuple tuple = state->gens[i]->Next(simulator.now());
      DSPS_CHECK(dissem.Publish(tuple).ok());
      schedule(i, end);
    });
  };
  for (size_t i = 0; i < state->gens.size(); ++i) {
    schedule(i, wl.duration_s);
  }
  simulator.RunUntil(wl.duration_s + 1.0);

  RegimeResult r;
  r.regime = Regime::kOperatorLevelFused;
  // Cross-site bytes are WAN (the cost of fusing processors across sites).
  for (const sim::Network::LinkRecord& link : network.AllLinkStats()) {
    auto a = site_of.find(link.from);
    auto b = site_of.find(link.to);
    bool lan = a != site_of.end() && b != site_of.end() &&
               a->second == b->second;
    if (!lan) r.wan_bytes += link.stats.bytes;
  }
  for (const sim::SourceSite& src : topo.sources) {
    r.source_egress_bytes += network.egress_bytes(src.node);
    const dissemination::DisseminationTree* tree = dissem.tree(src.stream);
    if (tree != nullptr) {
      r.max_source_fanout = std::max(r.max_source_fanout,
                                     tree->source_fanout());
    }
  }
  // Per-site load imbalance: committed load grouped by original site.
  std::map<int, double> site_load;
  for (int p = 0; p < fused.num_processors(); ++p) {
    entity::Processor* proc = fused.processor(p);
    site_load[site_of.at(proc->node())] += proc->committed_load();
  }
  double total = 0.0, max_load = 0.0;
  for (const auto& [site, load] : site_load) {
    total += load;
    max_load = std::max(max_load, load);
  }
  double mean = total / std::max<size_t>(1, site_load.size());
  r.load_imbalance = mean > 0 ? max_load / mean : 1.0;
  r.latency_p50 = latency.p50();
  r.latency_p99 = latency.p99();
  r.results = static_cast<int64_t>(latency.count());
  return r;
}

}  // namespace

RegimeResult RunRegime(Regime regime, const RegimeWorkload& workload) {
  if (regime == Regime::kOperatorLevelFused) return RunFusedRegime(workload);
  return RunSystemRegime(regime, workload);
}

std::vector<RegimeResult> RunAllRegimes(const RegimeWorkload& workload) {
  return {RunRegime(Regime::kIsolatedDirect, workload),
          RunRegime(Regime::kQueryLevelDirect, workload),
          RunRegime(Regime::kQueryLevelTree, workload),
          RunRegime(Regime::kOperatorLevelFused, workload)};
}

}  // namespace dsps::baselines
