#ifndef DSPS_ENTITY_PROCESSOR_H_
#define DSPS_ENTITY_PROCESSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/engine.h"
#include "sim/network.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace dsps::entity {

/// A simulated processor: one machine of an entity's cluster. It hosts an
/// ExecutionEngine with the fragments placed on it and charges simulated
/// CPU time for every tuple, so queueing delay (the "time waiting for
/// processing" in the paper's delay decomposition) emerges naturally from
/// load.
class Processor {
 public:
  /// A boundary output together with the simulated time processing of its
  /// input finished (delay accounting).
  struct Emission {
    engine::TaggedOutput output;
    double completion_time = 0.0;
  };
  using EmissionHandler = std::function<void(const Emission&)>;

  /// `network` and `engine` define where and how this processor runs;
  /// `capacity` is CPU seconds available per second (1.0 = one core).
  Processor(common::ProcessorId id, sim::Network* network,
            common::SimNodeId node, std::unique_ptr<engine::ExecutionEngine> engine,
            double capacity = 1.0);

  common::ProcessorId id() const { return id_; }
  common::SimNodeId node() const { return node_; }
  double capacity() const { return capacity_; }
  engine::ExecutionEngine* engine() { return engine_.get(); }

  /// Installs / removes fragments on the hosted engine.
  common::Status InstallFragment(std::unique_ptr<engine::FragmentInstance> f);
  common::Result<std::unique_ptr<engine::FragmentInstance>> RemoveFragment(
      common::FragmentId id);

  /// Called for every boundary output, at its completion time.
  void SetEmissionHandler(EmissionHandler handler);

  /// Submits one tuple to (fragment, op, port). The work starts when the
  /// CPU frees up; outputs are emitted at the completion time.
  common::Status Submit(common::FragmentId fragment, common::OperatorId op,
                        int port, const engine::Tuple& tuple);

  /// Seconds of queued work ahead of a tuple submitted now.
  double backlog_seconds() const;

  /// Total CPU-seconds consumed so far.
  double busy_seconds() const { return busy_seconds_; }
  int64_t tuples_processed() const { return tuples_processed_; }

  /// Load committed via fragment installation bookkeeping (CPU s/s), used
  /// by placement decisions; maintained by the entity runtime.
  double committed_load() const { return committed_load_; }
  void AddCommittedLoad(double delta) { committed_load_ += delta; }

  /// Attaches telemetry (either pointer may be null; default off, zero
  /// cost). `labels` identify this processor (e.g. {entity, processor}).
  /// With metrics, every Submit updates a processor.tuples counter, a
  /// processor.queue_wait_s histogram, and processor.backlog_s /
  /// .utilization gauges. With a trace log, sampled tuples get queue_wait
  /// and execute spans, and outputs inherit the input's trace id.
  void SetTelemetry(telemetry::MetricsRegistry* metrics,
                    telemetry::TraceLog* trace,
                    const telemetry::Labels& labels);

 private:
  common::ProcessorId id_;
  sim::Network* network_;
  common::SimNodeId node_;
  std::unique_ptr<engine::ExecutionEngine> engine_;
  double capacity_;
  double busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
  double committed_load_ = 0.0;
  int64_t tuples_processed_ = 0;
  EmissionHandler emission_;
  telemetry::TraceLog* trace_ = nullptr;
  telemetry::Counter* tuples_counter_ = nullptr;
  telemetry::HistogramMetric* queue_wait_hist_ = nullptr;
  telemetry::Gauge* backlog_gauge_ = nullptr;
  telemetry::Gauge* utilization_gauge_ = nullptr;
};

}  // namespace dsps::entity

#endif  // DSPS_ENTITY_PROCESSOR_H_
