#include "entity/processor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dsps::entity {

Processor::Processor(common::ProcessorId id, sim::Network* network,
                     common::SimNodeId node,
                     std::unique_ptr<engine::ExecutionEngine> engine,
                     double capacity)
    : id_(id),
      network_(network),
      node_(node),
      engine_(std::move(engine)),
      capacity_(capacity) {
  DSPS_CHECK(network != nullptr);
  DSPS_CHECK(engine_ != nullptr);
  DSPS_CHECK(capacity > 0);
}

common::Status Processor::InstallFragment(
    std::unique_ptr<engine::FragmentInstance> f) {
  return engine_->Install(std::move(f));
}

common::Result<std::unique_ptr<engine::FragmentInstance>>
Processor::RemoveFragment(common::FragmentId id) {
  std::vector<engine::TaggedOutput> flushed;
  auto result = engine_->Remove(id, &flushed);
  if (!flushed.empty() && emission_) {
    double completion = network_->simulator()->now();
    for (auto& out : flushed) {
      emission_(Emission{std::move(out), completion});
    }
  }
  return result;
}

void Processor::SetEmissionHandler(EmissionHandler handler) {
  emission_ = std::move(handler);
}

common::Status Processor::Submit(common::FragmentId fragment,
                                 common::OperatorId op, int port,
                                 const engine::Tuple& tuple) {
  std::vector<engine::TaggedOutput> outputs;
  DSPS_RETURN_IF_ERROR(engine_->Inject(fragment, op, port, tuple, &outputs));
  double cost = engine_->DrainCpuCost() / capacity_;
  sim::Simulator* sim = network_->simulator();
  double start = std::max(sim->now(), busy_until_);
  busy_until_ = start + cost;
  busy_seconds_ += cost;
  tuples_processed_ += 1;
  double completion = busy_until_;
  if (!outputs.empty() && emission_) {
    // Deliver outputs when the CPU work completes.
    auto shared =
        std::make_shared<std::vector<engine::TaggedOutput>>(std::move(outputs));
    sim->ScheduleAt(completion, [this, shared, completion]() {
      for (auto& out : *shared) {
        emission_(Emission{std::move(out), completion});
      }
    });
  }
  return common::Status::OK();
}

double Processor::backlog_seconds() const {
  double now = network_->simulator()->now();
  return std::max(0.0, busy_until_ - now);
}

}  // namespace dsps::entity
