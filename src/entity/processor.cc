#include "entity/processor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dsps::entity {

Processor::Processor(common::ProcessorId id, sim::Network* network,
                     common::SimNodeId node,
                     std::unique_ptr<engine::ExecutionEngine> engine,
                     double capacity)
    : id_(id),
      network_(network),
      node_(node),
      engine_(std::move(engine)),
      capacity_(capacity) {
  DSPS_CHECK(network != nullptr);
  DSPS_CHECK(engine_ != nullptr);
  DSPS_CHECK(capacity > 0);
}

common::Status Processor::InstallFragment(
    std::unique_ptr<engine::FragmentInstance> f) {
  return engine_->Install(std::move(f));
}

common::Result<std::unique_ptr<engine::FragmentInstance>>
Processor::RemoveFragment(common::FragmentId id) {
  std::vector<engine::TaggedOutput> flushed;
  auto result = engine_->Remove(id, &flushed);
  if (!flushed.empty() && emission_) {
    double completion = network_->simulator()->now();
    for (auto& out : flushed) {
      emission_(Emission{std::move(out), completion});
    }
  }
  return result;
}

void Processor::SetEmissionHandler(EmissionHandler handler) {
  emission_ = std::move(handler);
}

common::Status Processor::Submit(common::FragmentId fragment,
                                 common::OperatorId op, int port,
                                 const engine::Tuple& tuple) {
  std::vector<engine::TaggedOutput> outputs;
  DSPS_RETURN_IF_ERROR(engine_->Inject(fragment, op, port, tuple, &outputs));
  double cost = engine_->DrainCpuCost() / capacity_;
  sim::Simulator* sim = network_->simulator();
  double start = std::max(sim->now(), busy_until_);
  busy_until_ = start + cost;
  busy_seconds_ += cost;
  tuples_processed_ += 1;
  double completion = busy_until_;
  if (tuple.trace_id != 0) {
    // Downstream hops and the final result keep the sampled tuple's trace.
    for (engine::TaggedOutput& out : outputs) {
      out.output.tuple.trace_id = tuple.trace_id;
    }
    if (trace_ != nullptr) {
      trace_->Record(tuple.trace_id, telemetry::Stage::kQueueWait, sim->now(),
                     start);
      trace_->Record(tuple.trace_id, telemetry::Stage::kExecute, start,
                     completion);
    }
  }
  if (tuples_counter_ != nullptr) {
    tuples_counter_->Increment();
    queue_wait_hist_->Observe(start - sim->now());
    backlog_gauge_->Set(busy_until_ - sim->now());
    if (sim->now() > 0) utilization_gauge_->Set(busy_seconds_ / sim->now());
  }
  if (!outputs.empty() && emission_) {
    // Deliver outputs when the CPU work completes.
    auto shared =
        std::make_shared<std::vector<engine::TaggedOutput>>(std::move(outputs));
    sim->ScheduleAt(completion, [this, shared, completion]() {
      for (auto& out : *shared) {
        emission_(Emission{std::move(out), completion});
      }
    });
  }
  return common::Status::OK();
}

void Processor::SetTelemetry(telemetry::MetricsRegistry* metrics,
                             telemetry::TraceLog* trace,
                             const telemetry::Labels& labels) {
  trace_ = trace;
  if (metrics == nullptr) {
    tuples_counter_ = nullptr;
    queue_wait_hist_ = nullptr;
    backlog_gauge_ = nullptr;
    utilization_gauge_ = nullptr;
    return;
  }
  tuples_counter_ = metrics->counter("processor.tuples", labels);
  queue_wait_hist_ = metrics->histogram("processor.queue_wait_s", labels);
  backlog_gauge_ = metrics->gauge("processor.backlog_s", labels);
  utilization_gauge_ = metrics->gauge("processor.utilization", labels);
}

double Processor::backlog_seconds() const {
  double now = network_->simulator()->now();
  return std::max(0.0, busy_until_ - now);
}

}  // namespace dsps::entity
