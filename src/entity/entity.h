#ifndef DSPS_ENTITY_ENTITY_H_
#define DSPS_ENTITY_ENTITY_H_

#include <functional>
#include <map>
#include <set>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/status.h"
#include "engine/engine.h"
#include "interest/box_index.h"
#include "interest/measure.h"
#include "engine/plan.h"
#include "entity/processor.h"
#include "placement/placement.h"
#include "placement/rebalancer.h"
#include "sim/network.h"
#include "telemetry/sketch.h"

namespace dsps::entity {

/// Message types of the intra-entity runtime.
inline constexpr int kMsgStreamTuple = 201;    // gateway -> stream delegate
inline constexpr int kMsgFragmentTuple = 202;  // pipeline hop between procs
inline constexpr int kMsgMigration = 203;      // fragment state transfer

/// Payload of kMsgStreamTuple.
struct StreamTupleEnvelope {
  std::shared_ptr<const engine::Tuple> tuple;
};

/// Payload of kMsgFragmentTuple.
struct FragmentTupleEnvelope {
  common::FragmentId fragment = -1;
  common::OperatorId op = -1;
  int port = 0;
  std::shared_ptr<const engine::Tuple> tuple;
};

/// One business entity (Section 4): a cluster of processors on a fast LAN
/// under central administration. Implements the paper's intra-entity
/// machinery:
///  * stream delegation — each incoming stream is owned by one delegate
///    processor that routes it to the others (Figure 3);
///  * dynamic operator placement — queries are cut into fragments
///    (bounded by the distribution limit) and placed by a pluggable
///    PlacementPolicy (Section 4.1);
///  * Performance Ratio accounting — every query result records
///    PR = delay / inherent evaluation time.
/// The runtime is platform independent: processors host any
/// ExecutionEngine produced by the factory.
class Entity {
 public:
  using EngineFactory =
      std::function<std::unique_ptr<engine::ExecutionEngine>()>;

  struct Config {
    /// Max processors one query may touch (Section 4.1's heuristic 2).
    int distribution_limit = 2;
    /// CPU capacity per processor (CPU seconds per second).
    double processor_capacity = 1.0;
    /// Bytes per tuple used in placement traffic estimates.
    double bytes_per_tuple = 64.0;
    /// Baseline knob (Figure 3 ablation): route every stream through
    /// processor 0 instead of per-stream delegates.
    bool single_receiver = false;
    /// Fault domain (rack/site) this entity's processors share — set
    /// from TopologyConfig::num_fault_domains by the System so placement
    /// can straddle domains; the auditor cross-checks the placement
    /// map's domain view against this ground truth.
    int fault_domain = 0;
    /// When set, delegates use a per-stream BoxIndex over the queries'
    /// interests to fan tuples out only to queries whose filter can
    /// match — the delegate's hot loop goes from O(queries) to O(cell).
    /// Queries without interest boxes on a stream still get everything.
    const interest::StreamCatalog* catalog = nullptr;
    /// Optional telemetry (null = disabled, zero overhead). Processors
    /// export per-processor metrics labeled {entity, processor}; sampled
    /// tuples keep their trace across intra-entity hops; fragment
    /// migrations count into entity.fragment_migrations.
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::TraceLog* trace = nullptr;
    /// Bounded PR statistics: per-result PR goes into a mergeable
    /// quantile sketch built from `stats_sketch` instead of the exact
    /// sample-storing pr_histogram() — O(buckets) memory regardless of
    /// result count (metro scale). pr_count()/pr_p95() read whichever
    /// backing is active.
    bool bounded_stats = false;
    telemetry::Sketch::Config stats_sketch;
  };

  /// `network`, `policy` must outlive the entity. One processor is created
  /// per node in `processor_nodes`; the first node doubles as the entity's
  /// gateway (wrapper) for inter-entity traffic.
  Entity(common::EntityId id, sim::Network* network,
         std::vector<common::SimNodeId> processor_nodes,
         EngineFactory engine_factory, placement::PlacementPolicy* policy,
         const Config& config);
  // Handlers capture `this`; the object must stay put.
  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  common::EntityId id() const { return id_; }
  int fault_domain() const { return config_.fault_domain; }
  common::SimNodeId gateway_node() const;
  int num_processors() const { return static_cast<int>(processors_.size()); }
  Processor* processor(common::ProcessorId id);

  /// Installs this entity's network handlers on its processor nodes
  /// (standalone use; a full-system runtime dispatches HandleMessage from
  /// its own handlers instead).
  void InstallHandlers();

  /// Dispatches an intra-entity message addressed to one of this entity's
  /// processor nodes. Returns true if consumed.
  bool HandleMessage(const sim::Message& msg);

  /// The delegate processor of `stream`, assigned round-robin on first
  /// use (Figure 3's delegation scheme).
  common::ProcessorId DelegateFor(common::StreamId stream);

  /// Admits a continuous query: fragments it, places the fragments, and
  /// installs them on the processors. `expected_input_tps` is the
  /// estimated per-stream arrival rate used for load/traffic estimates.
  common::Status InstallQuery(const engine::Query& query,
                              double expected_input_tps);

  /// Removes a query and uninstalls its fragments.
  common::Status RemoveQuery(common::QueryId query);

  size_t query_count() const { return queries_.size(); }

  /// Installed query ids, ascending (for conservation audits: the
  /// system-level home map and the entity-level installs must agree).
  std::vector<common::QueryId> InstalledQueries() const {
    std::vector<common::QueryId> out;
    out.reserve(queries_.size());
    for (const auto& [id, state] : queries_) out.push_back(id);
    return out;
  }

  /// Entry point: a stream tuple reached this entity (delivered by the
  /// dissemination layer at the gateway, at the current simulated time).
  void OnStreamTuple(const engine::Tuple& tuple);

  /// A produced query result with its delay accounting.
  struct ResultRecord {
    common::QueryId query = common::kInvalidQuery;
    /// completion time - result timestamp (the paper's d_k).
    double latency = 0.0;
    /// latency / p_k (the paper's Performance Ratio).
    double pr = 0.0;
  };
  using ResultHandler =
      std::function<void(const ResultRecord&, const engine::Tuple&)>;
  void SetResultHandler(ResultHandler handler);

  int64_t results_count() const { return results_; }
  /// Distribution of Performance Ratios over all results so far (empty
  /// in bounded_stats mode — see pr_sketch()).
  const common::Histogram& pr_histogram() const { return pr_hist_; }
  /// Sketch-backed PR distribution (bounded_stats mode).
  const telemetry::Sketch& pr_sketch() const { return pr_sketch_; }
  /// PR sample count / p95 regardless of the stats backing.
  int64_t pr_count() const {
    return config_.bounded_stats ? pr_sketch_.count()
                                 : static_cast<int64_t>(pr_hist_.count());
  }
  double pr_p95() const {
    return config_.bounded_stats ? pr_sketch_.p95() : pr_hist_.p95();
  }
  /// Max/mean processor utilization (busy seconds / elapsed).
  double MaxUtilization() const;
  double MeanUtilization() const;

  /// Where a fragment lives (NotFound if unknown).
  common::Result<common::ProcessorId> FragmentLocation(
      common::FragmentId fragment) const;

  /// Migrates a live fragment (with its window state) to another
  /// processor. Buffered work is flushed first; the state transfer is
  /// charged to the LAN as a kMsgMigration message; all routing tables
  /// are updated. Dynamic placement (Section 4.1) is built on this.
  common::Status MoveFragment(common::FragmentId fragment,
                              common::ProcessorId to);

  /// One round of dynamic re-placement: plans migrations with
  /// `rebalancer` from the current committed loads and applies them.
  /// Returns the number of fragments moved.
  int Rebalance(const placement::Rebalancer& rebalancer);

  /// Load (CPU s/s) this entity believes it has committed.
  double TotalCommittedLoad() const;

  /// Accumulates the per-stream tuple-matching indexes' statistics into
  /// `stats` (strategy mix, memory, spline health).
  void CollectIndexStats(interest::IndexStats* stats) const;

  /// Elastic capacity: adds one processor hosted on `node` (a member of
  /// this entity's LAN), wired like the constructor-built ones (engine
  /// from the factory, emission handler, telemetry labels). New fragments
  /// may land on it immediately; the caller owns routing the node's
  /// messages to HandleMessage.
  common::ProcessorId AddProcessor(common::SimNodeId node);

  /// Elastic capacity: drains and retires the last processor. Its
  /// fragments migrate to the least-loaded remaining processors via the
  /// MoveFragment machinery and its stream delegations are reassigned;
  /// the freed sim node is returned so the caller can retire it. The
  /// Processor object itself is kept (unrouted) until the entity dies —
  /// in-flight completion callbacks hold a pointer to it. Fails if only
  /// the gateway remains.
  common::Result<common::SimNodeId> RemoveLastProcessor();

 private:
  struct RouteTarget {
    common::FragmentId fragment = -1;
    common::OperatorId op = -1;
    int port = 0;
    common::ProcessorId proc = common::kInvalidProcessor;
  };
  struct QueryState {
    engine::Query query;
    double p_k = 1e-9;
    std::vector<placement::FragmentSpec> fragments;
    placement::Placement placement;
    /// stream -> fragment entry points.
    std::map<common::StreamId, std::vector<RouteTarget>> stream_entries;
    /// (fragment, producing op) -> downstream targets.
    std::map<std::pair<common::FragmentId, common::OperatorId>,
             std::vector<RouteTarget>>
        routes;
  };

  void OnEmission(common::ProcessorId proc, const Processor::Emission& em);
  void SendFragmentTuple(common::SimNodeId from_node, const RouteTarget& to,
                         std::shared_ptr<const engine::Tuple> tuple);
  int ProcIndexOf(common::ProcessorId id) const;

  common::EntityId id_;
  sim::Network* network_;
  Config config_;
  EngineFactory engine_factory_;
  placement::PlacementPolicy* policy_;
  std::vector<std::unique_ptr<Processor>> processors_;
  /// Processors removed by RemoveLastProcessor: kept alive (their pending
  /// simulator callbacks capture the raw pointer) but never routed to.
  std::vector<std::unique_ptr<Processor>> retired_;
  std::map<common::SimNodeId, int> proc_by_node_;
  std::map<common::StreamId, common::ProcessorId> delegates_;
  int next_delegate_ = 0;
  std::map<common::QueryId, QueryState> queries_;
  std::map<common::FragmentId, common::QueryId> query_of_fragment_;
  /// Delegate-side interest indexes (only when config_.catalog is set).
  std::map<common::StreamId, std::unique_ptr<interest::BoxIndex>> stream_index_;
  /// Queries bound to a stream without index coverage: always delivered.
  std::map<common::StreamId, std::set<common::QueryId>> always_deliver_;
  mutable std::vector<double> point_scratch_;
  mutable std::vector<int64_t> match_scratch_;
  common::FragmentId next_fragment_id_ = 1;
  ResultHandler result_handler_;
  common::Histogram pr_hist_;
  telemetry::Sketch pr_sketch_;
  int64_t results_ = 0;
  double start_time_ = 0.0;
  telemetry::Counter* migrations_counter_ = nullptr;
};

}  // namespace dsps::entity

#endif  // DSPS_ENTITY_ENTITY_H_
