#include "entity/entity.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "placement/fragmenter.h"

namespace dsps::entity {

Entity::Entity(common::EntityId id, sim::Network* network,
               std::vector<common::SimNodeId> processor_nodes,
               EngineFactory engine_factory, placement::PlacementPolicy* policy,
               const Config& config)
    : id_(id),
      network_(network),
      config_(config),
      engine_factory_(std::move(engine_factory)),
      policy_(policy),
      pr_sketch_(config.stats_sketch) {
  DSPS_CHECK(network != nullptr);
  DSPS_CHECK(policy != nullptr);
  DSPS_CHECK(!processor_nodes.empty());
  DSPS_CHECK(engine_factory_ != nullptr);
  start_time_ = network_->simulator()->now();
  for (size_t i = 0; i < processor_nodes.size(); ++i) {
    auto proc = std::make_unique<Processor>(
        static_cast<common::ProcessorId>(i), network_, processor_nodes[i],
        engine_factory_(), config.processor_capacity);
    common::ProcessorId pid = proc->id();
    proc->SetEmissionHandler([this, pid](const Processor::Emission& em) {
      OnEmission(pid, em);
    });
    if (config.metrics != nullptr || config.trace != nullptr) {
      proc->SetTelemetry(
          config.metrics, config.trace,
          telemetry::MakeLabels({{"entity", std::to_string(id)},
                                 {"processor", std::to_string(i)}}));
    }
    proc_by_node_[processor_nodes[i]] = static_cast<int>(i);
    processors_.push_back(std::move(proc));
  }
  if (config.metrics != nullptr) {
    migrations_counter_ = config.metrics->counter(
        "entity.fragment_migrations",
        telemetry::MakeLabels({{"entity", std::to_string(id)}}));
  }
}

common::SimNodeId Entity::gateway_node() const {
  return processors_.front()->node();
}

Processor* Entity::processor(common::ProcessorId id) {
  int idx = ProcIndexOf(id);
  return idx < 0 ? nullptr : processors_[idx].get();
}

int Entity::ProcIndexOf(common::ProcessorId id) const {
  if (id < 0 || static_cast<size_t>(id) >= processors_.size()) return -1;
  return static_cast<int>(id);
}

void Entity::InstallHandlers() {
  for (const auto& proc : processors_) {
    network_->SetHandler(proc->node(), [this](const sim::Message& msg) {
      HandleMessage(msg);
    });
  }
}

common::ProcessorId Entity::DelegateFor(common::StreamId stream) {
  if (config_.single_receiver) return processors_.front()->id();
  auto it = delegates_.find(stream);
  if (it != delegates_.end()) return it->second;
  common::ProcessorId pid =
      processors_[next_delegate_ % processors_.size()]->id();
  next_delegate_ = (next_delegate_ + 1) % static_cast<int>(processors_.size());
  delegates_[stream] = pid;
  return pid;
}

common::Status Entity::InstallQuery(const engine::Query& query,
                                    double expected_input_tps) {
  if (queries_.count(query.id) > 0) {
    return common::Status::AlreadyExists("query already installed");
  }
  if (query.plan == nullptr) {
    return common::Status::InvalidArgument("query has no plan");
  }
  DSPS_RETURN_IF_ERROR(query.plan->Validate());

  QueryState state;
  state.query = query;
  state.p_k = std::max(1e-12, query.plan->EstimateInherentCostPerTuple());
  state.fragments = placement::FragmentQuery(
      *query.plan, query.id, config_.distribution_limit, expected_input_tps,
      config_.bytes_per_tuple, &next_fragment_id_);

  // Build the placement problem: fragments holding a stream-bound operator
  // are anchored at that stream's delegate.
  placement::PlacementInput input;
  for (const auto& proc : processors_) {
    input.processors.push_back(placement::ProcessorSpec{
        proc->id(), proc->capacity(), proc->committed_load()});
  }
  input.fragments = state.fragments;
  input.distribution_limit = config_.distribution_limit;
  for (const placement::FragmentSpec& frag : state.fragments) {
    std::set<common::OperatorId> members(frag.ops.begin(), frag.ops.end());
    for (const engine::StreamBinding& b : query.plan->bindings()) {
      if (members.count(b.to) > 0) {
        input.input_home[frag.id] = DelegateFor(b.stream);
        break;
      }
    }
  }
  auto placed = policy_->Place(input);
  if (!placed.ok()) return placed.status();
  state.placement = std::move(placed).value();

  // Instantiate and install the fragments.
  std::map<common::OperatorId, RouteTarget> op_location;
  for (const placement::FragmentSpec& frag : state.fragments) {
    common::ProcessorId pid = state.placement.at(frag.id);
    int idx = ProcIndexOf(pid);
    DSPS_CHECK(idx >= 0);
    auto instance =
        engine::FragmentInstance::Create(*query.plan, query.id, frag.id,
                                         frag.ops);
    if (!instance.ok()) return instance.status();
    DSPS_RETURN_IF_ERROR(
        processors_[idx]->InstallFragment(std::move(instance).value()));
    processors_[idx]->AddCommittedLoad(frag.cpu_load);
    for (common::OperatorId op : frag.ops) {
      op_location[op] = RouteTarget{frag.id, op, 0, pid};
    }
    query_of_fragment_[frag.id] = query.id;
  }

  // Stream entry points and inter-fragment routes.
  for (const engine::StreamBinding& b : query.plan->bindings()) {
    RouteTarget target = op_location.at(b.to);
    target.port = b.to_port;
    state.stream_entries[b.stream].push_back(target);
  }
  for (const engine::PlanEdge& e : query.plan->edges()) {
    const RouteTarget& from = op_location.at(e.from);
    const RouteTarget& to_loc = op_location.at(e.to);
    if (from.fragment == to_loc.fragment) continue;  // internal edge
    RouteTarget target = to_loc;
    target.port = e.to_port;
    state.routes[{from.fragment, e.from}].push_back(target);
  }
  // Delegate-side interest index (when the catalog is known): a stream
  // tuple is routed to this query only if it can pass the query's filter.
  for (const auto& [stream, targets] : state.stream_entries) {
    (void)targets;
    const std::vector<interest::Box>* boxes =
        query.interest.boxes_for(stream);
    if (config_.catalog == nullptr || boxes == nullptr || boxes->empty() ||
        !config_.catalog->Contains(stream)) {
      always_deliver_[stream].insert(query.id);
      continue;
    }
    auto [it, inserted] = stream_index_.try_emplace(stream, nullptr);
    if (inserted) {
      it->second = std::make_unique<interest::BoxIndex>(
          config_.catalog->stats(stream).domain);
    }
    for (const interest::Box& b : *boxes) {
      it->second->Insert(query.id, b);
    }
  }
  queries_[query.id] = std::move(state);
  return common::Status::OK();
}

common::Status Entity::RemoveQuery(common::QueryId query) {
  auto it = queries_.find(query);
  if (it == queries_.end()) return common::Status::NotFound("unknown query");
  for (const placement::FragmentSpec& frag : it->second.fragments) {
    common::ProcessorId pid = it->second.placement.at(frag.id);
    int idx = ProcIndexOf(pid);
    DSPS_CHECK(idx >= 0);
    auto removed = processors_[idx]->RemoveFragment(frag.id);
    if (removed.ok()) {
      processors_[idx]->AddCommittedLoad(-frag.cpu_load);
    }
    query_of_fragment_.erase(frag.id);
  }
  for (const auto& [stream, targets] : it->second.stream_entries) {
    (void)targets;
    auto idx = stream_index_.find(stream);
    if (idx != stream_index_.end()) idx->second->Remove(query);
    auto always = always_deliver_.find(stream);
    if (always != always_deliver_.end()) always->second.erase(query);
  }
  queries_.erase(it);
  return common::Status::OK();
}

void Entity::OnStreamTuple(const engine::Tuple& tuple) {
  // Gateway -> delegate hop (Figure 3: the delegation processor routes
  // the stream inside the entity).
  common::ProcessorId delegate = DelegateFor(tuple.stream);
  int idx = ProcIndexOf(delegate);
  DSPS_CHECK(idx >= 0);
  StreamTupleEnvelope env;
  env.tuple = std::make_shared<const engine::Tuple>(tuple);
  sim::Message msg;
  msg.from = gateway_node();
  msg.to = processors_[idx]->node();
  msg.type = kMsgStreamTuple;
  msg.size_bytes = tuple.SizeBytes();
  msg.trace_id = tuple.trace_id;
  msg.payload = std::move(env);
  common::Status s = network_->Send(std::move(msg));
  DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
}

bool Entity::HandleMessage(const sim::Message& msg) {
  auto node_it = proc_by_node_.find(msg.to);
  if (node_it == proc_by_node_.end()) return false;
  Processor* proc = processors_[node_it->second].get();
  if (msg.type == kMsgStreamTuple) {
    const auto* env = std::any_cast<StreamTupleEnvelope>(&msg.payload);
    if (env == nullptr) return false;
    common::StreamId stream = env->tuple->stream;
    auto route_to_query = [&](QueryState& state) {
      auto entry_it = state.stream_entries.find(stream);
      if (entry_it == state.stream_entries.end()) return;
      for (const RouteTarget& target : entry_it->second) {
        if (target.proc == proc->id()) {
          common::Status s =
              proc->Submit(target.fragment, target.op, target.port,
                           *env->tuple);
          DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
        } else {
          SendFragmentTuple(proc->node(), target, env->tuple);
        }
      }
    };
    auto idx = stream_index_.find(stream);
    if (idx != stream_index_.end()) {
      // Indexed fan-out: only queries whose interest matches the tuple.
      point_scratch_.clear();
      for (const engine::Value& v : env->tuple->values) {
        point_scratch_.push_back(engine::AsDouble(v));
      }
      match_scratch_.clear();
      idx->second->Match(point_scratch_.data(), &match_scratch_);
      for (int64_t qid : match_scratch_) {
        auto q_it = queries_.find(qid);
        if (q_it != queries_.end()) route_to_query(q_it->second);
      }
      auto always = always_deliver_.find(stream);
      if (always != always_deliver_.end()) {
        for (common::QueryId qid : always->second) {
          auto q_it = queries_.find(qid);
          if (q_it != queries_.end()) route_to_query(q_it->second);
        }
      }
    } else {
      // Naive fan-out: every query bound to this stream.
      for (auto& [qid, state] : queries_) route_to_query(state);
    }
    return true;
  }
  if (msg.type == kMsgFragmentTuple) {
    const auto* env = std::any_cast<FragmentTupleEnvelope>(&msg.payload);
    if (env == nullptr) return false;
    common::Status s = proc->Submit(env->fragment, env->op, env->port,
                                    *env->tuple);
    // The fragment may have been removed in flight; drop silently then.
    (void)s;
    return true;
  }
  return false;
}

void Entity::SendFragmentTuple(common::SimNodeId from_node,
                               const RouteTarget& to,
                               std::shared_ptr<const engine::Tuple> tuple) {
  int idx = ProcIndexOf(to.proc);
  DSPS_CHECK(idx >= 0);
  FragmentTupleEnvelope env;
  env.fragment = to.fragment;
  env.op = to.op;
  env.port = to.port;
  env.tuple = std::move(tuple);
  sim::Message msg;
  msg.from = from_node;
  msg.to = processors_[idx]->node();
  msg.type = kMsgFragmentTuple;
  msg.size_bytes = env.tuple->SizeBytes();
  msg.trace_id = env.tuple->trace_id;
  msg.payload = std::move(env);
  common::Status s = network_->Send(std::move(msg));
  DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
}

void Entity::OnEmission(common::ProcessorId proc,
                        const Processor::Emission& em) {
  auto qid_it = query_of_fragment_.find(em.output.fragment);
  if (qid_it == query_of_fragment_.end()) return;  // removed in flight
  QueryState& state = queries_.at(qid_it->second);
  const engine::FragmentInstance::Output& out = em.output.output;
  if (out.is_result) {
    ResultRecord record;
    record.query = qid_it->second;
    record.latency = std::max(0.0, em.completion_time - out.tuple.timestamp);
    record.pr = record.latency / state.p_k;
    if (config_.bounded_stats) {
      pr_sketch_.Add(record.pr);
    } else {
      pr_hist_.Add(record.pr);
    }
    ++results_;
    if (result_handler_) result_handler_(record, out.tuple);
    return;
  }
  auto route_it = state.routes.find({em.output.fragment, out.from_op});
  if (route_it == state.routes.end()) return;
  int from_idx = ProcIndexOf(proc);
  DSPS_CHECK(from_idx >= 0);
  auto shared = std::make_shared<const engine::Tuple>(out.tuple);
  for (const RouteTarget& target : route_it->second) {
    if (target.proc == proc) {
      common::Status s = processors_[from_idx]->Submit(
          target.fragment, target.op, target.port, *shared);
      DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    } else {
      SendFragmentTuple(processors_[from_idx]->node(), target, shared);
    }
  }
}

void Entity::SetResultHandler(ResultHandler handler) {
  result_handler_ = std::move(handler);
}

double Entity::MaxUtilization() const {
  double elapsed =
      std::max(1e-9, network_->simulator()->now() - start_time_);
  double max_util = 0.0;
  for (const auto& proc : processors_) {
    max_util = std::max(max_util, proc->busy_seconds() / elapsed);
  }
  return max_util;
}

double Entity::MeanUtilization() const {
  double elapsed =
      std::max(1e-9, network_->simulator()->now() - start_time_);
  double sum = 0.0;
  for (const auto& proc : processors_) {
    sum += proc->busy_seconds() / elapsed;
  }
  return sum / processors_.size();
}

common::Result<common::ProcessorId> Entity::FragmentLocation(
    common::FragmentId fragment) const {
  auto qid_it = query_of_fragment_.find(fragment);
  if (qid_it == query_of_fragment_.end()) {
    return common::Status::NotFound("unknown fragment");
  }
  const QueryState& state = queries_.at(qid_it->second);
  return state.placement.at(fragment);
}

common::Status Entity::MoveFragment(common::FragmentId fragment,
                                    common::ProcessorId to) {
  auto qid_it = query_of_fragment_.find(fragment);
  if (qid_it == query_of_fragment_.end()) {
    return common::Status::NotFound("unknown fragment");
  }
  QueryState& state = queries_.at(qid_it->second);
  common::ProcessorId from = state.placement.at(fragment);
  if (from == to) return common::Status::OK();
  int from_idx = ProcIndexOf(from);
  int to_idx = ProcIndexOf(to);
  if (from_idx < 0 || to_idx < 0) {
    return common::Status::InvalidArgument("unknown processor");
  }
  // Pull the live instance (flushes buffered work on batching engines).
  auto removed = processors_[from_idx]->RemoveFragment(fragment);
  if (!removed.ok()) return removed.status();
  std::unique_ptr<engine::FragmentInstance> instance =
      std::move(removed).value();
  int64_t state_bytes = instance->StateBytes();
  DSPS_RETURN_IF_ERROR(
      processors_[to_idx]->InstallFragment(std::move(instance)));
  // Charge the state transfer to the LAN.
  sim::Message msg;
  msg.from = processors_[from_idx]->node();
  msg.to = processors_[to_idx]->node();
  msg.type = kMsgMigration;
  msg.size_bytes = state_bytes + 256;  // state + control overhead
  common::Status s = network_->Send(std::move(msg));
  DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  if (migrations_counter_ != nullptr) migrations_counter_->Increment();
  // Bookkeeping: committed loads, placement, and every routing table
  // entry that points at this fragment.
  double cpu_load = 0.0;
  for (const placement::FragmentSpec& frag : state.fragments) {
    if (frag.id == fragment) cpu_load = frag.cpu_load;
  }
  processors_[from_idx]->AddCommittedLoad(-cpu_load);
  processors_[to_idx]->AddCommittedLoad(cpu_load);
  state.placement[fragment] = to;
  for (auto& [stream, targets] : state.stream_entries) {
    for (RouteTarget& t : targets) {
      if (t.fragment == fragment) t.proc = to;
    }
  }
  for (auto& [key, targets] : state.routes) {
    for (RouteTarget& t : targets) {
      if (t.fragment == fragment) t.proc = to;
    }
  }
  return common::Status::OK();
}

int Entity::Rebalance(const placement::Rebalancer& rebalancer) {
  placement::PlacementInput input;
  for (const auto& proc : processors_) {
    // base_load excludes the fragments being re-planned.
    input.processors.push_back(
        placement::ProcessorSpec{proc->id(), proc->capacity(), 0.0});
  }
  input.distribution_limit = config_.distribution_limit;
  placement::Placement current;
  for (const auto& [qid, state] : queries_) {
    for (const placement::FragmentSpec& frag : state.fragments) {
      input.fragments.push_back(frag);
      current[frag.id] = state.placement.at(frag.id);
    }
  }
  if (input.fragments.empty()) return 0;
  int applied = 0;
  for (const placement::MoveDecision& move :
       rebalancer.Plan(input, current)) {
    if (MoveFragment(move.fragment, move.to).ok()) ++applied;
  }
  return applied;
}

double Entity::TotalCommittedLoad() const {
  double total = 0.0;
  for (const auto& proc : processors_) total += proc->committed_load();
  return total;
}

void Entity::CollectIndexStats(interest::IndexStats* stats) const {
  for (const auto& [stream, index] : stream_index_) {
    if (index != nullptr) index->AddStatsTo(stats);
  }
}

common::ProcessorId Entity::AddProcessor(common::SimNodeId node) {
  auto pid = static_cast<common::ProcessorId>(processors_.size());
  auto proc = std::make_unique<Processor>(pid, network_, node,
                                          engine_factory_(),
                                          config_.processor_capacity);
  proc->SetEmissionHandler([this, pid](const Processor::Emission& em) {
    OnEmission(pid, em);
  });
  if (config_.metrics != nullptr || config_.trace != nullptr) {
    proc->SetTelemetry(
        config_.metrics, config_.trace,
        telemetry::MakeLabels({{"entity", std::to_string(id_)},
                               {"processor", std::to_string(pid)}}));
  }
  proc_by_node_[node] = static_cast<int>(pid);
  processors_.push_back(std::move(proc));
  return pid;
}

common::Result<common::SimNodeId> Entity::RemoveLastProcessor() {
  if (processors_.size() <= 1) {
    return common::Status::FailedPrecondition(
        "cannot remove the gateway processor");
  }
  auto victim = static_cast<common::ProcessorId>(processors_.size() - 1);
  // Drain: move every fragment placed on the victim to the least-loaded
  // remaining processor (ties break to the lowest id, deterministically).
  std::vector<common::FragmentId> draining;
  for (const auto& [qid, state] : queries_) {
    for (const auto& [fragment, proc] : state.placement) {
      if (proc == victim) draining.push_back(fragment);
    }
  }
  std::sort(draining.begin(), draining.end());
  for (common::FragmentId fragment : draining) {
    common::ProcessorId best = 0;
    for (common::ProcessorId p = 1; p < victim; ++p) {
      if (processors_[p]->committed_load() <
          processors_[best]->committed_load()) {
        best = p;
      }
    }
    DSPS_RETURN_IF_ERROR(MoveFragment(fragment, best));
  }
  // Reassign stream delegations owned by the victim, round-robin over
  // the survivors.
  for (auto& [stream, delegate] : delegates_) {
    if (delegate != victim) continue;
    delegate = processors_[next_delegate_ % victim]->id();
    next_delegate_ = (next_delegate_ + 1) % static_cast<int>(victim);
  }
  common::SimNodeId node = processors_.back()->node();
  proc_by_node_.erase(node);
  retired_.push_back(std::move(processors_.back()));
  processors_.pop_back();
  return node;
}

}  // namespace dsps::entity
