#include "ordering/distributed_chain.h"

#include <algorithm>

#include "common/check.h"

namespace dsps::ordering {

DistributedChain::DistributedChain(sim::Network* network,
                                   common::QueryId query,
                                   std::vector<FilterSite> sites,
                                   const Config& config)
    : network_(network), query_(query), config_(config), am_(config.am) {
  DSPS_CHECK(network != nullptr);
  DSPS_CHECK(!sites.empty());
  std::vector<Candidate> candidates;
  for (FilterSite& site : sites) {
    DSPS_CHECK(site.predicate != nullptr);
    candidates.push_back(Candidate{site.proc, site.op});
    am_.ReportCost(query_, site.op, site.cost);
    sites_.push_back(SiteState{std::move(site), 0.0, 0.0});
  }
  for (size_t i = 0; i < sites_.size(); ++i) {
    sites_by_node_[sites_[i].site.node].push_back(i);
  }
  am_.SetCandidates(query_, std::move(candidates));
  // Freeze the static order from the initial estimates.
  auto order = am_.CurrentOrder(query_);
  DSPS_CHECK(order.ok());
  for (const Candidate& c : order.value()) static_order_.push_back(c.op);
}

void DistributedChain::InstallHandlers() {
  for (const auto& [node, idxs] : sites_by_node_) {
    network_->SetHandler(node, [this](const sim::Message& msg) {
      HandleMessage(msg);
    });
  }
}

void DistributedChain::SetSurvivorHandler(SurvivorHandler handler) {
  survivor_ = std::move(handler);
}

const DistributedChain::SiteState* DistributedChain::NextSite(
    const std::vector<common::OperatorId>& done) {
  common::OperatorId next_op = -1;
  if (config_.adaptive) {
    auto hop = am_.NextHop(query_, done);
    if (!hop.ok()) return nullptr;
    next_op = hop.value().op;
  } else {
    for (common::OperatorId op : static_order_) {
      if (std::find(done.begin(), done.end(), op) == done.end()) {
        next_op = op;
        break;
      }
    }
    if (next_op < 0) return nullptr;
  }
  for (const SiteState& state : sites_) {
    if (state.site.op == next_op) return &state;
  }
  return nullptr;
}

void DistributedChain::SendTo(const SiteState& to, Envelope env,
                              common::SimNodeId from) {
  sim::Message msg;
  msg.from = from;
  msg.to = to.site.node;
  msg.type = kMsgChainTuple;
  msg.size_bytes = env.tuple->SizeBytes() + 8 * static_cast<int64_t>(
                                                    env.done.size());
  msg.payload = std::move(env);
  common::Status s = network_->Send(std::move(msg));
  DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
}

common::Status DistributedChain::Submit(const engine::Tuple& tuple) {
  Envelope env;
  env.tuple = std::make_shared<const engine::Tuple>(tuple);
  env.injected_at = network_->simulator()->now();
  const SiteState* first = NextSite(env.done);
  if (first == nullptr) {
    return common::Status::FailedPrecondition("chain has no operators");
  }
  // The injection point is the first site's node (the delegate would
  // normally forward there; local injection keeps the harness simple).
  env.next_op = first->site.op;
  SendTo(*first, std::move(env), first->site.node);
  return common::Status::OK();
}

bool DistributedChain::HandleMessage(const sim::Message& msg) {
  if (msg.type != kMsgChainTuple) return false;
  const auto* env = std::any_cast<Envelope>(&msg.payload);
  if (env == nullptr) return false;
  // The envelope's next operator is the one the sender chose: recover it
  // as the best not-done operator hosted on this node.
  auto node_it = sites_by_node_.find(msg.to);
  if (node_it == sites_by_node_.end()) return false;
  for (size_t idx : node_it->second) {
    SiteState& state = sites_[idx];
    if (state.site.op == env->next_op) {
      Evaluate(&state, *env);
      return true;
    }
  }
  return false;
}

void DistributedChain::Evaluate(SiteState* state, Envelope env) {
  sim::Simulator* sim = network_->simulator();
  double start = std::max(sim->now(), state->busy_until);
  state->busy_until = start + state->site.cost;
  state->cpu_seconds += state->site.cost;
  total_cpu_ += state->site.cost;
  evaluations_ += 1;
  bool passed = state->site.predicate(*env.tuple);
  am_.ReportSelectivity(query_, state->site.op, passed ? 1.0 : 0.0);
  am_.ReportBacklog(state->site.proc,
                    std::max(0.0, state->busy_until - sim->now()));
  env.done.push_back(state->site.op);
  double completion = state->busy_until;
  common::SimNodeId from = state->site.node;
  if (!passed) return;  // tuple dropped; nothing to schedule
  // At completion, route to the next hop or emit as survivor.
  auto shared = std::make_shared<Envelope>(std::move(env));
  sim->ScheduleAt(completion, [this, shared, from, completion]() {
    const SiteState* next = NextSite(shared->done);
    if (next == nullptr) {
      survivors_ += 1;
      if (survivor_) {
        survivor_(*shared->tuple, completion - shared->injected_at);
      }
      return;
    }
    Envelope out = *shared;
    out.next_op = next->site.op;
    SendTo(*next, std::move(out), from);
  });
}

double DistributedChain::max_site_cpu_seconds() const {
  double max_cpu = 0.0;
  for (const SiteState& state : sites_) {
    max_cpu = std::max(max_cpu, state.cpu_seconds);
  }
  return max_cpu;
}

}  // namespace dsps::ordering
