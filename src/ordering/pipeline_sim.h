#ifndef DSPS_ORDERING_PIPELINE_SIM_H_
#define DSPS_ORDERING_PIPELINE_SIM_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "ordering/adaptation_module.h"

namespace dsps::ordering {

/// One distributed commutable operator in the experiment: a filter whose
/// *true* selectivity may drift over time (the AM only sees outcomes).
struct PipelineOp {
  common::OperatorId op = -1;
  common::ProcessorId proc = common::kInvalidProcessor;
  /// True per-tuple cost (seconds).
  double cost = 1e-6;
  /// True selectivity as a function of the tuple index (drift source).
  std::function<double(int64_t)> selectivity;
};

/// How the visit order is chosen per tuple.
enum class OrderingPolicy {
  /// Order fixed once from the operators' *initial* true ranks.
  kStatic,
  /// AM-routed per tuple using its drifting EWMA estimates and backlogs.
  kAdaptive,
  /// Order recomputed per tuple from the *true* current ranks (unreachable
  /// in practice; the lower bound).
  kOracle,
};

/// Results of a pipeline-ordering run.
struct PipelineSimResult {
  /// Total CPU seconds across all processors.
  double total_cost = 0.0;
  /// Operator invocations (tuples x operators actually visited).
  int64_t evaluations = 0;
  /// Tuples that survived every filter.
  int64_t survivors = 0;
  /// Max CPU seconds charged to any one processor (load balance view).
  double max_processor_cost = 0.0;
};

/// Simulates `num_tuples` tuples flowing through a conjunction of
/// distributed filters under the given ordering policy (Section 4.2's
/// experiment substrate). Filters drop tuples independently with their
/// true (possibly drifting) selectivities; a tuple stops at its first
/// failing filter, so a better ordering evaluates fewer operators. Under
/// kAdaptive, the AM receives per-tuple selectivity/cost feedback and
/// per-processor backlog updates.
PipelineSimResult RunPipeline(const std::vector<PipelineOp>& ops,
                              OrderingPolicy policy, int64_t num_tuples,
                              common::Rng* rng,
                              AdaptationModule* am = nullptr,
                              common::QueryId query = 1);

}  // namespace dsps::ordering

#endif  // DSPS_ORDERING_PIPELINE_SIM_H_
