#include "ordering/adaptation_module.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dsps::ordering {

AdaptationModule::AdaptationModule() : AdaptationModule(Config()) {}
AdaptationModule::AdaptationModule(const Config& config) : config_(config) {
  DSPS_CHECK(config.ema_alpha > 0 && config.ema_alpha <= 1.0);
}

void AdaptationModule::SetCandidates(common::QueryId query,
                                     std::vector<Candidate> candidates) {
  candidates_[query] = std::move(candidates);
}

const std::vector<Candidate>* AdaptationModule::candidates(
    common::QueryId query) const {
  auto it = candidates_.find(query);
  return it == candidates_.end() ? nullptr : &it->second;
}

void AdaptationModule::ReportSelectivity(common::QueryId query,
                                         common::OperatorId op,
                                         double observed) {
  auto [it, inserted] = stats_.try_emplace(
      {query, op},
      OpStats{config_.prior_selectivity, config_.prior_cost, false});
  OpStats& s = it->second;
  if (!s.seen) {
    s.selectivity = observed;
    s.seen = true;
  } else {
    s.selectivity =
        (1 - config_.ema_alpha) * s.selectivity + config_.ema_alpha * observed;
  }
}

void AdaptationModule::ReportCost(common::QueryId query,
                                  common::OperatorId op, double cost_seconds) {
  auto [it, inserted] = stats_.try_emplace(
      {query, op},
      OpStats{config_.prior_selectivity, config_.prior_cost, false});
  OpStats& s = it->second;
  s.cost =
      (1 - config_.ema_alpha) * s.cost + config_.ema_alpha * cost_seconds;
}

void AdaptationModule::ReportBacklog(common::ProcessorId proc,
                                     double backlog_seconds) {
  backlog_[proc] = backlog_seconds;
}

double AdaptationModule::EstimatedSelectivity(common::QueryId query,
                                              common::OperatorId op) const {
  auto it = stats_.find({query, op});
  return it == stats_.end() ? config_.prior_selectivity
                            : it->second.selectivity;
}

double AdaptationModule::EstimatedCost(common::QueryId query,
                                       common::OperatorId op) const {
  auto it = stats_.find({query, op});
  return it == stats_.end() ? config_.prior_cost : it->second.cost;
}

double AdaptationModule::Backlog(common::ProcessorId proc) const {
  auto it = backlog_.find(proc);
  return it == backlog_.end() ? 0.0 : it->second;
}

double AdaptationModule::Rank(common::QueryId query, const Candidate& c,
                              bool include_load) const {
  double sel = EstimatedSelectivity(query, c.op);
  double cost = EstimatedCost(query, c.op);
  // Classic rank: cost / (1 - selectivity). A selective (low sel) cheap
  // operator should run first. Clamp selectivity away from 1 so
  // pass-through operators sort last, not NaN.
  double drop = std::max(1e-6, 1.0 - std::min(sel, 1.0 - 1e-6));
  double rank = cost / drop;
  if (include_load) {
    rank *= 1.0 + config_.load_weight * Backlog(c.proc);
  }
  return rank;
}

common::Result<Candidate> AdaptationModule::NextHop(
    common::QueryId query, const std::vector<common::OperatorId>& done) const {
  const std::vector<Candidate>* cands = candidates(query);
  if (cands == nullptr) {
    return common::Status::NotFound("no candidates for query");
  }
  const Candidate* best = nullptr;
  double best_rank = std::numeric_limits<double>::max();
  for (const Candidate& c : *cands) {
    if (std::find(done.begin(), done.end(), c.op) != done.end()) continue;
    double rank = Rank(query, c, /*include_load=*/true);
    if (rank < best_rank) {
      best_rank = rank;
      best = &c;
    }
  }
  if (best == nullptr) {
    return common::Status::NotFound("all candidates visited");
  }
  return *best;
}

common::Result<std::vector<Candidate>> AdaptationModule::CurrentOrder(
    common::QueryId query) const {
  const std::vector<Candidate>* cands = candidates(query);
  if (cands == nullptr) {
    return common::Status::NotFound("no candidates for query");
  }
  std::vector<Candidate> order = *cands;
  std::stable_sort(order.begin(), order.end(),
                   [&](const Candidate& a, const Candidate& b) {
                     return Rank(query, a, false) < Rank(query, b, false);
                   });
  return order;
}

}  // namespace dsps::ordering
