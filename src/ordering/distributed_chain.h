#ifndef DSPS_ORDERING_DISTRIBUTED_CHAIN_H_
#define DSPS_ORDERING_DISTRIBUTED_CHAIN_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/tuple.h"
#include "ordering/adaptation_module.h"
#include "sim/network.h"

namespace dsps::ordering {

/// Message type for chain-routed tuples on the simulated network.
inline constexpr int kMsgChainTuple = 301;

/// Section 4.2's architecture, running live on the discrete-event
/// network: the commutable operators of one query (a conjunction of
/// filters) are spread over processors; an Adaptation Module instance at
/// every hop intercepts the output stream and picks the next (processor,
/// operator) per tuple from the candidate downstream set, using its
/// continuously collected statistics (selectivities, processor backlog).
///
/// Each site charges simulated CPU per evaluated tuple, so backlog —
/// and hence the AM's load-balancing term — is real queueing, not a
/// synthetic counter.
class DistributedChain {
 public:
  /// One commutable filter hosted somewhere in the cluster.
  struct FilterSite {
    common::OperatorId op = -1;
    common::ProcessorId proc = common::kInvalidProcessor;
    common::SimNodeId node = common::kInvalidSimNode;
    /// CPU seconds per evaluated tuple.
    double cost = 1e-6;
    /// The actual predicate (may change behavior over time — drift).
    std::function<bool(const engine::Tuple&)> predicate;
  };

  struct Config {
    /// false = fix the visit order once from the AM's initial estimates
    /// (static baseline); true = per-tuple adaptive routing.
    bool adaptive = true;
    AdaptationModule::Config am;
  };

  /// `network` must outlive the chain. Sites may share nodes.
  DistributedChain(sim::Network* network, common::QueryId query,
                   std::vector<FilterSite> sites, const Config& config);
  DistributedChain(const DistributedChain&) = delete;
  DistributedChain& operator=(const DistributedChain&) = delete;

  /// Installs this chain's handlers on its sites' nodes (standalone use).
  void InstallHandlers();

  /// Dispatches a chain message addressed to one of this chain's nodes.
  bool HandleMessage(const sim::Message& msg);

  /// Injects a tuple: the AM (or the static order) picks the first hop.
  common::Status Submit(const engine::Tuple& tuple);

  /// Called for every tuple that passed all filters, with its end-to-end
  /// latency (seconds).
  using SurvivorHandler =
      std::function<void(const engine::Tuple&, double latency)>;
  void SetSurvivorHandler(SurvivorHandler handler);

  int64_t evaluations() const { return evaluations_; }
  int64_t survivors() const { return survivors_; }
  double total_cpu_seconds() const { return total_cpu_; }
  /// Busiest site's CPU seconds.
  double max_site_cpu_seconds() const;

  const AdaptationModule& am() const { return am_; }

 private:
  struct Envelope {
    std::shared_ptr<const engine::Tuple> tuple;
    std::vector<common::OperatorId> done;
    /// The operator the sender's AM chose for this hop.
    common::OperatorId next_op = -1;
    double injected_at = 0.0;
  };
  struct SiteState {
    FilterSite site;
    double busy_until = 0.0;
    double cpu_seconds = 0.0;
  };

  /// Picks the next hop for a tuple with `done` visited; nullptr if all
  /// operators were visited.
  const SiteState* NextSite(const std::vector<common::OperatorId>& done);
  void SendTo(const SiteState& to, Envelope env, common::SimNodeId from);
  void Evaluate(SiteState* state, Envelope env);

  sim::Network* network_;
  common::QueryId query_;
  Config config_;
  AdaptationModule am_;
  std::vector<SiteState> sites_;
  std::map<common::SimNodeId, std::vector<size_t>> sites_by_node_;
  std::vector<common::OperatorId> static_order_;
  SurvivorHandler survivor_;
  int64_t evaluations_ = 0;
  int64_t survivors_ = 0;
  double total_cpu_ = 0.0;
};

}  // namespace dsps::ordering

#endif  // DSPS_ORDERING_DISTRIBUTED_CHAIN_H_
