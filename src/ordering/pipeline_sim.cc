#include "ordering/pipeline_sim.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace dsps::ordering {

namespace {

/// True rank of an op at tuple index t: cost / (1 - selectivity(t)).
double TrueRank(const PipelineOp& op, int64_t t) {
  double sel = std::clamp(op.selectivity(t), 0.0, 1.0 - 1e-6);
  return op.cost / (1.0 - sel);
}

}  // namespace

PipelineSimResult RunPipeline(const std::vector<PipelineOp>& ops,
                              OrderingPolicy policy, int64_t num_tuples,
                              common::Rng* rng, AdaptationModule* am,
                              common::QueryId query) {
  DSPS_CHECK(!ops.empty());
  DSPS_CHECK(rng != nullptr);
  AdaptationModule local_am;
  if (am == nullptr) am = &local_am;
  if (policy == OrderingPolicy::kAdaptive) {
    std::vector<Candidate> candidates;
    for (const PipelineOp& op : ops) {
      candidates.push_back(Candidate{op.proc, op.op});
      // Seed costs so the first decisions are sane.
      am->ReportCost(query, op.op, op.cost);
    }
    am->SetCandidates(query, std::move(candidates));
  }
  std::map<common::OperatorId, const PipelineOp*> by_id;
  for (const PipelineOp& op : ops) by_id[op.op] = &op;

  // Static order: by true rank at t = 0.
  std::vector<const PipelineOp*> static_order;
  for (const PipelineOp& op : ops) static_order.push_back(&op);
  std::stable_sort(static_order.begin(), static_order.end(),
                   [](const PipelineOp* a, const PipelineOp* b) {
                     return TrueRank(*a, 0) < TrueRank(*b, 0);
                   });

  PipelineSimResult result;
  std::map<common::ProcessorId, double> proc_cost;
  std::vector<common::OperatorId> done;
  for (int64_t t = 0; t < num_tuples; ++t) {
    done.clear();
    bool alive = true;
    for (size_t step = 0; step < ops.size() && alive; ++step) {
      const PipelineOp* op = nullptr;
      switch (policy) {
        case OrderingPolicy::kStatic:
          op = static_order[step];
          break;
        case OrderingPolicy::kAdaptive: {
          auto hop = am->NextHop(query, done);
          DSPS_CHECK(hop.ok());
          op = by_id.at(hop.value().op);
          break;
        }
        case OrderingPolicy::kOracle: {
          double best = 1e300;
          for (const PipelineOp& cand : ops) {
            if (std::find(done.begin(), done.end(), cand.op) != done.end()) {
              continue;
            }
            double r = TrueRank(cand, t);
            if (r < best) {
              best = r;
              op = &cand;
            }
          }
          break;
        }
      }
      DSPS_CHECK(op != nullptr);
      done.push_back(op->op);
      result.total_cost += op->cost;
      result.evaluations += 1;
      proc_cost[op->proc] += op->cost;
      double sel = std::clamp(op->selectivity(t), 0.0, 1.0);
      bool passed = rng->Bernoulli(sel);
      if (policy == OrderingPolicy::kAdaptive) {
        am->ReportSelectivity(query, op->op, passed ? 1.0 : 0.0);
        am->ReportBacklog(op->proc, proc_cost[op->proc] /
                                        std::max<int64_t>(1, t + 1));
      }
      alive = passed;
    }
    if (alive) result.survivors += 1;
  }
  for (const auto& [proc, cost] : proc_cost) {
    result.max_processor_cost = std::max(result.max_processor_cost, cost);
  }
  return result;
}

}  // namespace dsps::ordering
