#ifndef DSPS_ORDERING_ADAPTATION_MODULE_H_
#define DSPS_ORDERING_ADAPTATION_MODULE_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace dsps::ordering {

/// One candidate downstream hop for a tuple: operator `op` of the query,
/// hosted on processor `proc`.
struct Candidate {
  common::ProcessorId proc = common::kInvalidProcessor;
  common::OperatorId op = -1;
};

/// The platform-independent Adaptation Module of Section 4.2.
///
/// It sits between the processing engine and the network, intercepting a
/// fragment's output stream. For each query whose commutable operators
/// (e.g., a conjunction of filters) are spread over multiple processors,
/// the AM keeps a candidate set of downstream (processor, operator) pairs
/// and continuously-updated statistics: EWMA operator selectivities and
/// costs, and processor backlogs. Each output tuple is routed to the
/// candidate minimizing the classic adaptive-ordering rank
///     cost / (1 - selectivity)
/// inflated by the target processor's queueing backlog, so the ordering of
/// distributed operators adapts to selectivity and load drift at runtime.
class AdaptationModule {
 public:
  struct Config {
    /// EWMA weight of a new observation.
    double ema_alpha = 0.2;
    /// How strongly a processor's backlog (seconds of queued work)
    /// inflates its candidates' ranks.
    double load_weight = 1.0;
    /// Selectivity prior used before any observation.
    double prior_selectivity = 0.5;
    /// Cost prior (seconds/tuple) used before any observation.
    double prior_cost = 1e-6;
  };

  AdaptationModule();
  explicit AdaptationModule(const Config& config);

  /// Registers (replacing) the candidate downstream set generated when a
  /// query fragment is (re)placed onto a processor.
  void SetCandidates(common::QueryId query, std::vector<Candidate> candidates);

  /// The registered candidates, or nullptr.
  const std::vector<Candidate>* candidates(common::QueryId query) const;

  /// Feeds one observed pass/drop outcome of `op` (1 tuple in, `outputs`
  /// tuples out) into the selectivity EWMA.
  void ReportSelectivity(common::QueryId query, common::OperatorId op,
                         double observed);

  /// Feeds one observed per-tuple processing cost of `op`.
  void ReportCost(common::QueryId query, common::OperatorId op,
                  double cost_seconds);

  /// Updates a processor's backlog (seconds of queued work).
  void ReportBacklog(common::ProcessorId proc, double backlog_seconds);

  double EstimatedSelectivity(common::QueryId query,
                              common::OperatorId op) const;
  double EstimatedCost(common::QueryId query, common::OperatorId op) const;
  double Backlog(common::ProcessorId proc) const;

  /// Chooses the next hop for a tuple of `query` that has already visited
  /// the operators in `done`. NotFound when every candidate was visited.
  common::Result<Candidate> NextHop(
      common::QueryId query, const std::vector<common::OperatorId>& done) const;

  /// The full visit order implied by the *current* estimates, ignoring
  /// backlogs (what a static optimizer would emit right now).
  common::Result<std::vector<Candidate>> CurrentOrder(
      common::QueryId query) const;

 private:
  struct OpStats {
    double selectivity;
    double cost;
    bool seen = false;
  };
  double Rank(common::QueryId query, const Candidate& c,
              bool include_load) const;

  Config config_;
  std::map<common::QueryId, std::vector<Candidate>> candidates_;
  std::map<std::pair<common::QueryId, common::OperatorId>, OpStats> stats_;
  std::map<common::ProcessorId, double> backlog_;
};

}  // namespace dsps::ordering

#endif  // DSPS_ORDERING_ADAPTATION_MODULE_H_
