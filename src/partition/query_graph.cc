#include "partition/query_graph.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace dsps::partition {

int QueryGraph::AddVertex(common::QueryId query, double weight) {
  DSPS_CHECK(weight >= 0);
  queries_.push_back(query);
  weights_.push_back(weight);
  adj_.emplace_back();
  total_weight_ += weight;
  return static_cast<int>(weights_.size()) - 1;
}

void QueryGraph::AddEdge(int a, int b, double weight) {
  DSPS_CHECK(a >= 0 && a < num_vertices());
  DSPS_CHECK(b >= 0 && b < num_vertices());
  DSPS_CHECK(a != b);
  DSPS_CHECK(weight >= 0);
  if (weight <= 0) return;
  // Accumulate if the edge exists already.
  for (auto& [n, w] : adj_[a]) {
    if (n == b) {
      w += weight;
      for (auto& [n2, w2] : adj_[b]) {
        if (n2 == a) w2 += weight;
      }
      total_edge_weight_ += weight;
      return;
    }
  }
  adj_[a].emplace_back(b, weight);
  adj_[b].emplace_back(a, weight);
  total_edge_weight_ += weight;
}

double QueryGraph::EdgeCut(const std::vector<int>& assignment) const {
  DSPS_CHECK(assignment.size() == weights_.size());
  double cut = 0.0;
  for (int v = 0; v < num_vertices(); ++v) {
    for (const auto& [n, w] : adj_[v]) {
      if (n > v && assignment[v] != assignment[n]) cut += w;
    }
  }
  return cut;
}

std::vector<double> QueryGraph::PartWeights(const std::vector<int>& assignment,
                                            int k) const {
  DSPS_CHECK(assignment.size() == weights_.size());
  std::vector<double> part(k, 0.0);
  for (int v = 0; v < num_vertices(); ++v) {
    DSPS_CHECK(assignment[v] >= 0 && assignment[v] < k);
    part[assignment[v]] += weights_[v];
  }
  return part;
}

double QueryGraph::Imbalance(const std::vector<int>& assignment, int k) const {
  if (num_vertices() == 0 || total_weight_ <= 0) return 1.0;
  std::vector<double> part = PartWeights(assignment, k);
  double ideal = total_weight_ / k;
  double max_part = *std::max_element(part.begin(), part.end());
  return max_part / ideal;
}

QueryGraph QueryGraph::Build(const std::vector<engine::Query>& queries,
                             const interest::StreamCatalog& catalog,
                             double min_edge_weight) {
  QueryGraph g;
  for (const engine::Query& q : queries) g.AddVertex(q.id, q.load);
  // Bucket queries by stream so only pairs sharing a stream are measured.
  std::map<common::StreamId, std::vector<int>> by_stream;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (common::StreamId s : queries[i].interest.streams()) {
      by_stream[s].push_back(static_cast<int>(i));
    }
  }
  std::map<std::pair<int, int>, bool> measured;
  for (const auto& [stream, members] : by_stream) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        int a = members[i], b = members[j];
        if (a > b) std::swap(a, b);
        if (measured.count({a, b}) > 0) continue;
        measured[{a, b}] = true;
        double w = interest::SharedRateBytesPerSec(queries[a].interest,
                                                   queries[b].interest, catalog);
        if (w > min_edge_weight) g.AddEdge(a, b, w);
      }
    }
  }
  return g;
}

}  // namespace dsps::partition
