#include "partition/query_graph.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/check.h"
#include "interest/box_index.h"

namespace dsps::partition {

int QueryGraph::AddVertex(common::QueryId query, double weight) {
  DSPS_CHECK(weight >= 0);
  queries_.push_back(query);
  weights_.push_back(weight);
  adj_.emplace_back();
  total_weight_ += weight;
  return static_cast<int>(weights_.size()) - 1;
}

void QueryGraph::AddEdge(int a, int b, double weight) {
  DSPS_CHECK(a >= 0 && a < num_vertices());
  DSPS_CHECK(b >= 0 && b < num_vertices());
  DSPS_CHECK(a != b);
  DSPS_CHECK(weight >= 0);
  if (weight <= 0) return;
  // Accumulate if the edge exists already.
  for (auto& [n, w] : adj_[a]) {
    if (n == b) {
      w += weight;
      for (auto& [n2, w2] : adj_[b]) {
        if (n2 == a) w2 += weight;
      }
      total_edge_weight_ += weight;
      return;
    }
  }
  adj_[a].emplace_back(b, weight);
  adj_[b].emplace_back(a, weight);
  total_edge_weight_ += weight;
}

double QueryGraph::EdgeCut(const std::vector<int>& assignment) const {
  DSPS_CHECK(assignment.size() == weights_.size());
  double cut = 0.0;
  for (int v = 0; v < num_vertices(); ++v) {
    for (const auto& [n, w] : adj_[v]) {
      if (n > v && assignment[v] != assignment[n]) cut += w;
    }
  }
  return cut;
}

std::vector<double> QueryGraph::PartWeights(const std::vector<int>& assignment,
                                            int k) const {
  DSPS_CHECK(assignment.size() == weights_.size());
  std::vector<double> part(k, 0.0);
  for (int v = 0; v < num_vertices(); ++v) {
    DSPS_CHECK(assignment[v] >= 0 && assignment[v] < k);
    part[assignment[v]] += weights_[v];
  }
  return part;
}

double QueryGraph::Imbalance(const std::vector<int>& assignment, int k) const {
  if (num_vertices() == 0 || total_weight_ <= 0) return 1.0;
  std::vector<double> part = PartWeights(assignment, k);
  double ideal = total_weight_ / k;
  double max_part = *std::max_element(part.begin(), part.end());
  return max_part / ideal;
}

common::StreamId FirstSharedStream(const std::vector<common::StreamId>& a,
                                   const std::vector<common::StreamId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common::kInvalidStream;
}

QueryGraph QueryGraph::Build(const std::vector<engine::Query>& queries,
                             const interest::StreamCatalog& catalog,
                             double min_edge_weight,
                             interest::IndexStats* index_stats) {
  QueryGraph g;
  const int n = static_cast<int>(queries.size());
  for (const engine::Query& q : queries) g.AddVertex(q.id, q.load);
  // Per-query sorted stream lists (needed for edge-ordering replay below).
  std::vector<std::vector<common::StreamId>> streams_of(n);
  for (int i = 0; i < n; ++i) streams_of[i] = queries[i].interest.streams();
  // Inverted stream -> query index. Only catalog streams can contribute
  // edge weight (SharedRateBytesPerSec sums over the catalog), so only
  // they get a spatial index; a pair overlapping nowhere in the catalog
  // has zero shared rate and never forms an edge.
  std::map<common::StreamId, interest::BoxIndex> index_of;
  for (int i = 0; i < n; ++i) {
    for (common::StreamId s : streams_of[i]) {
      if (!catalog.Contains(s)) continue;
      auto it = index_of.find(s);
      if (it == index_of.end()) {
        it = index_of.emplace(s, interest::BoxIndex(catalog.stats(s).domain))
                 .first;
      }
      const std::vector<interest::Box>* boxes = queries[i].interest.boxes_for(s);
      for (const interest::Box& b : *boxes) it->second.Insert(i, b);
    }
  }
  // Candidate pairs: only those with genuinely-overlapping boxes on some
  // stream are measured (the O(n^2) all-shared-pairs scan measured every
  // co-subscribed pair, overlap or not). Each surviving edge remembers the
  // first stream both queries subscribe to — the point the old pairwise
  // scan measured it at — so edges can be emitted in the identical order
  // and the resulting adjacency lists (hence every downstream partition)
  // are bit-identical.
  struct PendingEdge {
    common::StreamId first_shared;
    int a, b;
    double w;
  };
  std::vector<PendingEdge> edges;
  std::unordered_set<int64_t> measured;
  std::vector<int64_t> candidates;
  for (const auto& [stream, index] : index_of) {
    for (int a = 0; a < n; ++a) {
      const std::vector<interest::Box>* boxes =
          queries[a].interest.boxes_for(stream);
      if (boxes == nullptr) continue;
      candidates.clear();
      for (const interest::Box& box : *boxes) {
        index.MatchOverlap(box, &candidates);
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (int64_t cand : candidates) {
        int b = static_cast<int>(cand);
        if (b <= a) continue;
        if (!measured.insert(static_cast<int64_t>(a) * n + b).second) continue;
        double w = interest::SharedRateBytesPerSec(queries[a].interest,
                                                   queries[b].interest, catalog);
        if (w > min_edge_weight) {
          edges.push_back(PendingEdge{
              FirstSharedStream(streams_of[a], streams_of[b]), a, b, w});
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const PendingEdge& x, const PendingEdge& y) {
              if (x.first_shared != y.first_shared) {
                return x.first_shared < y.first_shared;
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  for (const PendingEdge& e : edges) g.AddEdge(e.a, e.b, e.w);
  if (index_stats != nullptr) {
    for (const auto& [stream, index] : index_of) {
      index.AddStatsTo(index_stats);
    }
  }
  return g;
}

}  // namespace dsps::partition
