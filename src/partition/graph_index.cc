#include "partition/graph_index.h"

#include <algorithm>

#include "common/check.h"

namespace dsps::partition {

QueryGraphIndex::QueryGraphIndex(const interest::StreamCatalog* catalog,
                                 double min_edge_weight)
    : catalog_(catalog), min_edge_weight_(min_edge_weight) {
  DSPS_CHECK(catalog != nullptr);
}

void QueryGraphIndex::AddQuery(const engine::Query& query) {
  DSPS_CHECK(query.id != common::kInvalidQuery);
  if (Contains(query.id)) RemoveQuery(query.id);
  VertexInfo info;
  info.load = query.load;
  info.interest = query.interest;
  info.streams = query.interest.streams();
  // Candidates: queries with a genuinely-overlapping box on some catalog
  // stream (queried before inserting our own boxes, so no self-match).
  std::vector<int64_t> candidates;
  for (common::StreamId s : info.streams) {
    if (!catalog_->Contains(s)) continue;
    auto it = stream_index_.find(s);
    if (it == stream_index_.end()) continue;
    const std::vector<interest::Box>* boxes = query.interest.boxes_for(s);
    for (const interest::Box& b : *boxes) it->second.MatchOverlap(b, &candidates);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (int64_t cand : candidates) {
    auto other = vertices_.find(static_cast<common::QueryId>(cand));
    DSPS_DCHECK(other != vertices_.end());
    double w = interest::SharedRateBytesPerSec(info.interest,
                                               other->second.interest, *catalog_);
    if (w <= min_edge_weight_) continue;
    EdgeInfo edge;
    edge.weight = w;
    edge.first_shared = FirstSharedStream(info.streams, other->second.streams);
    edges_[MakeEdgeKey(query.id, other->first)] = edge;
    info.neighbors.insert(other->first);
    other->second.neighbors.insert(query.id);
  }
  // Register the new query's boxes for future deltas.
  for (common::StreamId s : info.streams) {
    if (!catalog_->Contains(s)) continue;
    auto it = stream_index_.find(s);
    if (it == stream_index_.end()) {
      it = stream_index_
               .emplace(s, interest::BoxIndex(catalog_->stats(s).domain))
               .first;
    }
    const std::vector<interest::Box>* boxes = query.interest.boxes_for(s);
    for (const interest::Box& b : *boxes) it->second.Insert(query.id, b);
  }
  vertices_[query.id] = std::move(info);
}

void QueryGraphIndex::AddQueries(const std::vector<engine::Query>& queries) {
  for (const engine::Query& query : queries) AddQuery(query);
}

interest::IndexStats QueryGraphIndex::StreamIndexStats() const {
  interest::IndexStats stats;
  for (const auto& [stream, index] : stream_index_) {
    index.AddStatsTo(&stats);
  }
  return stats;
}

void QueryGraphIndex::RemoveQuery(common::QueryId id) {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return;
  for (common::QueryId nb : it->second.neighbors) {
    edges_.erase(MakeEdgeKey(id, nb));
    auto nb_it = vertices_.find(nb);
    DSPS_DCHECK(nb_it != vertices_.end());
    nb_it->second.neighbors.erase(id);
  }
  for (common::StreamId s : it->second.streams) {
    auto idx = stream_index_.find(s);
    if (idx != stream_index_.end()) idx->second.Remove(id);
  }
  vertices_.erase(it);
}

void QueryGraphIndex::UpdateLoad(common::QueryId id, double load) {
  DSPS_CHECK(load >= 0);
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return;
  it->second.load = load;
}

QueryGraph QueryGraphIndex::Graph() const {
  QueryGraph g;
  std::map<common::QueryId, int> rank;
  for (const auto& [id, info] : vertices_) {
    rank[id] = g.AddVertex(id, info.load);
  }
  struct PendingEdge {
    common::StreamId first_shared;
    int a, b;
    double w;
  };
  std::vector<PendingEdge> pending;
  pending.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) {
    // Ranks ascend with query ids, so the id-ordered key is rank-ordered.
    pending.push_back(PendingEdge{edge.first_shared, rank.at(key.first),
                                  rank.at(key.second), edge.weight});
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingEdge& x, const PendingEdge& y) {
              if (x.first_shared != y.first_shared) {
                return x.first_shared < y.first_shared;
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  for (const PendingEdge& e : pending) g.AddEdge(e.a, e.b, e.w);
  return g;
}

}  // namespace dsps::partition
