#ifndef DSPS_PARTITION_REPARTITIONER_H_
#define DSPS_PARTITION_REPARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.h"
#include "partition/query_graph.h"
#include "telemetry/registry.h"

namespace dsps::partition {

/// Outcome of one adaptive repartitioning step (Section 3.2.2's runtime
/// adaptation): the new assignment plus the costs the paper trades off —
/// query movements (migrations) and decision-making time.
struct RepartitionResult {
  std::vector<int> assignment;
  /// Vertices whose part changed relative to the old assignment (vertices
  /// with no previous home are not counted).
  int migrations = 0;
  double edge_cut = 0.0;
  double imbalance = 1.0;
  /// Wall-clock seconds spent deciding.
  double decision_seconds = 0.0;
};

/// Adapts an existing assignment to a changed query graph. The old
/// assignment may be shorter than the graph (new queries appended) and may
/// contain -1 for unassigned vertices.
class Repartitioner {
 public:
  virtual ~Repartitioner() = default;
  virtual const char* name() const = 0;
  virtual RepartitionResult Repartition(const QueryGraph& graph,
                                        const std::vector<int>& old_assignment,
                                        int k, double balance_tolerance) = 0;

  /// Attaches a metrics registry (null = detach; default off, zero cost).
  /// Every Repartition then records, labeled {strategy=name()}:
  /// partition.repartitions / .migrations counters, partition.edge_cut /
  /// .imbalance gauges, and a partition.decision_seconds histogram.
  void SetMetrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  /// Implementations call this once with the final result of a step.
  void RecordMetrics(const RepartitionResult& result);

 private:
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

/// Extreme 1 (paper): repartition from scratch with the multilevel
/// partitioner, then relabel parts to minimize migrations. Near-optimal
/// cut, long decision time, many query movements.
class ScratchRepartitioner : public Repartitioner {
 public:
  explicit ScratchRepartitioner(MultilevelPartitioner::Config config = {});
  const char* name() const override { return "scratch"; }
  RepartitionResult Repartition(const QueryGraph& graph,
                                const std::vector<int>& old_assignment, int k,
                                double balance_tolerance) override;

 private:
  MultilevelPartitioner partitioner_;
};

/// Extreme 2 (paper): cut vertices from overloaded parts to underloaded
/// ones "without considering the relationship of overlap in data
/// interest". Fast, few migrations, but the cut degrades over time.
class IncrementalRepartitioner : public Repartitioner {
 public:
  const char* name() const override { return "incremental"; }
  RepartitionResult Repartition(const QueryGraph& graph,
                                const std::vector<int>& old_assignment, int k,
                                double balance_tolerance) override;
};

/// The desirable middle ground the paper calls for: restore balance by
/// moving *boundary* vertices with the best (cut-gain, load) trade-off,
/// then run bounded local refinement. Decision time and migrations stay
/// near the incremental extreme while the cut stays near the scratch one.
class HybridRepartitioner : public Repartitioner {
 public:
  struct Config {
    int refine_passes = 2;
  };
  HybridRepartitioner();
  explicit HybridRepartitioner(const Config& config);
  const char* name() const override { return "hybrid"; }
  RepartitionResult Repartition(const QueryGraph& graph,
                                const std::vector<int>& old_assignment, int k,
                                double balance_tolerance) override;

 private:
  Config config_;
};

/// Cut/imbalance of an arbitrary assignment — the common yardstick for
/// comparing repartitioning strategies against algorithmic (placement-map)
/// assignments that no Repartitioner produced.
struct AssignmentQuality {
  double edge_cut = 0.0;
  double imbalance = 1.0;
};
AssignmentQuality EvaluateAssignment(const QueryGraph& graph,
                                     const std::vector<int>& assignment,
                                     int k);

/// Strategy selection by name ("scratch", "incremental", "hybrid") for
/// benches and CI legs that sweep strategies; null for unknown names.
std::unique_ptr<Repartitioner> MakeRepartitioner(const std::string& name);

/// Relabels `new_assignment`'s part ids to maximize vertex-weight overlap
/// with `old_assignment` (greedy max-weight matching on the k x k overlap
/// matrix). Minimizes spurious migrations after a from-scratch partition.
void RelabelToMinimizeMigrations(const QueryGraph& graph,
                                 const std::vector<int>& old_assignment,
                                 std::vector<int>* new_assignment, int k);

/// Counts vertices with a previous home whose part changed.
int CountMigrations(const std::vector<int>& old_assignment,
                    const std::vector<int>& new_assignment);

}  // namespace dsps::partition

#endif  // DSPS_PARTITION_REPARTITIONER_H_
