#include "partition/repartitioner.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/check.h"

namespace dsps::partition {

namespace {

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Extends `old_assignment` to the graph size with -1 (no previous home).
std::vector<int> PadOld(const std::vector<int>& old_assignment, int n) {
  std::vector<int> padded = old_assignment;
  padded.resize(n, -1);
  return padded;
}

/// Assigns homeless vertices (part -1) to their best part by affinity,
/// lightest part as fallback.
void PlaceNewVertices(const QueryGraph& graph, std::vector<int>* assignment,
                      int k, double cap) {
  std::vector<double> part_weight(k, 0.0);
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if ((*assignment)[v] >= 0) part_weight[(*assignment)[v]] += graph.vertex_weight(v);
  }
  std::vector<double> affinity(k, 0.0);
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if ((*assignment)[v] >= 0) continue;
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (const auto& [nb, w] : graph.neighbors(v)) {
      if ((*assignment)[nb] >= 0) affinity[(*assignment)[nb]] += w;
    }
    double w_v = graph.vertex_weight(v);
    int best = -1;
    double best_aff = -1.0;
    for (int p = 0; p < k; ++p) {
      if (part_weight[p] + w_v > cap) continue;
      if (affinity[p] > best_aff) {
        best = p;
        best_aff = affinity[p];
      }
    }
    if (best < 0) {
      best = static_cast<int>(
          std::min_element(part_weight.begin(), part_weight.end()) -
          part_weight.begin());
    }
    (*assignment)[v] = best;
    part_weight[best] += w_v;
  }
}

RepartitionResult Finish(const QueryGraph& graph,
                         const std::vector<int>& old_padded,
                         std::vector<int> assignment, int k,
                         std::chrono::steady_clock::time_point start) {
  RepartitionResult r;
  r.migrations = CountMigrations(old_padded, assignment);
  r.edge_cut = graph.EdgeCut(assignment);
  r.imbalance = graph.Imbalance(assignment, k);
  r.decision_seconds = WallSeconds(start);
  r.assignment = std::move(assignment);
  return r;
}

}  // namespace

void Repartitioner::RecordMetrics(const RepartitionResult& result) {
  if (metrics_ == nullptr) return;
  telemetry::Labels labels = telemetry::MakeLabels({{"strategy", name()}});
  metrics_->counter("partition.repartitions", labels)->Increment();
  metrics_->counter("partition.migrations", labels)
      ->Increment(result.migrations);
  metrics_->gauge("partition.edge_cut", labels)->Set(result.edge_cut);
  metrics_->gauge("partition.imbalance", labels)->Set(result.imbalance);
  metrics_->histogram("partition.decision_seconds", std::move(labels))
      ->Observe(result.decision_seconds);
}

int CountMigrations(const std::vector<int>& old_assignment,
                    const std::vector<int>& new_assignment) {
  int migrations = 0;
  size_t n = std::min(old_assignment.size(), new_assignment.size());
  for (size_t v = 0; v < n; ++v) {
    if (old_assignment[v] >= 0 && old_assignment[v] != new_assignment[v]) {
      ++migrations;
    }
  }
  return migrations;
}

void RelabelToMinimizeMigrations(const QueryGraph& graph,
                                 const std::vector<int>& old_assignment,
                                 std::vector<int>* new_assignment, int k) {
  DSPS_CHECK(new_assignment != nullptr);
  // overlap[i][j] = vertex weight in old part i and new part j.
  std::vector<std::vector<double>> overlap(k, std::vector<double>(k, 0.0));
  for (int v = 0;
       v < graph.num_vertices() && v < static_cast<int>(old_assignment.size());
       ++v) {
    int o = old_assignment[v];
    int nn = (*new_assignment)[v];
    if (o >= 0 && o < k) overlap[o][nn] += graph.vertex_weight(v);
  }
  // Greedy max-weight matching: repeatedly take the biggest remaining cell.
  std::vector<int> new_to_label(k, -1);
  std::vector<bool> old_used(k, false);
  for (int iter = 0; iter < k; ++iter) {
    int bi = -1, bj = -1;
    double best = -1.0;
    for (int i = 0; i < k; ++i) {
      if (old_used[i]) continue;
      for (int j = 0; j < k; ++j) {
        if (new_to_label[j] >= 0) continue;
        if (overlap[i][j] > best) {
          best = overlap[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    if (bi < 0) break;
    new_to_label[bj] = bi;
    old_used[bi] = true;
  }
  for (int j = 0; j < k; ++j) {
    if (new_to_label[j] < 0) {
      for (int i = 0; i < k; ++i) {
        if (!old_used[i]) {
          new_to_label[j] = i;
          old_used[i] = true;
          break;
        }
      }
    }
  }
  for (int& p : *new_assignment) p = new_to_label[p];
}

// ------------------------------------------------------ ScratchRepartitioner

ScratchRepartitioner::ScratchRepartitioner(MultilevelPartitioner::Config config)
    : partitioner_(config) {}

RepartitionResult ScratchRepartitioner::Repartition(
    const QueryGraph& graph, const std::vector<int>& old_assignment, int k,
    double balance_tolerance) {
  auto start = std::chrono::steady_clock::now();
  std::vector<int> old_padded = PadOld(old_assignment, graph.num_vertices());
  auto result = partitioner_.Partition(graph, k, balance_tolerance);
  DSPS_CHECK(result.ok());
  std::vector<int> assignment = std::move(result).value();
  RelabelToMinimizeMigrations(graph, old_padded, &assignment, k);
  RepartitionResult r = Finish(graph, old_padded, std::move(assignment), k, start);
  RecordMetrics(r);
  return r;
}

// -------------------------------------------------- IncrementalRepartitioner

RepartitionResult IncrementalRepartitioner::Repartition(
    const QueryGraph& graph, const std::vector<int>& old_assignment, int k,
    double balance_tolerance) {
  auto start = std::chrono::steady_clock::now();
  const int n = graph.num_vertices();
  const double cap = balance_tolerance * graph.total_vertex_weight() / k;
  std::vector<int> old_padded = PadOld(old_assignment, n);
  std::vector<int> assignment = old_padded;
  // New queries go to the lightest part (no overlap awareness here).
  std::vector<double> part_weight(k, 0.0);
  for (int v = 0; v < n; ++v) {
    if (assignment[v] >= 0) part_weight[assignment[v]] += graph.vertex_weight(v);
  }
  for (int v = 0; v < n; ++v) {
    if (assignment[v] >= 0) continue;
    int lightest = static_cast<int>(
        std::min_element(part_weight.begin(), part_weight.end()) -
        part_weight.begin());
    assignment[v] = lightest;
    part_weight[lightest] += graph.vertex_weight(v);
  }
  // Drain overloaded parts into the lightest parts, smallest vertices
  // first (fewest migrations per unit of load moved), overlap-oblivious.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.vertex_weight(a) < graph.vertex_weight(b);
  });
  bool changed = true;
  while (changed) {
    changed = false;
    int heaviest = static_cast<int>(
        std::max_element(part_weight.begin(), part_weight.end()) -
        part_weight.begin());
    if (part_weight[heaviest] <= cap) break;
    int lightest = static_cast<int>(
        std::min_element(part_weight.begin(), part_weight.end()) -
        part_weight.begin());
    for (int v : order) {
      if (assignment[v] != heaviest) continue;
      double w_v = graph.vertex_weight(v);
      if (part_weight[lightest] + w_v > cap) continue;
      assignment[v] = lightest;
      part_weight[heaviest] -= w_v;
      part_weight[lightest] += w_v;
      changed = true;
      break;
    }
  }
  RepartitionResult r = Finish(graph, old_padded, std::move(assignment), k, start);
  RecordMetrics(r);
  return r;
}

// ------------------------------------------------------- HybridRepartitioner

HybridRepartitioner::HybridRepartitioner()
    : HybridRepartitioner(Config()) {}

HybridRepartitioner::HybridRepartitioner(const Config& config)
    : config_(config) {}

RepartitionResult HybridRepartitioner::Repartition(
    const QueryGraph& graph, const std::vector<int>& old_assignment, int k,
    double balance_tolerance) {
  auto start = std::chrono::steady_clock::now();
  const int n = graph.num_vertices();
  const double cap = balance_tolerance * graph.total_vertex_weight() / k;
  std::vector<int> old_padded = PadOld(old_assignment, n);
  std::vector<int> assignment = old_padded;
  // New queries placed by interest affinity.
  PlaceNewVertices(graph, &assignment, k, cap);
  std::vector<double> part_weight = graph.PartWeights(assignment, k);
  // Rebalance overloaded parts by evicting the boundary vertex with the
  // best (cut gain per unit load) to an underloaded part.
  std::vector<double> affinity(k, 0.0);
  for (int guard = 0; guard < 4 * n; ++guard) {
    int heaviest = static_cast<int>(
        std::max_element(part_weight.begin(), part_weight.end()) -
        part_weight.begin());
    if (part_weight[heaviest] <= cap) break;
    int best_v = -1, best_p = -1;
    double best_score = -1e300;
    for (int v = 0; v < n; ++v) {
      if (assignment[v] != heaviest) continue;
      double w_v = graph.vertex_weight(v);
      if (w_v <= 0) continue;
      std::fill(affinity.begin(), affinity.end(), 0.0);
      for (const auto& [nb, w] : graph.neighbors(v)) {
        affinity[assignment[nb]] += w;
      }
      for (int p = 0; p < k; ++p) {
        if (p == heaviest) continue;
        if (part_weight[p] + w_v > cap) continue;
        // Cut change if moved: affinity[p] - affinity[heaviest];
        // prefer high gain and heavy vertices (fewer moves needed).
        double score = (affinity[p] - affinity[heaviest]) + 1e-3 * w_v;
        if (score > best_score) {
          best_score = score;
          best_v = v;
          best_p = p;
        }
      }
    }
    if (best_v < 0) break;  // nothing movable
    part_weight[heaviest] -= graph.vertex_weight(best_v);
    part_weight[best_p] += graph.vertex_weight(best_v);
    assignment[best_v] = best_p;
  }
  // Bounded local refinement to recover cut quality.
  FmRefine(graph, &assignment, k, balance_tolerance, config_.refine_passes);
  RepartitionResult r = Finish(graph, old_padded, std::move(assignment), k, start);
  RecordMetrics(r);
  return r;
}

AssignmentQuality EvaluateAssignment(const QueryGraph& graph,
                                     const std::vector<int>& assignment,
                                     int k) {
  AssignmentQuality q;
  q.edge_cut = graph.EdgeCut(assignment);
  q.imbalance = graph.Imbalance(assignment, k);
  return q;
}

std::unique_ptr<Repartitioner> MakeRepartitioner(const std::string& name) {
  if (name == "scratch") return std::make_unique<ScratchRepartitioner>();
  if (name == "incremental") {
    return std::make_unique<IncrementalRepartitioner>();
  }
  if (name == "hybrid") return std::make_unique<HybridRepartitioner>();
  return nullptr;
}

}  // namespace dsps::partition
