#ifndef DSPS_PARTITION_QUERY_GRAPH_H_
#define DSPS_PARTITION_QUERY_GRAPH_H_

#include <vector>

#include "common/ids.h"
#include "engine/plan.h"
#include "interest/box_index.h"
#include "interest/measure.h"

namespace dsps::partition {

/// The weighted query graph of Section 3.2.2: one vertex per query
/// (weight = query load), an undirected edge between two queries whose data
/// interests overlap (weight = arrival rate, bytes/s, of the data
/// interesting to both). Partitioning this graph into k balanced parts with
/// minimum weighted edge cut assigns queries to the k entities.
class QueryGraph {
 public:
  QueryGraph() = default;

  /// Adds a vertex for `query` with the given load weight; returns its
  /// dense index.
  int AddVertex(common::QueryId query, double weight);

  /// Adds (or accumulates onto) the undirected edge {a, b}. Requires
  /// a != b and nonnegative weight; zero-weight edges are ignored.
  void AddEdge(int a, int b, double weight);

  int num_vertices() const { return static_cast<int>(weights_.size()); }
  double vertex_weight(int v) const { return weights_[v]; }
  common::QueryId query(int v) const { return queries_[v]; }
  double total_vertex_weight() const { return total_weight_; }

  /// Adjacency of `v` as (neighbor, weight) pairs.
  const std::vector<std::pair<int, double>>& neighbors(int v) const {
    return adj_[v];
  }

  /// Sum of all edge weights (each undirected edge counted once).
  double total_edge_weight() const { return total_edge_weight_; }

  /// Weighted edge cut of `assignment` (one part id per vertex).
  double EdgeCut(const std::vector<int>& assignment) const;

  /// Per-part vertex-weight sums.
  std::vector<double> PartWeights(const std::vector<int>& assignment,
                                  int k) const;

  /// max part weight / ideal part weight (1.0 = perfectly balanced).
  double Imbalance(const std::vector<int>& assignment, int k) const;

  /// Builds the graph from queries: vertices in order, edges between every
  /// pair with shared interest rate above `min_edge_weight` (bytes/s).
  /// Indexed construction: an inverted stream -> query index plus a
  /// per-stream interest::BoxIndex prune the pair space to genuinely
  /// geometrically-overlapping pairs before the (expensive) shared-rate
  /// measurement; pairs that merely co-subscribe a stream without box
  /// overlap anywhere carry zero shared rate and are skipped. Edges are
  /// emitted ordered by (first shared stream, a, b) — the order the
  /// historical all-pairs scan produced — so adjacency lists and every
  /// downstream partition are bit-identical to it. When `index_stats` is
  /// non-null, the per-stream box indexes' statistics (strategy mix,
  /// memory, spline health) are accumulated into it before they are torn
  /// down.
  static QueryGraph Build(const std::vector<engine::Query>& queries,
                          const interest::StreamCatalog& catalog,
                          double min_edge_weight = 1e-9,
                          interest::IndexStats* index_stats = nullptr);

 private:
  std::vector<common::QueryId> queries_;
  std::vector<double> weights_;
  std::vector<std::vector<std::pair<int, double>>> adj_;
  double total_weight_ = 0.0;
  double total_edge_weight_ = 0.0;
};

/// First element two ascending stream lists share (kInvalidStream if
/// disjoint) — the stream a pairwise per-stream scan first sees a pair at,
/// which fixes the graph's edge-emission order.
common::StreamId FirstSharedStream(const std::vector<common::StreamId>& a,
                                   const std::vector<common::StreamId>& b);

}  // namespace dsps::partition

#endif  // DSPS_PARTITION_QUERY_GRAPH_H_
