#ifndef DSPS_PARTITION_PARTITIONER_H_
#define DSPS_PARTITION_PARTITIONER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "partition/query_graph.h"

namespace dsps::partition {

/// Produces a k-way assignment of query-graph vertices to entities,
/// balancing vertex weight (load) while minimizing the weighted edge cut
/// (duplicate dissemination traffic).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual const char* name() const = 0;

  /// Returns one part id in [0, k) per vertex. `balance_tolerance` bounds
  /// each part's weight to tolerance * (total/k), best effort: a single
  /// overweight vertex can exceed it.
  virtual common::Result<std::vector<int>> Partition(
      const QueryGraph& graph, int k, double balance_tolerance) = 0;
};

/// Baseline: longest-processing-time greedy load balancing that ignores
/// interest overlap entirely (the "load sharing at query level, overlap
/// oblivious" regime). Excellent balance, arbitrary edge cut.
class LoadOnlyPartitioner : public Partitioner {
 public:
  const char* name() const override { return "load-only"; }
  common::Result<std::vector<int>> Partition(const QueryGraph& graph, int k,
                                             double balance_tolerance) override;
};

/// Multilevel heuristic (METIS-style): heavy-edge-matching coarsening,
/// greedy edge-aware initial partitioning at the coarsest level, then
/// projection with boundary refinement at every level.
class MultilevelPartitioner : public Partitioner {
 public:
  struct Config {
    /// Stop coarsening when at most this many vertices remain (or no
    /// further matching progress is possible).
    int coarsen_to = 64;
    /// Refinement sweeps per level.
    int refine_passes = 4;
    /// Independent greedy-growing restarts at the coarsest level; the
    /// best (balance, cut) result wins. Growth is seed-sensitive on small
    /// graphs, so a few restarts buy a lot of robustness.
    int init_restarts = 4;
    uint64_t seed = 1;
  };

  MultilevelPartitioner();
  explicit MultilevelPartitioner(const Config& config);

  const char* name() const override { return "multilevel"; }
  common::Result<std::vector<int>> Partition(const QueryGraph& graph, int k,
                                             double balance_tolerance) override;

 private:
  Config config_;
};

/// Greedy edge-aware initial partitioning: vertices in descending weight
/// order, each placed on the part it has the most edge weight to, among
/// parts that stay within the balance bound (lightest part as fallback).
std::vector<int> GreedyGrowPartition(const QueryGraph& graph, int k,
                                     double balance_tolerance,
                                     common::Rng* rng);

/// Boundary refinement (simplified Fiduccia-Mattheyses): repeatedly moves
/// the vertex with the best cut gain to a neighboring part, subject to the
/// balance bound. Returns the number of moves applied.
int FmRefine(const QueryGraph& graph, std::vector<int>* assignment, int k,
             double balance_tolerance, int passes);

}  // namespace dsps::partition

#endif  // DSPS_PARTITION_PARTITIONER_H_
