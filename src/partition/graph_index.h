#ifndef DSPS_PARTITION_GRAPH_INDEX_H_
#define DSPS_PARTITION_GRAPH_INDEX_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "engine/plan.h"
#include "interest/box_index.h"
#include "interest/measure.h"
#include "partition/query_graph.h"

namespace dsps::partition {

/// Incrementally maintained weighted query graph (Section 3.2.2). A
/// repartition round used to rebuild the full graph from scratch — every
/// query pair re-measured — even though a round of churn only touches a
/// handful of queries. This index keeps per-stream interest::BoxIndex
/// structures over the live queries and applies graph *deltas*: AddQuery
/// measures the new query only against the queries whose boxes genuinely
/// overlap its own, RemoveQuery drops the vertex and its incident edges,
/// UpdateLoad touches one vertex weight.
///
/// Graph() materializes a QueryGraph that is identical — vertex order,
/// adjacency order, weights — to QueryGraph::Build over the live queries
/// in ascending query-id order, so swapping a full rebuild for the index
/// changes no partition decision (property-tested in graph_index_test).
class QueryGraphIndex {
 public:
  /// `catalog` must outlive this object and contain every stream the
  /// queries' edge weights should account for (streams registered later
  /// are picked up by subsequent AddQuery calls only).
  explicit QueryGraphIndex(const interest::StreamCatalog* catalog,
                           double min_edge_weight = 1e-9);

  /// Inserts `query` and measures shared-rate edges against the existing
  /// queries whose interest boxes overlap its own on some catalog stream.
  /// Re-adding a live id replaces it (remove + add).
  void AddQuery(const engine::Query& query);

  /// Bulk install: applies the deltas of `queries` in order. Identical to
  /// calling AddQuery per element — this is the batched-install entry
  /// point, letting callers defer a whole submission batch's graph
  /// maintenance into one cache-warm pass.
  void AddQueries(const std::vector<engine::Query>& queries);

  /// Aggregated statistics of the per-stream box indexes.
  interest::IndexStats StreamIndexStats() const;

  /// Removes the query, its edges, and its spatial registrations. No-op
  /// for unknown ids.
  void RemoveQuery(common::QueryId id);

  /// Replaces the query's vertex load weight (edges are untouched — load
  /// does not enter edge weights). No-op for unknown ids.
  void UpdateLoad(common::QueryId id, double load);

  bool Contains(common::QueryId id) const { return vertices_.count(id) > 0; }
  size_t size() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Materializes the current graph: vertices ascending by query id,
  /// edges ordered by (first shared stream, a, b) — exactly
  /// QueryGraph::Build's output over the same queries.
  QueryGraph Graph() const;

 private:
  struct VertexInfo {
    double load = 0.0;
    interest::InterestSet interest;
    /// Cached ascending stream list (fixes edge-emission order).
    std::vector<common::StreamId> streams;
    std::set<common::QueryId> neighbors;
  };
  struct EdgeInfo {
    double weight = 0.0;
    common::StreamId first_shared = common::kInvalidStream;
  };
  using EdgeKey = std::pair<common::QueryId, common::QueryId>;

  static EdgeKey MakeEdgeKey(common::QueryId a, common::QueryId b) {
    return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
  }

  const interest::StreamCatalog* catalog_;
  double min_edge_weight_;
  std::map<common::QueryId, VertexInfo> vertices_;
  std::map<EdgeKey, EdgeInfo> edges_;
  /// Per catalog stream: spatial index of the live queries' boxes
  /// (subscriber = query id), created lazily on first subscription.
  std::map<common::StreamId, interest::BoxIndex> stream_index_;
};

}  // namespace dsps::partition

#endif  // DSPS_PARTITION_GRAPH_INDEX_H_
