#include "partition/partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dsps::partition {

namespace {

common::Status ValidateArgs(const QueryGraph& graph, int k) {
  if (k <= 0) return common::Status::InvalidArgument("k must be positive");
  if (graph.num_vertices() == 0) {
    return common::Status::InvalidArgument("empty graph");
  }
  return common::Status::OK();
}

/// Indices of vertices sorted by descending weight.
std::vector<int> ByDescendingWeight(const QueryGraph& graph) {
  std::vector<int> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.vertex_weight(a) > graph.vertex_weight(b);
  });
  return order;
}

}  // namespace

// -------------------------------------------------------- LoadOnlyPartitioner

common::Result<std::vector<int>> LoadOnlyPartitioner::Partition(
    const QueryGraph& graph, int k, double /*balance_tolerance*/) {
  DSPS_RETURN_IF_ERROR(ValidateArgs(graph, k));
  std::vector<int> assignment(graph.num_vertices(), 0);
  std::vector<double> part_weight(k, 0.0);
  for (int v : ByDescendingWeight(graph)) {
    int lightest = static_cast<int>(
        std::min_element(part_weight.begin(), part_weight.end()) -
        part_weight.begin());
    assignment[v] = lightest;
    part_weight[lightest] += graph.vertex_weight(v);
  }
  return assignment;
}

// ----------------------------------------------------------- GreedyGrow init

std::vector<int> GreedyGrowPartition(const QueryGraph& graph, int k,
                                     double balance_tolerance,
                                     common::Rng* rng) {
  // Classic greedy graph growing (GGP): grow one part at a time from a
  // random seed, always absorbing the unassigned vertex with the highest
  // affinity (edge weight) to the growing part, until the part reaches its
  // ideal weight. This keeps natural clusters contiguous, unlike per-vertex
  // round-robin placement which shreds them across parts.
  (void)balance_tolerance;  // growth targets the ideal weight directly
  const int n = graph.num_vertices();
  const double ideal = graph.total_vertex_weight() / std::max(1, k);
  std::vector<int> assignment(n, -1);
  std::vector<double> affinity(n, 0.0);  // affinity of v to the current part
  int unassigned = n;
  for (int p = 0; p < k - 1 && unassigned > 0; ++p) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    double part_weight = 0.0;
    // Random unassigned seed.
    int seed = -1;
    if (rng != nullptr) {
      int skip = static_cast<int>(rng->NextUint64(unassigned));
      for (int v = 0; v < n; ++v) {
        if (assignment[v] == -1 && skip-- == 0) {
          seed = v;
          break;
        }
      }
    } else {
      for (int v = 0; v < n && seed < 0; ++v) {
        if (assignment[v] == -1) seed = v;
      }
    }
    DSPS_CHECK(seed >= 0);
    int next = seed;
    while (next >= 0 && part_weight < ideal) {
      assignment[next] = p;
      part_weight += graph.vertex_weight(next);
      --unassigned;
      for (const auto& [nb, w] : graph.neighbors(next)) {
        if (assignment[nb] == -1) affinity[nb] += w;
      }
      // Highest-affinity unassigned vertex; falls back to any unassigned
      // (disconnected frontier) so growth never stalls.
      next = -1;
      double best_aff = -1.0;
      for (int v = 0; v < n; ++v) {
        if (assignment[v] == -1 && affinity[v] > best_aff) {
          best_aff = affinity[v];
          next = v;
        }
      }
    }
  }
  // Remainder forms the last part.
  for (int v = 0; v < n; ++v) {
    if (assignment[v] == -1) assignment[v] = k - 1;
  }
  return assignment;
}

// ---------------------------------------------------------------- FM refine

int FmRefine(const QueryGraph& graph, std::vector<int>* assignment, int k,
             double balance_tolerance, int passes) {
  DSPS_CHECK(assignment != nullptr);
  const int n = graph.num_vertices();
  DSPS_CHECK(static_cast<int>(assignment->size()) == n);
  const double cap =
      balance_tolerance * graph.total_vertex_weight() / std::max(1, k);
  std::vector<double> part_weight = graph.PartWeights(*assignment, k);
  int total_moves = 0;
  std::vector<double> affinity(k, 0.0);
  for (int pass = 0; pass < passes; ++pass) {
    int moves = 0;
    for (int v = 0; v < n; ++v) {
      int home = (*assignment)[v];
      std::fill(affinity.begin(), affinity.end(), 0.0);
      for (const auto& [nb, w] : graph.neighbors(v)) {
        affinity[(*assignment)[nb]] += w;
      }
      double w_v = graph.vertex_weight(v);
      int best = home;
      double best_gain = 0.0;
      for (int p = 0; p < k; ++p) {
        if (p == home) continue;
        if (part_weight[p] + w_v > cap) continue;
        double gain = affinity[p] - affinity[home];
        if (gain > best_gain) {
          // Strictly cut-improving move.
          best = p;
          best_gain = gain;
        } else if (gain == 0.0 && best == home &&
                   part_weight[home] > part_weight[p] + w_v) {
          // Cut-neutral move that strictly improves balance.
          best = p;
        }
      }
      if (best != home) {
        (*assignment)[v] = best;
        part_weight[home] -= w_v;
        part_weight[best] += w_v;
        ++moves;
      }
    }
    total_moves += moves;
    if (moves == 0) break;
  }
  return total_moves;
}

// --------------------------------------------------------------- Multilevel

namespace {

/// One coarsening level: the coarse graph plus the fine->coarse map.
struct Level {
  QueryGraph graph;
  std::vector<int> fine_to_coarse;
};

/// Heavy-edge matching coarsening step. Returns false if no pair matched
/// (graph cannot shrink further).
bool Coarsen(const QueryGraph& fine, common::Rng* rng, Level* out) {
  const int n = fine.num_vertices();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  std::vector<int> match(n, -1);
  int matched_pairs = 0;
  for (int v : order) {
    if (match[v] != -1) continue;
    int best = -1;
    double best_w = -1.0;
    for (const auto& [nb, w] : fine.neighbors(v)) {
      if (match[nb] == -1 && w > best_w) {
        best = nb;
        best_w = w;
      }
    }
    if (best >= 0) {
      match[v] = best;
      match[best] = v;
      ++matched_pairs;
    }
  }
  if (matched_pairs == 0) return false;
  out->fine_to_coarse.assign(n, -1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    if (out->fine_to_coarse[v] != -1) continue;
    out->fine_to_coarse[v] = next;
    if (match[v] != -1) out->fine_to_coarse[match[v]] = next;
    ++next;
  }
  // Coarse vertices: weight sums; queries are representative-only.
  std::vector<double> cw(next, 0.0);
  for (int v = 0; v < n; ++v) cw[out->fine_to_coarse[v]] += fine.vertex_weight(v);
  for (int c = 0; c < next; ++c) out->graph.AddVertex(-1, cw[c]);
  // Aggregate edges (drop self-loops).
  for (int v = 0; v < n; ++v) {
    for (const auto& [nb, w] : fine.neighbors(v)) {
      if (nb <= v) continue;
      int a = out->fine_to_coarse[v], b = out->fine_to_coarse[nb];
      if (a != b) out->graph.AddEdge(a, b, w);
    }
  }
  return true;
}

}  // namespace

MultilevelPartitioner::MultilevelPartitioner()
    : MultilevelPartitioner(Config()) {}

MultilevelPartitioner::MultilevelPartitioner(const Config& config)
    : config_(config) {}

common::Result<std::vector<int>> MultilevelPartitioner::Partition(
    const QueryGraph& graph, int k, double balance_tolerance) {
  DSPS_RETURN_IF_ERROR(ValidateArgs(graph, k));
  common::Rng rng(config_.seed);
  // Coarsening phase.
  std::vector<Level> levels;
  const QueryGraph* current = &graph;
  while (current->num_vertices() > std::max(config_.coarsen_to, k)) {
    Level level;
    if (!Coarsen(*current, &rng, &level)) break;
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }
  // Initial partition at the coarsest level: several greedy-growing
  // restarts, keeping the best (feasible-balance first, then cut).
  std::vector<int> assignment;
  double best_cut = 0.0;
  double best_imb = 0.0;
  for (int restart = 0; restart < std::max(1, config_.init_restarts);
       ++restart) {
    std::vector<int> candidate =
        GreedyGrowPartition(*current, k, balance_tolerance, &rng);
    FmRefine(*current, &candidate, k, balance_tolerance,
             config_.refine_passes);
    double cut = current->EdgeCut(candidate);
    double imb = current->Imbalance(candidate, k);
    bool feasible = imb <= balance_tolerance + 1e-9;
    bool best_feasible = !assignment.empty() && best_imb <= balance_tolerance + 1e-9;
    bool better = assignment.empty() ||
                  (feasible && !best_feasible) ||
                  (feasible == best_feasible &&
                   (cut < best_cut ||
                    (cut == best_cut && imb < best_imb)));
    if (better) {
      assignment = std::move(candidate);
      best_cut = cut;
      best_imb = imb;
    }
  }
  // Uncoarsening with per-level refinement.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const QueryGraph& finer =
        (it + 1 == levels.rend()) ? graph : (it + 1)->graph;
    std::vector<int> fine_assignment(finer.num_vertices());
    for (int v = 0; v < finer.num_vertices(); ++v) {
      fine_assignment[v] = assignment[it->fine_to_coarse[v]];
    }
    assignment = std::move(fine_assignment);
    FmRefine(finer, &assignment, k, balance_tolerance, config_.refine_passes);
  }
  return assignment;
}

}  // namespace dsps::partition
