#include "dissemination/reorganizer.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace dsps::dissemination {

using sim::Distance;
using sim::Point;

TreeReorganizer::TreeReorganizer() : TreeReorganizer(Config()) {}
TreeReorganizer::TreeReorganizer(const Config& config) : config_(config) {}

double TreeReorganizer::TreeCost(const DisseminationTree& tree,
                                 double depth_penalty_units) {
  double cost = 0.0;
  // Children of the source (depth 1, parent depth 0).
  for (common::EntityId id : tree.Children(common::kInvalidEntity)) {
    cost += Distance(tree.source_position(), tree.position(id));
  }
  // Everyone else: walk children lists so each entity is counted once.
  struct Item {
    common::EntityId id;
    int depth;
  };
  std::vector<Item> stack;
  for (common::EntityId id : tree.Children(common::kInvalidEntity)) {
    stack.push_back(Item{id, 1});
  }
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    for (common::EntityId child : tree.Children(item.id)) {
      cost += Distance(tree.position(item.id), tree.position(child)) +
              depth_penalty_units * item.depth;
      stack.push_back(Item{child, item.depth + 1});
    }
  }
  return cost;
}

TreeReorganizer::RoundStats TreeReorganizer::Round(
    DisseminationTree* tree) const {
  DSPS_CHECK(tree != nullptr);
  RoundStats stats;
  stats.cost_before = TreeCost(*tree);

  struct Move {
    common::EntityId entity;
    common::EntityId new_parent;
    double gain;
  };

  for (int move_count = 0; move_count < config_.max_moves_per_round;
       ++move_count) {
    // Collect all entities (BFS from the source).
    std::vector<common::EntityId> entities;
    std::vector<common::EntityId> stack =
        tree->Children(common::kInvalidEntity);
    while (!stack.empty()) {
      common::EntityId id = stack.back();
      stack.pop_back();
      entities.push_back(id);
      for (common::EntityId child : tree->Children(id)) stack.push_back(child);
    }
    // Best single move, by attachment cost = distance to the parent plus
    // a per-level penalty (each extra hop costs base latency even at zero
    // distance).
    auto depth_of = [&](common::EntityId node) {
      if (node == common::kInvalidEntity) return 0;
      auto d = tree->Depth(node);
      DSPS_CHECK(d.ok());
      return d.value();
    };
    auto subtree_size = [&](common::EntityId root) {
      int count = 0;
      std::vector<common::EntityId> s{root};
      while (!s.empty()) {
        common::EntityId cur = s.back();
        s.pop_back();
        ++count;
        for (common::EntityId c : tree->Children(cur)) s.push_back(c);
      }
      return count;
    };
    Move best{common::kInvalidEntity, common::kInvalidEntity, 0.0};
    for (common::EntityId id : entities) {
      auto parent = tree->Parent(id);
      DSPS_CHECK(parent.ok());
      const Point& my_pos = tree->position(id);
      int old_parent_depth = depth_of(parent.value());
      // Moving `id` re-depths its whole subtree: charge the depth delta
      // for every member.
      int members = subtree_size(id);
      double current =
          (parent.value() == common::kInvalidEntity
               ? Distance(tree->source_position(), my_pos)
               : Distance(tree->position(parent.value()), my_pos)) +
          config_.depth_penalty_units * old_parent_depth;
      auto consider = [&](common::EntityId candidate, const Point& pos) {
        if (candidate == id || candidate == parent.value()) return;
        if (tree->IsDescendant(id, candidate)) return;
        if (static_cast<int>(tree->Children(candidate).size()) >=
            tree->max_fanout()) {
          return;
        }
        int depth_delta = depth_of(candidate) - old_parent_depth;
        double cost = Distance(pos, my_pos) +
                      config_.depth_penalty_units * depth_of(candidate) +
                      config_.depth_penalty_units * depth_delta *
                          static_cast<double>(members - 1);
        double gain = current - cost;
        if (gain > best.gain && gain >= config_.min_gain_frac * current) {
          best = Move{id, candidate, gain};
        }
      };
      if (parent.value() != common::kInvalidEntity) {
        consider(common::kInvalidEntity, tree->source_position());
      }
      for (common::EntityId other : entities) {
        consider(other, tree->position(other));
      }
    }
    if (best.entity == common::kInvalidEntity) break;
    common::Status s = tree->Reattach(best.entity, best.new_parent);
    DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    stats.moves += 1;
  }
  stats.cost_after = TreeCost(*tree);
  return stats;
}

}  // namespace dsps::dissemination
