#include "dissemination/disseminator.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace dsps::dissemination {

Disseminator::Disseminator(sim::Network* network, const Config& config)
    : network_(network), config_(config) {
  DSPS_CHECK(network != nullptr);
  if (config_.metrics != nullptr) {
    route_lookup_us_ = config_.metrics->histogram("dissem.route_lookup_us");
  }
  if (config_.reliable) {
    DSPS_CHECK(config_.retry_timeout_s > 0);
    DSPS_CHECK(config_.retry_backoff >= 1.0);
    DSPS_CHECK(config_.max_retries >= 0);
    if (config_.metrics != nullptr) {
      retries_counter_ = config_.metrics->counter("dissemination.retries");
      delivery_failed_counter_ =
          config_.metrics->counter("dissemination.delivery_failed");
      duplicates_counter_ =
          config_.metrics->counter("dissemination.duplicates_suppressed");
      retries_cancelled_counter_ =
          config_.metrics->counter("dissemination.retries_cancelled");
    }
  }
}

common::Status Disseminator::AddSource(common::StreamId stream,
                                       common::SimNodeId source_node) {
  if (trees_.count(stream) > 0) {
    return common::Status::AlreadyExists("stream already has a source");
  }
  trees_[stream] = std::make_unique<DisseminationTree>(
      stream, network_->position(source_node), config_.tree);
  source_nodes_[stream] = source_node;
  // The source must hear hop acks in reliable mode; the handler is inert
  // otherwise (nothing ever addresses a source in fire-and-forget mode).
  network_->SetHandler(source_node, [this](const sim::Message& msg) {
    HandleMessage(msg);
  });
  return common::Status::OK();
}

common::Status Disseminator::AddEntity(common::EntityId id,
                                       common::SimNodeId gateway) {
  if (gateways_.count(id) > 0) {
    return common::Status::AlreadyExists("entity already registered");
  }
  gateways_[id] = gateway;
  by_node_[gateway] = id;
  for (auto& [stream, tree] : trees_) {
    DSPS_RETURN_IF_ERROR(tree->AddEntity(id, network_->position(gateway)));
  }
  network_->SetHandler(gateway, [this](const sim::Message& msg) {
    HandleMessage(msg);
  });
  return common::Status::OK();
}

common::Status Disseminator::RemoveEntity(common::EntityId id) {
  auto it = gateways_.find(id);
  if (it == gateways_.end()) {
    return common::Status::NotFound("entity not registered");
  }
  for (auto& [stream, tree] : trees_) {
    if (tree->Contains(id)) {
      DSPS_RETURN_IF_ERROR(tree->RemoveEntity(id));
    }
  }
  // Abandon reliable sends addressed to the removed entity (it will never
  // ack — counted as delivery failures) and cancel sends *from* its
  // gateway (the sender process is gone; its retransmissions would only
  // burn simulated bandwidth on a peer known dead, running to max_retries
  // for nothing — counted as cancelled). Each settled send's retry timer
  // is cancelled too, reclaiming its event-heap slot immediately.
  if (config_.reliable) {
    common::SimNodeId gone = it->second;
    for (auto p = pending_.begin(); p != pending_.end();) {
      if (p->second.msg.to == gone) {
        delivery_failures_ += 1;
        if (delivery_failed_counter_ != nullptr) {
          delivery_failed_counter_->Increment();
        }
        network_->simulator()->Cancel(p->second.timer);
        p = pending_.erase(p);
      } else if (p->second.msg.from == gone) {
        retries_cancelled_ += 1;
        if (retries_cancelled_counter_ != nullptr) {
          retries_cancelled_counter_->Increment();
        }
        network_->simulator()->Cancel(p->second.timer);
        p = pending_.erase(p);
      } else {
        ++p;
      }
    }
  }
  by_node_.erase(it->second);
  gateways_.erase(it);
  return common::Status::OK();
}

common::Status Disseminator::SetEntityInterest(common::EntityId id,
                                               common::StreamId stream,
                                               std::vector<interest::Box> boxes) {
  auto it = trees_.find(stream);
  if (it == trees_.end()) return common::Status::NotFound("unknown stream");
  if (gateways_.count(id) == 0) {
    return common::Status::NotFound("unknown entity");
  }
  it->second->SetLocalInterest(id, std::move(boxes));
  return common::Status::OK();
}

interest::IndexStats Disseminator::RouteIndexStats() const {
  interest::IndexStats stats;
  for (const auto& [stream, tree] : trees_) {
    tree->CollectIndexStats(&stats);
  }
  return stats;
}

void Disseminator::SetDeliveryHandler(DeliveryHandler handler) {
  delivery_ = std::move(handler);
}

Disseminator::NodeCounters& Disseminator::CountersFor(common::StreamId stream,
                                                      common::EntityId node) {
  auto it = node_counters_.find({stream, node});
  if (it != node_counters_.end()) return it->second;
  telemetry::Labels labels = telemetry::MakeLabels(
      {{"stream", std::to_string(stream)},
       {"node", node == common::kInvalidEntity ? std::string("source")
                                               : std::to_string(node)}});
  NodeCounters counters;
  counters.forwarded =
      config_.metrics->counter("dissemination.forwarded", labels);
  counters.filtered = config_.metrics->counter("dissemination.filtered", labels);
  counters.delivered =
      config_.metrics->counter("dissemination.delivered", std::move(labels));
  return node_counters_.emplace(std::make_pair(stream, node), counters)
      .first->second;
}

void Disseminator::Forward(const DisseminationTree& tree,
                           common::EntityId from, common::SimNodeId from_node,
                           const TupleEnvelope& env) {
  std::vector<common::EntityId>& targets = targets_scratch_;
  if (route_lookup_us_ != nullptr) {
    auto start = std::chrono::steady_clock::now();
    tree.ForwardTargets(from, env.point->data(), config_.early_filter,
                        &targets);
    route_lookup_us_->Observe(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
  } else {
    tree.ForwardTargets(from, env.point->data(), config_.early_filter,
                        &targets);
  }
  if (config_.metrics != nullptr) {
    NodeCounters& counters = CountersFor(env.tuple->stream, from);
    counters.forwarded->Increment(static_cast<int64_t>(targets.size()));
    counters.filtered->Increment(tree.ChildCount(from) -
                                 static_cast<int64_t>(targets.size()));
  }
  if (targets.empty()) return;
  // One hop is a batch: every outgoing message shares the same source,
  // size, and trace id, so hoist them and only the destination varies.
  const int64_t size_bytes = env.tuple->SizeBytes();
  const int64_t trace_id = env.tuple->trace_id;
  for (common::EntityId target : targets) {
    sim::Message msg;
    msg.from = from_node;
    msg.to = gateways_.at(target);
    msg.type = kMsgTupleForward;
    msg.size_bytes = size_bytes;
    msg.trace_id = trace_id;
    if (config_.reliable) {
      TupleEnvelope reliable_env = env;
      reliable_env.seq = next_seq_++;
      msg.payload = std::move(reliable_env);
      SendReliable(std::move(msg));
    } else {
      msg.payload = env;
      common::Status s = network_->Send(std::move(msg));
      DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    }
    ++forwards_;
  }
}

void Disseminator::SendReliable(sim::Message msg) {
  int64_t seq = std::any_cast<const TupleEnvelope&>(msg.payload).seq;
  PendingSend pending;
  pending.msg = msg;
  pending.retries_left = config_.max_retries;
  pending.timeout_s = config_.retry_timeout_s;
  pending_[seq] = std::move(pending);
  common::Status s = network_->Send(std::move(msg));
  DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  ScheduleRetry(seq, config_.retry_timeout_s);
}

void Disseminator::ScheduleRetry(int64_t seq, double timeout_s) {
  sim::TimerId timer =
      network_->simulator()->ScheduleCancellable(timeout_s, [this, seq]() {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // settled in the meantime
    PendingSend& p = it->second;
    if (p.retries_left <= 0) {
      // Bounded retries exhausted: the hop failed for good. Counted so
      // the loss is observable; the tuple is gone for this subtree.
      delivery_failures_ += 1;
      if (delivery_failed_counter_ != nullptr) {
        delivery_failed_counter_->Increment();
      }
      pending_.erase(it);
      return;
    }
    p.retries_left -= 1;
    p.timeout_s *= config_.retry_backoff;
    retries_ += 1;
    if (retries_counter_ != nullptr) retries_counter_->Increment();
    common::Status s = network_->Send(p.msg);
    DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
    ScheduleRetry(seq, p.timeout_s);
  });
  auto it = pending_.find(seq);
  if (it != pending_.end()) it->second.timer = timer;
}

void Disseminator::SendAck(common::SimNodeId from_node,
                           common::SimNodeId to_node, int64_t seq) {
  sim::Message ack;
  ack.from = from_node;
  ack.to = to_node;
  ack.type = kMsgTupleAck;
  ack.size_bytes = config_.ack_bytes;
  ack.payload = TupleAckEnvelope{seq};
  common::Status s = network_->Send(std::move(ack));
  DSPS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
}

common::Status Disseminator::Publish(const engine::Tuple& tuple) {
  auto it = trees_.find(tuple.stream);
  if (it == trees_.end()) return common::Status::NotFound("unknown stream");
  TupleEnvelope env;
  if (config_.trace != nullptr && config_.trace->enabled()) {
    engine::Tuple traced = tuple;
    traced.trace_id = config_.trace->MaybeStartTrace();
    if (traced.trace_id != 0) {
      // Anchor span: covers source-side dwell from the tuple's logical
      // timestamp to the moment it enters the dissemination layer.
      config_.trace->Record(traced.trace_id, telemetry::Stage::kSourceEmit,
                            tuple.timestamp,
                            network_->simulator()->now());
    }
    env.tuple = std::make_shared<const engine::Tuple>(std::move(traced));
  } else {
    env.tuple = std::make_shared<const engine::Tuple>(tuple);
  }
  auto point = std::make_shared<std::vector<double>>();
  point->reserve(tuple.values.size());
  for (const engine::Value& v : tuple.values) {
    point->push_back(engine::AsDouble(v));
  }
  env.point = std::move(point);
  Forward(*it->second, common::kInvalidEntity, source_nodes_.at(tuple.stream),
          env);
  return common::Status::OK();
}

bool Disseminator::HandleMessage(const sim::Message& msg) {
  if (msg.type == kMsgTupleAck) {
    const auto* ack = std::any_cast<TupleAckEnvelope>(&msg.payload);
    DSPS_CHECK(ack != nullptr);
    auto it = pending_.find(ack->seq);
    if (it != pending_.end()) {
      network_->simulator()->Cancel(it->second.timer);
      pending_.erase(it);
    }
    return true;
  }
  if (msg.type != kMsgTupleForward) return false;
  auto node_it = by_node_.find(msg.to);
  if (node_it == by_node_.end()) return false;
  common::EntityId entity = node_it->second;
  const auto* env = std::any_cast<TupleEnvelope>(&msg.payload);
  DSPS_CHECK(env != nullptr);
  if (env->seq != 0) {
    // Reliable hop: always ack (the sender may be retrying because our
    // previous ack was lost), then suppress re-deliveries so retries and
    // network duplicates never double-process or double-forward.
    SendAck(msg.to, msg.from, env->seq);
    if (!seen_seqs_.insert(env->seq).second) {
      duplicates_suppressed_ += 1;
      if (duplicates_counter_ != nullptr) duplicates_counter_->Increment();
      return true;
    }
  }
  const DisseminationTree* tree = trees_.at(env->tuple->stream).get();
  if (tree->LocalMatch(entity, env->point->data())) {
    ++delivered_;
    if (config_.metrics != nullptr) {
      CountersFor(env->tuple->stream, entity).delivered->Increment();
    }
    if (delivery_) delivery_(entity, *env->tuple);
  }
  // Forward down the tree.
  Forward(*tree, entity, msg.to, *env);
  return true;
}

const DisseminationTree* Disseminator::tree(common::StreamId stream) const {
  auto it = trees_.find(stream);
  return it == trees_.end() ? nullptr : it->second.get();
}

DisseminationTree* Disseminator::mutable_tree(common::StreamId stream) {
  auto it = trees_.find(stream);
  return it == trees_.end() ? nullptr : it->second.get();
}

}  // namespace dsps::dissemination
