#ifndef DSPS_DISSEMINATION_DISSEMINATOR_H_
#define DSPS_DISSEMINATION_DISSEMINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dissemination/tree.h"
#include "engine/tuple.h"
#include "sim/network.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace dsps::dissemination {

/// Message type used on the simulated network for tuple forwarding.
inline constexpr int kMsgTupleForward = 101;
/// Hop-level acknowledgment of a reliable kMsgTupleForward.
inline constexpr int kMsgTupleAck = 102;

/// Payload of a kMsgTupleForward message.
struct TupleEnvelope {
  std::shared_ptr<const engine::Tuple> tuple;
  /// Numeric projection of the tuple, precomputed once at the source.
  std::shared_ptr<const std::vector<double>> point;
  /// Reliable-mode sequence number (0 = fire-and-forget). Unique per
  /// Disseminator; the receiver acks it and suppresses re-deliveries.
  int64_t seq = 0;
};

/// Payload of a kMsgTupleAck message.
struct TupleAckEnvelope {
  int64_t seq = 0;
};

/// Runs the dissemination trees of all streams over the simulated network:
/// sources publish tuples, each entity's wrapper/gateway node forwards them
/// down its per-stream tree (optionally early-filtered by subtree
/// interest), and locally-matching tuples are handed to the entity.
class Disseminator {
 public:
  struct Config {
    DisseminationTree::Config tree;
    /// Apply subtree-interest early filtering (Section 3.1); false =
    /// forward-everything-to-children baseline.
    bool early_filter = true;
    /// Reliable forwarding for lossy networks (fault-injection runs):
    /// every tuple-forward hop carries a sequence number, the receiver
    /// acks it, and unacked sends are retried with bounded exponential
    /// backoff; re-deliveries are suppressed by sequence number, so each
    /// hop is exactly-once under loss and duplication. Off by default —
    /// when false no acks, sequence numbers, or timers exist and the wire
    /// traffic is bit-identical to the fire-and-forget build.
    bool reliable = false;
    /// First retransmission fires this long after an unacked send...
    double retry_timeout_s = 0.05;
    /// ...and each further one waits `retry_backoff` times longer.
    double retry_backoff = 2.0;
    /// Retransmissions per message before the hop is declared failed
    /// (counted in dissemination.delivery_failed — never silent).
    int max_retries = 4;
    /// Bytes of a kMsgTupleAck on the wire.
    int64_t ack_bytes = 16;
    /// Optional telemetry (null = disabled, zero overhead). With metrics,
    /// each tree node exports dissemination.forwarded / .filtered /
    /// .delivered counters labeled {stream, node}. With a trace log,
    /// sampled publications start traces (source_emit anchor spans) that
    /// then follow the tuple through the whole system.
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::TraceLog* trace = nullptr;
  };

  /// `network` must outlive this object.
  Disseminator(sim::Network* network, const Config& config);

  /// Registers a stream source at `source_node`. Must precede AddEntity
  /// calls for trees of this stream.
  common::Status AddSource(common::StreamId stream,
                           common::SimNodeId source_node);

  /// Registers an entity's gateway node and attaches it to every stream's
  /// tree. Installs a network handler on the gateway.
  common::Status AddEntity(common::EntityId id, common::SimNodeId gateway);

  /// Detaches an entity from every tree (children re-attach) and stops
  /// delivering to it. Used for failures and departures.
  common::Status RemoveEntity(common::EntityId id);

  /// Sets the entity's local interest in `stream` (union of its queries'
  /// boxes on that stream).
  common::Status SetEntityInterest(common::EntityId id,
                                   common::StreamId stream,
                                   std::vector<interest::Box> boxes);

  /// Called whenever a tuple matching the entity's local interest arrives
  /// at its gateway.
  using DeliveryHandler =
      std::function<void(common::EntityId, const engine::Tuple&)>;
  void SetDeliveryHandler(DeliveryHandler handler);

  /// Publishes a tuple at its stream's source: sends it to the (filtered)
  /// first-level children. Delivery and further forwarding happen inside
  /// the simulation as messages arrive.
  common::Status Publish(const engine::Tuple& tuple);

  /// Handles a network message addressed to a registered gateway. Exposed
  /// so an outer runtime that owns the node handlers can dispatch by
  /// message type. Returns true if the message was consumed.
  bool HandleMessage(const sim::Message& msg);

  const DisseminationTree* tree(common::StreamId stream) const;
  DisseminationTree* mutable_tree(common::StreamId stream);

  /// Tuples delivered to entities (local-interest matches).
  int64_t delivered_count() const { return delivered_; }
  /// Tuple-forward messages sent (source + entity hops).
  int64_t forward_count() const { return forwards_; }

  /// Reliable-mode statistics (all zero when Config::reliable is false).
  int64_t retries_count() const { return retries_; }
  int64_t delivery_failures_count() const { return delivery_failures_; }
  int64_t duplicates_suppressed_count() const {
    return duplicates_suppressed_;
  }
  /// Pending sends abandoned because their *sender* gateway was removed
  /// (RemoveEntity): a dead process cannot retransmit, so its ack/retry
  /// timers are cancelled instead of running to max_retries.
  int64_t retries_cancelled_count() const { return retries_cancelled_; }
  /// Sends awaiting an ack right now.
  size_t pending_reliable_count() const { return pending_.size(); }

  /// Aggregated routing-cache index statistics across every stream tree
  /// (strategy mix, memory, spline health); feeds bench JSON and
  /// dsps_doctor.
  interest::IndexStats RouteIndexStats() const;

 private:
  void Forward(const DisseminationTree& tree, common::EntityId from,
               common::SimNodeId from_node, const TupleEnvelope& env);
  void SendReliable(sim::Message msg);
  void ScheduleRetry(int64_t seq, double timeout_s);
  void SendAck(common::SimNodeId from_node, common::SimNodeId to_node,
               int64_t seq);

  /// Cached per-(stream, tree-node) counters; node = kInvalidEntity is
  /// the source. Interned lazily on first traffic through the node.
  struct NodeCounters {
    telemetry::Counter* forwarded = nullptr;
    telemetry::Counter* filtered = nullptr;
    telemetry::Counter* delivered = nullptr;
  };
  NodeCounters& CountersFor(common::StreamId stream, common::EntityId node);

  sim::Network* network_;
  Config config_;
  std::map<std::pair<common::StreamId, common::EntityId>, NodeCounters>
      node_counters_;
  std::map<common::StreamId, std::unique_ptr<DisseminationTree>> trees_;
  std::map<common::StreamId, common::SimNodeId> source_nodes_;
  std::map<common::EntityId, common::SimNodeId> gateways_;
  std::map<common::SimNodeId, common::EntityId> by_node_;
  DeliveryHandler delivery_;
  int64_t delivered_ = 0;
  int64_t forwards_ = 0;
  /// Wall-clock cost of each ForwardTargets routing lookup (interned once
  /// when metrics are configured; null = no timing overhead).
  telemetry::HistogramMetric* route_lookup_us_ = nullptr;
  /// Per-hop scratch for Forward's target list. Safe to reuse: message
  /// delivery is always scheduled, never synchronous, so Forward cannot
  /// re-enter while the list is being walked.
  std::vector<common::EntityId> targets_scratch_;

  /// Reliable-mode state (untouched when Config::reliable is false).
  struct PendingSend {
    sim::Message msg;
    int retries_left = 0;
    double timeout_s = 0.0;
    /// The armed retry timer. Acks and RemoveEntity cancel it, so a
    /// settled send frees its heap slot instead of leaving a dud event.
    sim::TimerId timer = sim::kInvalidTimer;
  };
  std::map<int64_t, PendingSend> pending_;
  std::set<int64_t> seen_seqs_;
  int64_t next_seq_ = 1;
  int64_t retries_ = 0;
  int64_t delivery_failures_ = 0;
  int64_t duplicates_suppressed_ = 0;
  int64_t retries_cancelled_ = 0;
  telemetry::Counter* retries_counter_ = nullptr;
  telemetry::Counter* delivery_failed_counter_ = nullptr;
  telemetry::Counter* duplicates_counter_ = nullptr;
  telemetry::Counter* retries_cancelled_counter_ = nullptr;
};

}  // namespace dsps::dissemination

#endif  // DSPS_DISSEMINATION_DISSEMINATOR_H_
