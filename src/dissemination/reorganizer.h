#ifndef DSPS_DISSEMINATION_REORGANIZER_H_
#define DSPS_DISSEMINATION_REORGANIZER_H_

#include "dissemination/tree.h"

namespace dsps::dissemination {

/// Adaptive reorganization of a dissemination tree (the line of work the
/// paper builds on: "Adaptive reorganization of coherency-preserving
/// dissemination tree for streaming data", and §3.1's remark that tree
/// shapes "have significant impact on the dissemination efficiency which
/// deserve further study").
///
/// Each round greedily re-attaches the entities with the largest gain —
/// the reduction of the distance to their parent (a direct proxy for the
/// per-hop WAN latency and, summed over the tree, the relay cost) —
/// subject to the fanout bound and cycle-freedom. Moves are bounded per
/// round so churn stays incremental.
class TreeReorganizer {
 public:
  struct Config {
    /// A move must reduce the entity's attachment cost by at least this
    /// fraction to be applied (hysteresis against oscillation).
    double min_gain_frac = 0.10;
    /// Max re-attachments per round.
    int max_moves_per_round = 8;
    /// Every tree level costs this many distance units (the per-hop base
    /// latency expressed in distance): attaching to a *deep* nearby
    /// parent can be worse than a shallow distant one. With the default
    /// WAN model (2 ms base, 50 us per unit) one hop ≈ 40 units.
    double depth_penalty_units = 40.0;
  };

  struct RoundStats {
    int moves = 0;
    /// Sum of entity->parent distances before/after the round.
    double cost_before = 0.0;
    double cost_after = 0.0;
  };

  TreeReorganizer();
  explicit TreeReorganizer(const Config& config);

  /// Runs one improvement round on `tree`.
  RoundStats Round(DisseminationTree* tree) const;

  /// The objective Round reduces: sum over entities of the distance to
  /// their parent plus `depth_penalty_units` per level of depth (the
  /// distance-equivalent of per-hop base latency).
  static double TreeCost(const DisseminationTree& tree,
                         double depth_penalty_units = 40.0);

 private:
  Config config_;
};

}  // namespace dsps::dissemination

#endif  // DSPS_DISSEMINATION_REORGANIZER_H_
