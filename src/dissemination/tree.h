#ifndef DSPS_DISSEMINATION_TREE_H_
#define DSPS_DISSEMINATION_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "interest/box_index.h"
#include "interest/interest.h"
#include "sim/network.h"

namespace dsps::dissemination {

/// How entities attach to a stream's dissemination tree.
enum class TreePolicy {
  /// Every entity is a direct child of the source (the paper's
  /// non-cooperative baseline: "rely solely on the sources").
  kSourceDirect,
  /// Random parent with spare fanout (structure-insensitive baseline).
  kRandom,
  /// Closest existing node with spare fanout (locality-aware default).
  kClosestParent,
};

/// The hierarchical dissemination tree of ONE stream (Section 3.1): the
/// source is the root, entities are the other nodes, and every parent
/// forwards upstream data to its children. Each entity registers its local
/// data interest; subtree aggregates propagate toward the root so parents
/// can *early-filter*: a tuple is forwarded to a child only if some query
/// below that child wants it.
class DisseminationTree {
 public:
  struct Config {
    TreePolicy policy = TreePolicy::kClosestParent;
    /// Max children per node (the "limited number of entities" each node
    /// serves). The source honors it too, except under kSourceDirect.
    int max_fanout = 4;
    /// If positive, each node's subtree-interest summary is coarsened to
    /// at most this many boxes before propagating upstream (Section 3.1's
    /// aggregation-efficiency issue). Coarsening only over-approximates,
    /// so early filtering never loses tuples; it may forward extras.
    int interest_budget = 0;
    uint64_t seed = 1;
  };

  DisseminationTree(common::StreamId stream, const sim::Point& source_position,
                    const Config& config);

  common::StreamId stream() const { return stream_; }

  /// Attaches an entity per the policy.
  common::Status AddEntity(common::EntityId id, const sim::Point& position);

  /// Detaches an entity; its children re-attach to its parent (fanout may
  /// transiently exceed the bound, as in a real repair).
  common::Status RemoveEntity(common::EntityId id);

  /// Replaces the entity's own interest in this stream (the union of its
  /// local queries' boxes) and re-propagates subtree aggregates to the
  /// root. Returns the number of ancestors whose aggregate changed (the
  /// interest-update messages sent upstream).
  int SetLocalInterest(common::EntityId id, std::vector<interest::Box> boxes);

  /// Parent entity; kInvalidEntity when the parent is the source.
  common::Result<common::EntityId> Parent(common::EntityId id) const;

  /// Children of `parent` (kInvalidEntity = the source).
  std::vector<common::EntityId> Children(common::EntityId parent) const;

  /// Hops from the source (children of the source are at depth 1).
  common::Result<int> Depth(common::EntityId id) const;

  int MaxDepth() const;
  size_t size() const { return nodes_.size(); }
  bool Contains(common::EntityId id) const { return nodes_.count(id) > 0; }
  int source_fanout() const {
    return static_cast<int>(source_children_.size());
  }

  /// Number of children of `parent` (kInvalidEntity = the source); 0 for
  /// unknown entities. Cheap — no copy, unlike Children().
  int ChildCount(common::EntityId parent) const;

  /// The aggregated interest boxes of `id`'s subtree.
  const std::vector<interest::Box>& SubtreeInterest(common::EntityId id) const;

  /// The entity's own registered boxes.
  const std::vector<interest::Box>& LocalInterest(common::EntityId id) const;

  /// Children of `from` (kInvalidEntity = source) that should receive a
  /// tuple with numeric values `point`. With early_filter, a child is
  /// included only if its subtree aggregate matches; otherwise all
  /// children are included (forward-everything baseline). The per-child
  /// matching runs against a cached interest::BoxIndex over the children's
  /// subtree aggregates (rebuilt lazily after joins/leaves/reattaches and
  /// aggregate changes), so the per-tuple cost is a grid-cell probe rather
  /// than a scan of every child's box list; results keep child-list order,
  /// bit-identical to the linear scan.
  void ForwardTargets(common::EntityId from, const double* point,
                      bool early_filter,
                      std::vector<common::EntityId>* out) const;

  /// True if the entity's own interest matches the point (local delivery).
  bool LocalMatch(common::EntityId id, const double* point) const;

  /// The entity's registered position.
  const sim::Point& position(common::EntityId id) const;
  const sim::Point& source_position() const { return source_position_; }

  /// True if `descendant` lies in `ancestor`'s subtree (an entity is not
  /// its own descendant).
  bool IsDescendant(common::EntityId ancestor,
                    common::EntityId descendant) const;

  /// Moves `id` (with its whole subtree) under `new_parent`
  /// (kInvalidEntity = the source). Fails if either is unknown, if the
  /// move would create a cycle, or if the new parent's fanout is full.
  /// Subtree aggregates are re-propagated on both paths.
  common::Status Reattach(common::EntityId id, common::EntityId new_parent);

  int max_fanout() const { return config_.max_fanout; }

  /// Audit sweep: re-derives ground truth and compares it to the live
  /// structures. Verifies (1) parent/child symmetry — every node appears
  /// exactly once as a child of its recorded parent; (2) acyclicity —
  /// every parent chain reaches the source within size() hops; (3) each
  /// node's cached subtree aggregate equals a fresh recomputation from
  /// local + children (interval-exact, including coarsening); (4) cached
  /// early-filter routing equals a plain linear scan over child subtree
  /// boxes at probe points. Internal error naming the first violation;
  /// read-only apart from deterministically pre-building route caches.
  common::Status CheckInvariants() const;

  /// Accumulates the statistics of every live routing cache (per-node and
  /// source) into `stats`.
  void CollectIndexStats(interest::IndexStats* stats) const;

 private:
  struct Node {
    common::EntityId parent = common::kInvalidEntity;  // invalid = source
    std::vector<common::EntityId> children;
    sim::Point position;
    std::vector<interest::Box> local;
    std::vector<interest::Box> subtree;
    /// Routing cache: point index over the children's subtree aggregates
    /// (subscriber = child id), rebuilt lazily on the next early-filtered
    /// ForwardTargets through this node. Stays null below the box-count
    /// threshold where the linear scan is already cheaper than a rebuild;
    /// route_cache_valid distinguishes that from "invalidated".
    mutable std::unique_ptr<interest::BoxIndex> route_index;
    mutable bool route_cache_valid = false;
  };

  /// Recomputes `id`'s subtree aggregate from local + children; returns
  /// true if it changed (propagation continues upward).
  bool RecomputeSubtree(common::EntityId id);
  void PropagateUp(common::EntityId id, int* updates);
  int FanoutOf(common::EntityId id) const;
  /// Drops `parent`'s routing cache (kInvalidEntity = the source's). Must
  /// be called whenever `parent`'s child list or any child's subtree
  /// aggregate changes.
  void InvalidateRouteCache(common::EntityId parent);
  /// Builds a fresh routing index over `children`'s subtree aggregates.
  /// Returns null when the children hold too few boxes for an index to
  /// beat the plain linear scan.
  std::unique_ptr<interest::BoxIndex> BuildRouteIndex(
      const std::vector<common::EntityId>& children) const;

  common::StreamId stream_;
  sim::Point source_position_;
  Config config_;
  common::Rng rng_;
  std::map<common::EntityId, Node> nodes_;
  std::vector<common::EntityId> source_children_;
  /// Routing cache for the source's children (see Node::route_index).
  mutable std::unique_ptr<interest::BoxIndex> source_route_index_;
  mutable bool source_route_cache_valid_ = false;
  /// Scratch for ForwardTargets' cache lookups (avoids a per-tuple
  /// allocation on the hot path).
  mutable std::vector<int64_t> match_scratch_;
  std::vector<interest::Box> empty_;
};

}  // namespace dsps::dissemination

#endif  // DSPS_DISSEMINATION_TREE_H_
