#include "dissemination/tree.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "interest/summarize.h"

namespace dsps::dissemination {

using interest::Box;
using sim::Distance;
using sim::Point;

DisseminationTree::DisseminationTree(common::StreamId stream,
                                     const Point& source_position,
                                     const Config& config)
    : stream_(stream),
      source_position_(source_position),
      config_(config),
      rng_(config.seed) {
  DSPS_CHECK(config.max_fanout >= 1);
}

int DisseminationTree::FanoutOf(common::EntityId id) const {
  if (id == common::kInvalidEntity) {
    return static_cast<int>(source_children_.size());
  }
  return static_cast<int>(nodes_.at(id).children.size());
}

common::Status DisseminationTree::AddEntity(common::EntityId id,
                                            const Point& position) {
  if (Contains(id)) {
    return common::Status::AlreadyExists("entity already in tree");
  }
  common::EntityId parent = common::kInvalidEntity;
  switch (config_.policy) {
    case TreePolicy::kSourceDirect:
      parent = common::kInvalidEntity;
      break;
    case TreePolicy::kRandom: {
      // Source + every entity with spare fanout.
      std::vector<common::EntityId> candidates;
      if (FanoutOf(common::kInvalidEntity) < config_.max_fanout) {
        candidates.push_back(common::kInvalidEntity);
      }
      for (const auto& [eid, node] : nodes_) {
        if (static_cast<int>(node.children.size()) < config_.max_fanout) {
          candidates.push_back(eid);
        }
      }
      if (candidates.empty()) {
        // Everyone full: attach to the source anyway (repair semantics).
        parent = common::kInvalidEntity;
      } else {
        parent = candidates[rng_.NextUint64(candidates.size())];
      }
      break;
    }
    case TreePolicy::kClosestParent: {
      double best_d = std::numeric_limits<double>::max();
      bool found = false;
      if (FanoutOf(common::kInvalidEntity) < config_.max_fanout) {
        best_d = Distance(source_position_, position);
        parent = common::kInvalidEntity;
        found = true;
      }
      for (const auto& [eid, node] : nodes_) {
        if (static_cast<int>(node.children.size()) >= config_.max_fanout) {
          continue;
        }
        double d = Distance(node.position, position);
        if (d < best_d) {
          best_d = d;
          parent = eid;
          found = true;
        }
      }
      if (!found) parent = common::kInvalidEntity;
      break;
    }
  }
  Node node;
  node.parent = parent;
  node.position = position;
  nodes_[id] = std::move(node);
  if (parent == common::kInvalidEntity) {
    source_children_.push_back(id);
  } else {
    nodes_[parent].children.push_back(id);
  }
  return common::Status::OK();
}

common::Status DisseminationTree::RemoveEntity(common::EntityId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  Node node = std::move(it->second);
  nodes_.erase(it);
  auto detach = [&](std::vector<common::EntityId>* siblings) {
    siblings->erase(std::remove(siblings->begin(), siblings->end(), id),
                    siblings->end());
  };
  if (node.parent == common::kInvalidEntity) {
    detach(&source_children_);
  } else {
    detach(&nodes_.at(node.parent).children);
  }
  // Children re-attach to the grandparent.
  for (common::EntityId child : node.children) {
    nodes_.at(child).parent = node.parent;
    if (node.parent == common::kInvalidEntity) {
      source_children_.push_back(child);
    } else {
      nodes_.at(node.parent).children.push_back(child);
    }
  }
  // Aggregates above the removal point change.
  int updates = 0;
  if (node.parent != common::kInvalidEntity) {
    PropagateUp(node.parent, &updates);
  }
  return common::Status::OK();
}

bool DisseminationTree::RecomputeSubtree(common::EntityId id) {
  Node& node = nodes_.at(id);
  interest::InterestSet agg;
  for (const Box& b : node.local) agg.Add(stream_, b);
  for (common::EntityId child : node.children) {
    for (const Box& b : nodes_.at(child).subtree) agg.Add(stream_, b);
  }
  agg.Simplify();
  const std::vector<Box>* boxes = agg.boxes_for(stream_);
  std::vector<Box> next = boxes == nullptr ? std::vector<Box>() : *boxes;
  if (config_.interest_budget > 0 &&
      static_cast<int>(next.size()) > config_.interest_budget) {
    next = interest::CoarsenBoxes(std::move(next), config_.interest_budget);
  }
  // Cheap change detection: size + per-box bounds comparison.
  bool changed = next.size() != node.subtree.size();
  if (!changed) {
    for (size_t i = 0; i < next.size() && !changed; ++i) {
      if (next[i].size() != node.subtree[i].size()) {
        changed = true;
        break;
      }
      for (size_t d = 0; d < next[i].size(); ++d) {
        if (next[i][d].lo != node.subtree[i][d].lo ||
            next[i][d].hi != node.subtree[i][d].hi) {
          changed = true;
          break;
        }
      }
    }
  }
  node.subtree = std::move(next);
  return changed;
}

void DisseminationTree::PropagateUp(common::EntityId id, int* updates) {
  common::EntityId cur = id;
  while (cur != common::kInvalidEntity) {
    bool changed = RecomputeSubtree(cur);
    if (!changed) break;
    ++*updates;
    cur = nodes_.at(cur).parent;
  }
}

int DisseminationTree::SetLocalInterest(common::EntityId id,
                                        std::vector<Box> boxes) {
  DSPS_CHECK_MSG(Contains(id), "unknown entity %d", id);
  nodes_.at(id).local = std::move(boxes);
  int updates = 0;
  PropagateUp(id, &updates);
  return updates;
}

common::Result<common::EntityId> DisseminationTree::Parent(
    common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  return it->second.parent;
}

int DisseminationTree::ChildCount(common::EntityId parent) const {
  if (parent == common::kInvalidEntity) {
    return static_cast<int>(source_children_.size());
  }
  auto it = nodes_.find(parent);
  return it == nodes_.end() ? 0
                            : static_cast<int>(it->second.children.size());
}

std::vector<common::EntityId> DisseminationTree::Children(
    common::EntityId parent) const {
  if (parent == common::kInvalidEntity) return source_children_;
  auto it = nodes_.find(parent);
  if (it == nodes_.end()) return {};
  return it->second.children;
}

common::Result<int> DisseminationTree::Depth(common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  int depth = 1;
  common::EntityId cur = it->second.parent;
  while (cur != common::kInvalidEntity) {
    cur = nodes_.at(cur).parent;
    ++depth;
  }
  return depth;
}

int DisseminationTree::MaxDepth() const {
  int max_depth = 0;
  for (const auto& [id, node] : nodes_) {
    auto d = Depth(id);
    if (d.ok()) max_depth = std::max(max_depth, d.value());
  }
  return max_depth;
}

const std::vector<Box>& DisseminationTree::SubtreeInterest(
    common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return empty_;
  return it->second.subtree;
}

const std::vector<Box>& DisseminationTree::LocalInterest(
    common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return empty_;
  return it->second.local;
}

void DisseminationTree::ForwardTargets(common::EntityId from,
                                       const double* point, bool early_filter,
                                       std::vector<common::EntityId>* out) const {
  out->clear();
  const std::vector<common::EntityId>& children = Children(from);
  for (common::EntityId child : children) {
    if (!early_filter) {
      out->push_back(child);
      continue;
    }
    for (const Box& b : nodes_.at(child).subtree) {
      if (interest::BoxContains(b, point)) {
        out->push_back(child);
        break;
      }
    }
  }
}

const sim::Point& DisseminationTree::position(common::EntityId id) const {
  auto it = nodes_.find(id);
  DSPS_CHECK_MSG(it != nodes_.end(), "unknown entity %d", id);
  return it->second.position;
}

bool DisseminationTree::IsDescendant(common::EntityId ancestor,
                                     common::EntityId descendant) const {
  auto it = nodes_.find(descendant);
  if (it == nodes_.end()) return false;
  common::EntityId cur = it->second.parent;
  while (cur != common::kInvalidEntity) {
    if (cur == ancestor) return true;
    cur = nodes_.at(cur).parent;
  }
  return false;
}

common::Status DisseminationTree::Reattach(common::EntityId id,
                                           common::EntityId new_parent) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  if (new_parent == id || IsDescendant(id, new_parent)) {
    return common::Status::InvalidArgument("reattach would create a cycle");
  }
  if (new_parent != common::kInvalidEntity && !Contains(new_parent)) {
    return common::Status::NotFound("new parent not in tree");
  }
  common::EntityId old_parent = it->second.parent;
  if (old_parent == new_parent) return common::Status::OK();
  if (FanoutOf(new_parent) >= config_.max_fanout) {
    return common::Status::ResourceExhausted("new parent fanout full");
  }
  auto detach = [&](std::vector<common::EntityId>* siblings) {
    siblings->erase(std::remove(siblings->begin(), siblings->end(), id),
                    siblings->end());
  };
  if (old_parent == common::kInvalidEntity) {
    detach(&source_children_);
  } else {
    detach(&nodes_.at(old_parent).children);
  }
  it->second.parent = new_parent;
  if (new_parent == common::kInvalidEntity) {
    source_children_.push_back(id);
  } else {
    nodes_.at(new_parent).children.push_back(id);
  }
  int updates = 0;
  if (old_parent != common::kInvalidEntity) PropagateUp(old_parent, &updates);
  if (new_parent != common::kInvalidEntity) PropagateUp(new_parent, &updates);
  return common::Status::OK();
}

bool DisseminationTree::LocalMatch(common::EntityId id,
                                   const double* point) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  for (const Box& b : it->second.local) {
    if (interest::BoxContains(b, point)) return true;
  }
  return false;
}

}  // namespace dsps::dissemination
