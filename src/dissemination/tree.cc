#include "dissemination/tree.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "interest/summarize.h"

namespace dsps::dissemination {

using interest::Box;
using sim::Distance;
using sim::Point;

DisseminationTree::DisseminationTree(common::StreamId stream,
                                     const Point& source_position,
                                     const Config& config)
    : stream_(stream),
      source_position_(source_position),
      config_(config),
      rng_(config.seed) {
  DSPS_CHECK(config.max_fanout >= 1);
}

int DisseminationTree::FanoutOf(common::EntityId id) const {
  if (id == common::kInvalidEntity) {
    return static_cast<int>(source_children_.size());
  }
  return static_cast<int>(nodes_.at(id).children.size());
}

common::Status DisseminationTree::AddEntity(common::EntityId id,
                                            const Point& position) {
  if (Contains(id)) {
    return common::Status::AlreadyExists("entity already in tree");
  }
  common::EntityId parent = common::kInvalidEntity;
  switch (config_.policy) {
    case TreePolicy::kSourceDirect:
      parent = common::kInvalidEntity;
      break;
    case TreePolicy::kRandom: {
      // Source + every entity with spare fanout.
      std::vector<common::EntityId> candidates;
      if (FanoutOf(common::kInvalidEntity) < config_.max_fanout) {
        candidates.push_back(common::kInvalidEntity);
      }
      for (const auto& [eid, node] : nodes_) {
        if (static_cast<int>(node.children.size()) < config_.max_fanout) {
          candidates.push_back(eid);
        }
      }
      if (candidates.empty()) {
        // Everyone full: attach to the source anyway (repair semantics).
        parent = common::kInvalidEntity;
      } else {
        parent = candidates[rng_.NextUint64(candidates.size())];
      }
      break;
    }
    case TreePolicy::kClosestParent: {
      double best_d = std::numeric_limits<double>::max();
      bool found = false;
      if (FanoutOf(common::kInvalidEntity) < config_.max_fanout) {
        best_d = Distance(source_position_, position);
        parent = common::kInvalidEntity;
        found = true;
      }
      for (const auto& [eid, node] : nodes_) {
        if (static_cast<int>(node.children.size()) >= config_.max_fanout) {
          continue;
        }
        double d = Distance(node.position, position);
        if (d < best_d) {
          best_d = d;
          parent = eid;
          found = true;
        }
      }
      if (!found) parent = common::kInvalidEntity;
      break;
    }
  }
  Node node;
  node.parent = parent;
  node.position = position;
  nodes_[id] = std::move(node);
  if (parent == common::kInvalidEntity) {
    source_children_.push_back(id);
  } else {
    nodes_[parent].children.push_back(id);
  }
  InvalidateRouteCache(parent);
  return common::Status::OK();
}

common::Status DisseminationTree::RemoveEntity(common::EntityId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  Node node = std::move(it->second);
  nodes_.erase(it);
  auto detach = [&](std::vector<common::EntityId>* siblings) {
    siblings->erase(std::remove(siblings->begin(), siblings->end(), id),
                    siblings->end());
  };
  if (node.parent == common::kInvalidEntity) {
    detach(&source_children_);
  } else {
    detach(&nodes_.at(node.parent).children);
  }
  // Children re-attach to the grandparent.
  for (common::EntityId child : node.children) {
    nodes_.at(child).parent = node.parent;
    if (node.parent == common::kInvalidEntity) {
      source_children_.push_back(child);
    } else {
      nodes_.at(node.parent).children.push_back(child);
    }
  }
  // The parent's child list changed even if its aggregate did not.
  InvalidateRouteCache(node.parent);
  // Aggregates above the removal point change.
  int updates = 0;
  if (node.parent != common::kInvalidEntity) {
    PropagateUp(node.parent, &updates);
  }
  return common::Status::OK();
}

bool DisseminationTree::RecomputeSubtree(common::EntityId id) {
  Node& node = nodes_.at(id);
  interest::InterestSet agg;
  for (const Box& b : node.local) agg.Add(stream_, b);
  for (common::EntityId child : node.children) {
    for (const Box& b : nodes_.at(child).subtree) agg.Add(stream_, b);
  }
  agg.Simplify();
  const std::vector<Box>* boxes = agg.boxes_for(stream_);
  std::vector<Box> next = boxes == nullptr ? std::vector<Box>() : *boxes;
  if (config_.interest_budget > 0 &&
      static_cast<int>(next.size()) > config_.interest_budget) {
    next = interest::CoarsenBoxes(std::move(next), config_.interest_budget);
  }
  // Cheap change detection: size + per-box bounds comparison.
  bool changed = next.size() != node.subtree.size();
  if (!changed) {
    for (size_t i = 0; i < next.size() && !changed; ++i) {
      if (next[i].size() != node.subtree[i].size()) {
        changed = true;
        break;
      }
      for (size_t d = 0; d < next[i].size(); ++d) {
        if (next[i][d].lo != node.subtree[i][d].lo ||
            next[i][d].hi != node.subtree[i][d].hi) {
          changed = true;
          break;
        }
      }
    }
  }
  node.subtree = std::move(next);
  return changed;
}

void DisseminationTree::PropagateUp(common::EntityId id, int* updates) {
  common::EntityId cur = id;
  while (cur != common::kInvalidEntity) {
    bool changed = RecomputeSubtree(cur);
    if (!changed) break;
    ++*updates;
    cur = nodes_.at(cur).parent;
    // `cur`'s routing cache indexes the changed child aggregate.
    InvalidateRouteCache(cur);
  }
}

int DisseminationTree::SetLocalInterest(common::EntityId id,
                                        std::vector<Box> boxes) {
  DSPS_CHECK_MSG(Contains(id), "unknown entity %d", id);
  nodes_.at(id).local = std::move(boxes);
  int updates = 0;
  PropagateUp(id, &updates);
  return updates;
}

common::Result<common::EntityId> DisseminationTree::Parent(
    common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  return it->second.parent;
}

int DisseminationTree::ChildCount(common::EntityId parent) const {
  if (parent == common::kInvalidEntity) {
    return static_cast<int>(source_children_.size());
  }
  auto it = nodes_.find(parent);
  return it == nodes_.end() ? 0
                            : static_cast<int>(it->second.children.size());
}

std::vector<common::EntityId> DisseminationTree::Children(
    common::EntityId parent) const {
  if (parent == common::kInvalidEntity) return source_children_;
  auto it = nodes_.find(parent);
  if (it == nodes_.end()) return {};
  return it->second.children;
}

common::Result<int> DisseminationTree::Depth(common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  int depth = 1;
  common::EntityId cur = it->second.parent;
  while (cur != common::kInvalidEntity) {
    cur = nodes_.at(cur).parent;
    ++depth;
  }
  return depth;
}

int DisseminationTree::MaxDepth() const {
  int max_depth = 0;
  for (const auto& [id, node] : nodes_) {
    auto d = Depth(id);
    if (d.ok()) max_depth = std::max(max_depth, d.value());
  }
  return max_depth;
}

const std::vector<Box>& DisseminationTree::SubtreeInterest(
    common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return empty_;
  return it->second.subtree;
}

const std::vector<Box>& DisseminationTree::LocalInterest(
    common::EntityId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return empty_;
  return it->second.local;
}

namespace {
/// Below this many child subtree boxes the per-tuple linear scan is
/// already cheaper than building and probing a grid, so no index is kept.
constexpr size_t kRouteIndexMinBoxes = 32;
}  // namespace

void DisseminationTree::InvalidateRouteCache(common::EntityId parent) {
  if (parent == common::kInvalidEntity) {
    source_route_index_.reset();
    source_route_cache_valid_ = false;
    return;
  }
  auto it = nodes_.find(parent);
  if (it != nodes_.end()) {
    it->second.route_index.reset();
    it->second.route_cache_valid = false;
  }
}

std::unique_ptr<interest::BoxIndex> DisseminationTree::BuildRouteIndex(
    const std::vector<common::EntityId>& children) const {
  // Domain: bounding box of every child's non-empty subtree box. All
  // boxes of one stream share dimensionality (see interest/interval.h),
  // so the bounding box is well-formed.
  Box domain;
  size_t total_boxes = 0;
  for (common::EntityId child : children) {
    for (const Box& b : nodes_.at(child).subtree) {
      if (interest::BoxEmpty(b)) continue;
      ++total_boxes;
      if (domain.empty()) {
        domain = b;
        continue;
      }
      for (size_t d = 0; d < domain.size(); ++d) {
        domain[d].lo = std::min(domain[d].lo, b[d].lo);
        domain[d].hi = std::max(domain[d].hi, b[d].hi);
      }
    }
  }
  if (total_boxes < kRouteIndexMinBoxes) return nullptr;
  // Subtree aggregates are unions of many query boxes, so they tend to
  // span the full range of non-leading dimensions; indexing those only
  // multiplies cell registrations without adding selectivity. Grid the
  // leading dimension alone.
  interest::BoxIndex::Config cfg;
  cfg.index_dims = 1;
  auto index = std::make_unique<interest::BoxIndex>(domain, cfg);
  for (common::EntityId child : children) {
    for (const Box& b : nodes_.at(child).subtree) {
      if (interest::BoxEmpty(b)) continue;
      index->Insert(child, b);
    }
  }
  return index;
}

void DisseminationTree::ForwardTargets(common::EntityId from,
                                       const double* point, bool early_filter,
                                       std::vector<common::EntityId>* out) const {
  out->clear();
  const std::vector<common::EntityId>* children = nullptr;
  std::unique_ptr<interest::BoxIndex>* cache = nullptr;
  bool* valid = nullptr;
  if (from == common::kInvalidEntity) {
    children = &source_children_;
    cache = &source_route_index_;
    valid = &source_route_cache_valid_;
  } else {
    auto it = nodes_.find(from);
    DSPS_DCHECK(it != nodes_.end());
    if (it == nodes_.end()) return;
    children = &it->second.children;
    cache = &it->second.route_index;
    valid = &it->second.route_cache_valid;
  }
  if (!early_filter) {
    *out = *children;
    return;
  }
  if (children->empty()) return;
  if (!*valid) {
    *cache = BuildRouteIndex(*children);
    *valid = true;
  }
  if (*cache == nullptr) {
    // Too few subtree boxes to be worth indexing: scan them directly.
    for (common::EntityId child : *children) {
      for (const Box& b : nodes_.at(child).subtree) {
        if (interest::BoxContains(b, point)) {
          out->push_back(child);
          break;
        }
      }
    }
    return;
  }
  match_scratch_.clear();
  (*cache)->Match(point, &match_scratch_);
  // Match yields ascending entity ids; re-emit in child-list order so the
  // output is bit-identical to the old per-child linear scan.
  for (common::EntityId child : *children) {
    if (std::binary_search(match_scratch_.begin(), match_scratch_.end(),
                           static_cast<int64_t>(child))) {
      out->push_back(child);
    }
  }
}

void DisseminationTree::CollectIndexStats(interest::IndexStats* stats) const {
  if (source_route_index_ != nullptr) {
    source_route_index_->AddStatsTo(stats);
  }
  for (const auto& [id, node] : nodes_) {
    if (node.route_index != nullptr) node.route_index->AddStatsTo(stats);
  }
}

const sim::Point& DisseminationTree::position(common::EntityId id) const {
  auto it = nodes_.find(id);
  DSPS_CHECK_MSG(it != nodes_.end(), "unknown entity %d", id);
  return it->second.position;
}

bool DisseminationTree::IsDescendant(common::EntityId ancestor,
                                     common::EntityId descendant) const {
  auto it = nodes_.find(descendant);
  if (it == nodes_.end()) return false;
  common::EntityId cur = it->second.parent;
  while (cur != common::kInvalidEntity) {
    if (cur == ancestor) return true;
    cur = nodes_.at(cur).parent;
  }
  return false;
}

common::Status DisseminationTree::Reattach(common::EntityId id,
                                           common::EntityId new_parent) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return common::Status::NotFound("entity not in tree");
  if (new_parent == id || IsDescendant(id, new_parent)) {
    return common::Status::InvalidArgument("reattach would create a cycle");
  }
  if (new_parent != common::kInvalidEntity && !Contains(new_parent)) {
    return common::Status::NotFound("new parent not in tree");
  }
  common::EntityId old_parent = it->second.parent;
  if (old_parent == new_parent) return common::Status::OK();
  if (FanoutOf(new_parent) >= config_.max_fanout) {
    return common::Status::ResourceExhausted("new parent fanout full");
  }
  auto detach = [&](std::vector<common::EntityId>* siblings) {
    siblings->erase(std::remove(siblings->begin(), siblings->end(), id),
                    siblings->end());
  };
  if (old_parent == common::kInvalidEntity) {
    detach(&source_children_);
  } else {
    detach(&nodes_.at(old_parent).children);
  }
  it->second.parent = new_parent;
  if (new_parent == common::kInvalidEntity) {
    source_children_.push_back(id);
  } else {
    nodes_.at(new_parent).children.push_back(id);
  }
  // Both parents' child lists changed even if no aggregate does.
  InvalidateRouteCache(old_parent);
  InvalidateRouteCache(new_parent);
  int updates = 0;
  if (old_parent != common::kInvalidEntity) PropagateUp(old_parent, &updates);
  if (new_parent != common::kInvalidEntity) PropagateUp(new_parent, &updates);
  return common::Status::OK();
}

common::Status DisseminationTree::CheckInvariants() const {
  auto violation = [](const std::string& what) {
    return common::Status::Internal("dissemination tree: " + what);
  };
  // (1) Parent/child symmetry and total membership: every node is a child
  // of its recorded parent exactly once, every listed child points back,
  // and no node appears in two child lists.
  size_t listed_children = source_children_.size();
  for (common::EntityId child : source_children_) {
    auto it = nodes_.find(child);
    if (it == nodes_.end()) return violation("source child not in tree");
    if (it->second.parent != common::kInvalidEntity) {
      return violation("source child has a non-source parent");
    }
  }
  for (const auto& [id, node] : nodes_) {
    listed_children += node.children.size();
    for (common::EntityId child : node.children) {
      auto it = nodes_.find(child);
      if (it == nodes_.end()) return violation("child not in tree");
      if (it->second.parent != id) {
        return violation("child's parent link disagrees with child list");
      }
    }
    const std::vector<common::EntityId>& siblings =
        node.parent == common::kInvalidEntity
            ? source_children_
            : nodes_.at(node.parent).children;
    if (std::count(siblings.begin(), siblings.end(), id) != 1) {
      return violation("node not exactly once in its parent's child list");
    }
  }
  if (listed_children != nodes_.size()) {
    return violation("child-list total != node count");
  }
  // (2) Acyclicity: every parent chain must reach the source in at most
  // size() hops (symmetry above already rules out forests).
  for (const auto& [id, node] : nodes_) {
    common::EntityId cur = node.parent;
    size_t hops = 0;
    while (cur != common::kInvalidEntity) {
      if (++hops > nodes_.size()) return violation("parent chain has a cycle");
      cur = nodes_.at(cur).parent;
    }
  }
  // (3) Cached subtree aggregates: recompute each node's aggregate the
  // way RecomputeSubtree does and require interval-exact equality.
  for (const auto& [id, node] : nodes_) {
    interest::InterestSet agg;
    for (const Box& b : node.local) agg.Add(stream_, b);
    for (common::EntityId child : node.children) {
      for (const Box& b : nodes_.at(child).subtree) agg.Add(stream_, b);
    }
    agg.Simplify();
    const std::vector<Box>* boxes = agg.boxes_for(stream_);
    std::vector<Box> expect = boxes == nullptr ? std::vector<Box>() : *boxes;
    if (config_.interest_budget > 0 &&
        static_cast<int>(expect.size()) > config_.interest_budget) {
      expect =
          interest::CoarsenBoxes(std::move(expect), config_.interest_budget);
    }
    if (expect.size() != node.subtree.size()) {
      return violation("stale subtree aggregate (box count)");
    }
    for (size_t i = 0; i < expect.size(); ++i) {
      if (expect[i].size() != node.subtree[i].size()) {
        return violation("stale subtree aggregate (box dimensionality)");
      }
      for (size_t d = 0; d < expect[i].size(); ++d) {
        if (expect[i][d].lo != node.subtree[i][d].lo ||
            expect[i][d].hi != node.subtree[i][d].hi) {
          return violation("stale subtree aggregate (interval bounds)");
        }
      }
    }
  }
  // (4) Routing cache vs linear scan, probed at child subtree box centers
  // (where mismatches from a stale index are most likely to show). The
  // ForwardTargets call may lazily build a cache — a deterministic,
  // output-invariant side effect the hot path would perform anyway.
  std::vector<common::EntityId> parents(1, common::kInvalidEntity);
  for (const auto& [id, node] : nodes_) parents.push_back(id);
  std::vector<common::EntityId> cached;
  constexpr size_t kMaxProbesPerParent = 16;
  for (common::EntityId parent : parents) {
    const std::vector<common::EntityId>& children =
        parent == common::kInvalidEntity ? source_children_
                                         : nodes_.at(parent).children;
    std::vector<std::vector<double>> probes;
    for (common::EntityId child : children) {
      for (const Box& b : nodes_.at(child).subtree) {
        if (interest::BoxEmpty(b) || probes.size() >= kMaxProbesPerParent) {
          continue;
        }
        std::vector<double> center(b.size());
        for (size_t d = 0; d < b.size(); ++d) {
          center[d] = 0.5 * (b[d].lo + b[d].hi);
        }
        probes.push_back(std::move(center));
      }
    }
    for (const std::vector<double>& point : probes) {
      ForwardTargets(parent, point.data(), /*early_filter=*/true, &cached);
      std::vector<common::EntityId> scanned;
      for (common::EntityId child : children) {
        for (const Box& b : nodes_.at(child).subtree) {
          if (interest::BoxContains(b, point.data())) {
            scanned.push_back(child);
            break;
          }
        }
      }
      if (cached != scanned) {
        return violation("routing cache disagrees with linear scan");
      }
    }
  }
  return common::Status::OK();
}

bool DisseminationTree::LocalMatch(common::EntityId id,
                                   const double* point) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  for (const Box& b : it->second.local) {
    if (interest::BoxContains(b, point)) return true;
  }
  return false;
}

}  // namespace dsps::dissemination
