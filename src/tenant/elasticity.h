#ifndef DSPS_TENANT_ELASTICITY_H_
#define DSPS_TENANT_ELASTICITY_H_

#include <map>

#include "tenant/tenant.h"

namespace dsps::tenant {

/// Decides when an entity should add or remove an intra-entity processor.
/// Pure and deterministic: the System feeds it periodic per-entity
/// observations (committed load, capacity, and the operator-placement
/// PR_k accounting of Section 4.1) and executes its decisions. Hysteresis
/// comes from watermark separation plus a sustain requirement — a
/// watermark must hold for `sustain_rounds` consecutive observations
/// before the manager acts, so transient spikes do not thrash capacity.
class ElasticityManager {
 public:
  struct Config {
    /// Grow when committed load / capacity sustains above this...
    double high_watermark = 0.85;
    /// ...shrink when it sustains below this.
    double low_watermark = 0.30;
    /// Consecutive observations a watermark must hold before acting.
    int sustain_rounds = 2;
    /// Per-entity processor-count bounds. Shrink never removes the
    /// gateway, so the effective floor is max(1, min_processors).
    int min_processors = 1;
    int max_processors = 8;
    /// Optional second trigger: also grow when the entity's result
    /// Performance Ratio p95 sustains above this (0 disables). Reuses the
    /// PR_k machinery as a queueing-delay signal that fires even when the
    /// declared-load estimate is optimistic.
    double pr_p95_limit = 0.0;
  };

  enum class Action { kNone, kGrow, kShrink };

  /// One periodic sample of an entity's state.
  struct Observation {
    int entity = 0;
    double committed_load = 0.0;
    /// processors * per-processor capacity (CPU s/s).
    double capacity = 0.0;
    double pr_p95 = 0.0;
    int processors = 0;
  };

  struct Stats {
    int grow_decisions = 0;
    int shrink_decisions = 0;
  };

  explicit ElasticityManager(const Config& config) : config_(config) {}

  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  /// Feeds one observation; returns the action to take now. A returned
  /// kGrow/kShrink resets the entity's streaks (the caller is expected to
  /// act, and the next observations see the new capacity).
  Action Evaluate(const Observation& obs);

  /// Forgets an entity's streaks (e.g. on crash/evict).
  void Forget(int entity);

 private:
  Config config_;
  Stats stats_;
  std::map<int, int> high_streak_;
  std::map<int, int> low_streak_;
};

}  // namespace dsps::tenant

#endif  // DSPS_TENANT_ELASTICITY_H_
