#include "tenant/tenant.h"

#include <cstdio>
#include <utility>

namespace dsps::tenant {

namespace {

TenantSpec MakeDefaultSpec() {
  TenantSpec spec;
  spec.id = kImplicitTenant;
  spec.name = "t0";
  return spec;
}

}  // namespace

TenantRegistry::TenantRegistry() : default_spec_(MakeDefaultSpec()) {
  Register(default_spec_);
}

TenantRegistry::TenantRegistry(const std::vector<TenantSpec>& specs)
    : default_spec_(MakeDefaultSpec()) {
  // The implicit tenant exists up front; an explicit spec for id 0 in
  // `specs` overrides its defaults.
  Register(default_spec_);
  for (const TenantSpec& spec : specs) Register(spec);
}

void TenantRegistry::Register(TenantSpec spec) {
  if (spec.name.empty()) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "t%d", spec.id);
    spec.name = buf;
  }
  auto it = specs_.find(spec.id);
  if (it != specs_.end()) total_weight_ -= it->second.weight;
  total_weight_ += spec.weight;
  specs_[spec.id] = std::move(spec);
}

const TenantSpec& TenantRegistry::SpecOrDefault(TenantId id) const {
  auto it = specs_.find(id);
  return it != specs_.end() ? it->second : default_spec_;
}

std::vector<TenantId> TenantRegistry::ids() const {
  std::vector<TenantId> out;
  out.reserve(specs_.size());
  for (const auto& [id, spec] : specs_) out.push_back(id);
  return out;
}

}  // namespace dsps::tenant
