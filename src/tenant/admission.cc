#include "tenant/admission.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "interest/interval.h"

namespace dsps::tenant {

AdmissionController::AdmissionController(const TenantRegistry* registry,
                                         const Config& config)
    : registry_(registry), config_(config) {
  DSPS_CHECK(registry_ != nullptr);
  // Materialize counters for every registered tenant up front so reports
  // and audits see zero rows rather than missing rows.
  for (TenantId id : registry_->ids()) counters_[id];
}

bool AdmissionController::QuotaExceeded(TenantId tenant) const {
  const TenantSpec& spec = registry_->SpecOrDefault(tenant);
  if (spec.max_standing_queries <= 0) return false;
  return counters(tenant).standing >= spec.max_standing_queries;
}

bool AdmissionController::QueueFull(TenantId tenant) const {
  return counters(tenant).queued_now >= config_.max_queued_per_tenant;
}

bool AdmissionController::OverFairShare(TenantId tenant, double load) const {
  double total_weight = registry_->total_weight();
  if (total_weight <= 0.0) return false;
  const TenantSpec& spec = registry_->SpecOrDefault(tenant);
  if (spec.weight <= 0.0) return true;
  // Would this tenant's normalized load exceed the cluster-average
  // normalized load once `load` lands? Scale-free: multiplying all
  // weights by a constant changes nothing.
  double mine = (counters(tenant).standing_load + load) / spec.weight;
  double everyone = (total_standing_load_ + load) / total_weight;
  return mine > everyone;
}

double AdmissionController::NormalizedLoad(TenantId tenant) const {
  const TenantSpec& spec = registry_->SpecOrDefault(tenant);
  if (spec.weight <= 0.0) return 1e300;
  return counters(tenant).standing_load / spec.weight;
}

void AdmissionController::OnSubmitted(TenantId tenant) {
  Mutable(tenant).submitted += 1;
  if (TenantMetrics* m = MetricsFor(tenant)) m->submitted->Increment();
}

void AdmissionController::OnAdmitted(TenantId tenant, double load) {
  Counters& c = Mutable(tenant);
  c.admitted += 1;
  c.standing += 1;
  c.standing_load += load;
  total_standing_load_ += load;
  if (TenantMetrics* m = MetricsFor(tenant)) m->admitted->Increment();
}

void AdmissionController::OnDegraded(TenantId tenant, double load) {
  Counters& c = Mutable(tenant);
  c.degraded += 1;
  c.standing += 1;
  c.standing_load += load;
  total_standing_load_ += load;
  if (TenantMetrics* m = MetricsFor(tenant)) m->degraded->Increment();
}

void AdmissionController::OnQueued(TenantId tenant) {
  Counters& c = Mutable(tenant);
  c.queued_now += 1;
  c.standing += 1;
  if (TenantMetrics* m = MetricsFor(tenant)) m->queued->Increment();
}

void AdmissionController::OnDequeuedAdmit(TenantId tenant, double load,
                                          bool degraded) {
  Counters& c = Mutable(tenant);
  DSPS_CHECK(c.queued_now > 0);
  c.queued_now -= 1;
  // The query was already standing while queued; only the outcome counter
  // and the installed load change.
  if (degraded) {
    c.degraded += 1;
  } else {
    c.admitted += 1;
  }
  c.standing_load += load;
  total_standing_load_ += load;
  if (TenantMetrics* m = MetricsFor(tenant)) {
    (degraded ? m->degraded : m->admitted)->Increment();
  }
}

void AdmissionController::OnQueueEvicted(TenantId tenant) {
  Counters& c = Mutable(tenant);
  DSPS_CHECK(c.queued_now > 0 && c.standing > 0);
  c.queued_now -= 1;
  c.standing -= 1;
  c.evicted += 1;
  if (TenantMetrics* m = MetricsFor(tenant)) m->evicted->Increment();
}

void AdmissionController::OnRejected(TenantId tenant) {
  Mutable(tenant).rejected += 1;
  if (TenantMetrics* m = MetricsFor(tenant)) m->rejected->Increment();
}

void AdmissionController::OnWithdrawn(TenantId tenant, double load) {
  Counters& c = Mutable(tenant);
  DSPS_CHECK(c.standing > 0);
  c.standing -= 1;
  c.standing_load -= load;
  total_standing_load_ -= load;
}

const AdmissionController::Counters& AdmissionController::counters(
    TenantId tenant) const {
  static const Counters kZero;
  auto it = counters_.find(tenant);
  return it != counters_.end() ? it->second : kZero;
}

common::Status AdmissionController::CheckConservation() const {
  for (const auto& [tenant, c] : counters_) {
    if (c.queued_now < 0 || c.standing < 0 ||
        c.standing_load < -1e-6) {
      return common::Status::Internal("tenant " + std::to_string(tenant) +
                                      ": negative standing accounting");
    }
    int64_t settled =
        c.admitted + c.degraded + c.rejected + c.evicted + c.queued_now;
    if (c.submitted != settled) {
      return common::Status::Internal(
          "tenant " + std::to_string(tenant) + ": submitted " +
          std::to_string(c.submitted) + " != settled " +
          std::to_string(settled));
    }
  }
  return common::Status::OK();
}

void AdmissionController::SetMetrics(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
  tenant_metrics_.clear();
}

AdmissionController::Counters& AdmissionController::Mutable(TenantId tenant) {
  return counters_[tenant];
}

AdmissionController::TenantMetrics* AdmissionController::MetricsFor(
    TenantId tenant) {
  if (metrics_ == nullptr) return nullptr;
  auto it = tenant_metrics_.find(tenant);
  if (it == tenant_metrics_.end()) {
    telemetry::Labels labels =
        telemetry::MakeLabels({{"tenant", registry_->NameOf(tenant)}});
    TenantMetrics m;
    m.submitted = metrics_->counter("tenant.submitted", labels);
    m.admitted = metrics_->counter("tenant.admitted", labels);
    m.queued = metrics_->counter("tenant.queued", labels);
    m.degraded = metrics_->counter("tenant.degraded", labels);
    m.rejected = metrics_->counter("tenant.rejected", labels);
    m.evicted = metrics_->counter("tenant.evicted", labels);
    it = tenant_metrics_.emplace(tenant, m).first;
  }
  return &it->second;
}

engine::Query DegradeForAdmission(const engine::Query& query,
                                  const AdmissionController::Config& config) {
  engine::Query coarse = query;
  interest::InterestSet shed;
  for (common::StreamId stream : query.interest.streams()) {
    const std::vector<interest::Box>* boxes =
        query.interest.boxes_for(stream);
    if (boxes == nullptr || boxes->empty()) continue;
    // Bounding box over the stream's interest, then shrink each dimension
    // about its center so the retained volume is degrade_coverage of the
    // bounding box's.
    interest::Box bound = (*boxes)[0];
    for (size_t b = 1; b < boxes->size(); ++b) {
      const interest::Box& box = (*boxes)[b];
      for (size_t d = 0; d < bound.size() && d < box.size(); ++d) {
        bound[d].lo = std::min(bound[d].lo, box[d].lo);
        bound[d].hi = std::max(bound[d].hi, box[d].hi);
      }
    }
    double coverage = std::clamp(config.degrade_coverage, 1e-6, 1.0);
    double scale =
        bound.empty() ? 1.0
                      : std::pow(coverage, 1.0 / static_cast<double>(
                                               bound.size()));
    for (interest::Interval& iv : bound) {
      if (iv.empty()) continue;
      double center = 0.5 * (iv.lo + iv.hi);
      double half = 0.5 * iv.length() * scale;
      iv.lo = center - half;
      iv.hi = center + half;
    }
    shed.Add(stream, bound);
  }
  coarse.interest = std::move(shed);
  coarse.load = query.load * config.degrade_load_factor;
  return coarse;
}

}  // namespace dsps::tenant
