#ifndef DSPS_TENANT_ADMISSION_H_
#define DSPS_TENANT_ADMISSION_H_

#include <cstdint>
#include <map>

#include "common/status.h"
#include "engine/plan.h"
#include "telemetry/registry.h"
#include "tenant/tenant.h"

namespace dsps::tenant {

/// Per-tenant weighted-fair admission control, replacing the scalar
/// admission_load_factor gate. The controller is pure decision and
/// accounting logic — the System owns the actual pending queue, its
/// deadline timers, and the install/retry machinery — so it consumes no
/// randomness and schedules nothing, keeping tenant-enabled runs
/// deterministic and tenant-free runs untouched.
///
/// Submission state machine (driven by the System):
///
///   submitted ──► rejected            (over quota, or install error)
///             ──► admitted            (installed at full fidelity)
///             ──► degraded            (installed on a coarser interest box)
///             ──► queued ──► admitted/degraded  (capacity released in time)
///                        ──► evicted            (bounded wait expired)
///
/// Conservation (audited): per tenant,
///   submitted == admitted + degraded + rejected + evicted + queued_now.
class AdmissionController {
 public:
  struct Config {
    /// Fraction of per-entity capacity admissible (the scalar gate's
    /// meaning, now applied under per-tenant arbitration).
    double load_factor = 1.0;
    /// Bounded wait: a queued submission that finds no capacity within
    /// this window is evicted from the queue.
    double max_queue_wait_s = 2.0;
    /// Per-tenant pending-queue bound; further refusals reject.
    int max_queued_per_tenant = 64;
    /// Shed over-fair-share tenants to a coarser interest box instead of
    /// queueing them.
    bool allow_degrade = true;
    /// Declared-load multiplier for a degraded query.
    double degrade_load_factor = 0.5;
    /// Fraction of the interest bounding box's volume a degraded query
    /// retains (shrunk about the box center).
    double degrade_coverage = 0.25;
    /// Window for the per-tenant recent-p95 latency probes.
    double slo_window_s = 2.0;
  };

  enum class Decision { kAdmit, kQueue, kDegrade, kReject };

  struct Counters {
    int64_t submitted = 0;
    int64_t admitted = 0;
    int64_t degraded = 0;
    int64_t rejected = 0;
    /// Timed out of (or withdrawn from) the pending queue.
    int64_t evicted = 0;
    int queued_now = 0;
    /// Standing queries: placed + unplaced + queued (the quota base).
    int standing = 0;
    /// Sum of installed loads (the weighted-fair numerator).
    double standing_load = 0.0;
  };

  /// `registry` must outlive the controller.
  AdmissionController(const TenantRegistry* registry, const Config& config);

  const Config& config() const { return config_; }
  const TenantRegistry& registry() const { return *registry_; }

  /// True if admitting one more standing query would exceed the tenant's
  /// max_standing_queries quota.
  bool QuotaExceeded(TenantId tenant) const;
  /// True if the tenant's pending queue is at max_queued_per_tenant.
  bool QueueFull(TenantId tenant) const;
  /// True if installing `load` would push the tenant's weight-normalized
  /// standing load above the all-tenant average — the weighted-fair test
  /// applied at the moment the cluster refused the query.
  bool OverFairShare(TenantId tenant, double load) const;
  /// standing_load / weight, the drain-order key (lightest share first).
  double NormalizedLoad(TenantId tenant) const;

  /// State-machine transitions (see class comment).
  void OnSubmitted(TenantId tenant);
  void OnAdmitted(TenantId tenant, double load);
  void OnDegraded(TenantId tenant, double load);
  void OnQueued(TenantId tenant);
  /// A queued submission landed: admitted at full fidelity or degraded.
  void OnDequeuedAdmit(TenantId tenant, double load, bool degraded);
  void OnQueueEvicted(TenantId tenant);
  void OnRejected(TenantId tenant);
  /// A standing (installed or unplaced) query was withdrawn.
  void OnWithdrawn(TenantId tenant, double load);

  const Counters& counters(TenantId tenant) const;
  const std::map<TenantId, Counters>& all_counters() const {
    return counters_;
  }
  double total_standing_load() const { return total_standing_load_; }

  /// Verifies the per-tenant conservation identity and non-negativity of
  /// every counter (the controller half of the tenant_conservation audit).
  common::Status CheckConservation() const;

  /// Optional per-tenant labeled counters (tenant.submitted/admitted/
  /// queued/degraded/rejected/evicted, labeled {tenant=<name>}).
  void SetMetrics(telemetry::MetricsRegistry* metrics);

 private:
  struct TenantMetrics {
    telemetry::Counter* submitted = nullptr;
    telemetry::Counter* admitted = nullptr;
    telemetry::Counter* queued = nullptr;
    telemetry::Counter* degraded = nullptr;
    telemetry::Counter* rejected = nullptr;
    telemetry::Counter* evicted = nullptr;
  };
  Counters& Mutable(TenantId tenant);
  TenantMetrics* MetricsFor(TenantId tenant);

  const TenantRegistry* registry_;
  Config config_;
  std::map<TenantId, Counters> counters_;
  double total_standing_load_ = 0.0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::map<TenantId, TenantMetrics> tenant_metrics_;
};

/// A degraded copy of `query`: each stream's interest collapses to one
/// bounding box shrunk about its center to config.degrade_coverage of the
/// bounding box's volume, and the declared load scales by
/// config.degrade_load_factor. The plan is untouched (its filters simply
/// see fewer tuples), so results remain a correct subset.
engine::Query DegradeForAdmission(const engine::Query& query,
                                  const AdmissionController::Config& config);

}  // namespace dsps::tenant

#endif  // DSPS_TENANT_ADMISSION_H_
