#include "tenant/elasticity.h"

#include <algorithm>

namespace dsps::tenant {

ElasticityManager::Action ElasticityManager::Evaluate(const Observation& obs) {
  double utilization =
      obs.capacity > 0.0 ? obs.committed_load / obs.capacity : 0.0;
  bool hot = utilization > config_.high_watermark ||
             (config_.pr_p95_limit > 0.0 && obs.pr_p95 > config_.pr_p95_limit);
  bool cold = utilization < config_.low_watermark;

  int& high = high_streak_[obs.entity];
  int& low = low_streak_[obs.entity];
  high = hot ? high + 1 : 0;
  low = cold ? low + 1 : 0;

  int sustain = std::max(1, config_.sustain_rounds);
  if (high >= sustain && obs.processors < config_.max_processors) {
    high = 0;
    low = 0;
    stats_.grow_decisions += 1;
    return Action::kGrow;
  }
  if (low >= sustain && obs.processors > std::max(1, config_.min_processors)) {
    high = 0;
    low = 0;
    stats_.shrink_decisions += 1;
    return Action::kShrink;
  }
  return Action::kNone;
}

void ElasticityManager::Forget(int entity) {
  high_streak_.erase(entity);
  low_streak_.erase(entity);
}

}  // namespace dsps::tenant
