#ifndef DSPS_TENANT_TENANT_H_
#define DSPS_TENANT_TENANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dsps::tenant {

/// Tenants are small non-negative integers. 0 is the implicit tenant that
/// every untagged query belongs to, so single-tenant workloads run with no
/// tenant configuration at all.
using TenantId = int32_t;
inline constexpr TenantId kImplicitTenant = 0;

/// One tenant's service contract: its weight in weighted-fair admission
/// arbitration, its result-latency SLO, and its standing-query quota.
struct TenantSpec {
  TenantId id = kImplicitTenant;
  /// Label value used in per-tenant telemetry; defaults to "t<id>".
  std::string name;
  /// Relative share of cluster capacity (weighted-fair admission).
  double weight = 1.0;
  /// Result-latency SLO in seconds; 0 = no SLO (always attained).
  double latency_slo_s = 0.0;
  /// Max standing queries (placed + unplaced + queued); 0 = unlimited.
  int max_standing_queries = 0;
};

/// The set of registered tenants. The implicit tenant is always present
/// (with default weight/SLO/quota) unless a spec overrides it, so lookups
/// never fail and untagged queries always have an owner.
class TenantRegistry {
 public:
  TenantRegistry();
  explicit TenantRegistry(const std::vector<TenantSpec>& specs);

  /// Adds or replaces a tenant spec. Names default to "t<id>".
  void Register(TenantSpec spec);

  bool Contains(TenantId id) const { return specs_.count(id) > 0; }
  /// The registered spec, or the implicit-tenant defaults for unknown ids.
  const TenantSpec& SpecOrDefault(TenantId id) const;
  const std::string& NameOf(TenantId id) const {
    return SpecOrDefault(id).name;
  }

  /// Registered tenant ids, ascending.
  std::vector<TenantId> ids() const;
  /// Sum of registered weights (the weighted-fair denominator).
  double total_weight() const { return total_weight_; }
  size_t size() const { return specs_.size(); }

 private:
  std::map<TenantId, TenantSpec> specs_;
  TenantSpec default_spec_;
  double total_weight_ = 0.0;
};

}  // namespace dsps::tenant

#endif  // DSPS_TENANT_TENANT_H_
