#include "placement/rebalancer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace dsps::placement {

Rebalancer::Rebalancer() : Rebalancer(Config()) {}
Rebalancer::Rebalancer(const Config& config) : config_(config) {
  DSPS_CHECK(config.slack > 0);
  DSPS_CHECK(config.max_moves >= 1);
}

std::vector<MoveDecision> Rebalancer::Plan(const PlacementInput& input,
                                           const Placement& current) const {
  const size_t n_procs = input.processors.size();
  if (n_procs < 2) return {};
  // Index processors and compute utilizations.
  std::map<common::ProcessorId, size_t> proc_index;
  std::vector<double> util(n_procs);
  for (size_t i = 0; i < n_procs; ++i) {
    proc_index[input.processors[i].id] = i;
    util[i] = input.processors[i].base_load / input.processors[i].capacity;
  }
  // Fragment bookkeeping: location, per-query processor sets.
  std::map<common::FragmentId, const FragmentSpec*> spec_of;
  std::map<common::QueryId, std::map<common::ProcessorId, int>> query_procs;
  std::map<common::ProcessorId, std::vector<const FragmentSpec*>> on_proc;
  Placement placement = current;
  for (const FragmentSpec& frag : input.fragments) {
    auto it = placement.find(frag.id);
    DSPS_CHECK(it != placement.end());
    spec_of[frag.id] = &frag;
    size_t idx = proc_index.at(it->second);
    util[idx] += frag.cpu_load / input.processors[idx].capacity;
    query_procs[frag.query][it->second] += 1;
    on_proc[it->second].push_back(&frag);
  }
  double mean_util = 0.0;
  for (double u : util) mean_util += u;
  mean_util /= static_cast<double>(n_procs);

  std::vector<MoveDecision> moves;
  for (int round = 0; round < config_.max_moves; ++round) {
    size_t hot = std::max_element(util.begin(), util.end()) - util.begin();
    if (util[hot] <= mean_util + config_.slack) break;
    size_t cold = std::min_element(util.begin(), util.end()) - util.begin();
    common::ProcessorId hot_id = input.processors[hot].id;
    common::ProcessorId cold_id = input.processors[cold].id;
    // Best fragment to evict: the one whose move most reduces the spread
    // without overshooting (prefer load close to half the gap) and whose
    // query stays within the distribution limit.
    double gap = util[hot] - util[cold];
    const FragmentSpec* best = nullptr;
    double best_score = -1.0;
    for (const FragmentSpec* frag : on_proc[hot_id]) {
      double u = frag->cpu_load / input.processors[hot].capacity;
      if (u <= 0 || u >= gap) continue;  // would overshoot
      auto& procs = query_procs[frag->query];
      bool new_proc = procs.count(cold_id) == 0;
      bool leaves_hot = procs[hot_id] == 1;
      int delta = (new_proc ? 1 : 0) - (leaves_hot ? 1 : 0);
      if (static_cast<int>(procs.size()) + delta > input.distribution_limit) {
        continue;
      }
      // Score: closeness to half the gap.
      double score = u - std::abs(u - gap / 2);
      if (score > best_score) {
        best_score = score;
        best = frag;
      }
    }
    if (best == nullptr) break;
    double u = best->cpu_load / input.processors[hot].capacity;
    util[hot] -= u;
    util[cold] += best->cpu_load / input.processors[cold].capacity;
    auto& vec = on_proc[hot_id];
    vec.erase(std::remove(vec.begin(), vec.end(), best), vec.end());
    on_proc[cold_id].push_back(best);
    auto& procs = query_procs[best->query];
    if (--procs[hot_id] == 0) procs.erase(hot_id);
    procs[cold_id] += 1;
    placement[best->id] = cold_id;
    moves.push_back(MoveDecision{best->id, hot_id, cold_id, best->cpu_load});
  }
  return moves;
}

}  // namespace dsps::placement
