#include "placement/placement.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/check.h"

namespace dsps::placement {

namespace {

common::Status ValidateInput(const PlacementInput& input) {
  if (input.processors.empty()) {
    return common::Status::InvalidArgument("no processors");
  }
  if (input.distribution_limit < 1) {
    return common::Status::InvalidArgument("distribution_limit < 1");
  }
  return common::Status::OK();
}

/// Index of `proc` in input.processors, or -1.
int ProcIndex(const PlacementInput& input, common::ProcessorId proc) {
  for (size_t i = 0; i < input.processors.size(); ++i) {
    if (input.processors[i].id == proc) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

// ------------------------------------------------------------- PrAware

PrAwarePlacement::PrAwarePlacement() : PrAwarePlacement(Config()) {}
PrAwarePlacement::PrAwarePlacement(const Config& config) : config_(config) {}

common::Result<Placement> PrAwarePlacement::Place(const PlacementInput& input) {
  DSPS_RETURN_IF_ERROR(ValidateInput(input));
  Placement placement;
  std::vector<double> load(input.processors.size());
  for (size_t i = 0; i < input.processors.size(); ++i) {
    load[i] = input.processors[i].base_load;
  }
  // Processors already used per query (for the distribution limit) and the
  // placement of each fragment (to resolve upstream homes).
  std::map<common::QueryId, std::set<int>> used_by_query;
  std::map<common::QueryId, int> last_placed;
  double total_capacity = 0.0;
  for (const auto& p : input.processors) total_capacity += p.capacity;
  double mean_rate = 1e-9;
  for (const auto& f : input.fragments) mean_rate += f.input_rate_bytes_s;
  mean_rate /= std::max<size_t>(1, input.fragments.size());

  for (const FragmentSpec& frag : input.fragments) {
    std::set<int>& used = used_by_query[frag.query];
    // Heuristic 2: if the query already touches `distribution_limit`
    // processors, only those are candidates.
    bool restricted =
        static_cast<int>(used.size()) >= input.distribution_limit;
    // The processor this fragment's input arrives at (traffic heuristic).
    int home = -1;
    auto home_it = input.input_home.find(frag.id);
    if (home_it != input.input_home.end()) {
      home = ProcIndex(input, home_it->second);
    } else if (auto last_it = last_placed.find(frag.query);
               last_it != last_placed.end()) {
      // Pipeline successor: its input comes from the query's previously
      // placed fragment.
      home = last_it->second;
    }
    // Pass 1 (heuristic 1): the best achievable post-placement utilization
    // among the allowed candidates.
    double best_util = std::numeric_limits<double>::max();
    for (size_t i = 0; i < input.processors.size(); ++i) {
      if (restricted && used.count(static_cast<int>(i)) == 0) continue;
      double util_after =
          (load[i] + frag.cpu_load) / input.processors[i].capacity;
      best_util = std::min(best_util, util_after);
    }
    // Pass 2 (heuristic 3): among processors within the balance slack,
    // minimize communication traffic; ties go to the less utilized.
    int best = -1;
    double best_traffic = std::numeric_limits<double>::max();
    double best_candidate_util = std::numeric_limits<double>::max();
    for (size_t i = 0; i < input.processors.size(); ++i) {
      if (restricted && used.count(static_cast<int>(i)) == 0) continue;
      const ProcessorSpec& proc = input.processors[i];
      double util_after = (load[i] + frag.cpu_load) / proc.capacity;
      if (util_after > best_util + config_.balance_slack) continue;
      double traffic = 0.0;
      if (home >= 0 && home != static_cast<int>(i)) {
        traffic += frag.input_rate_bytes_s / mean_rate;
      }
      // Opening a new processor for this query costs future pipeline hops.
      if (!used.empty() && used.count(static_cast<int>(i)) == 0) {
        traffic += 0.5;
      }
      if (traffic < best_traffic ||
          (traffic == best_traffic && util_after < best_candidate_util)) {
        best_traffic = traffic;
        best_candidate_util = util_after;
        best = static_cast<int>(i);
      }
    }
    DSPS_CHECK(best >= 0);
    placement[frag.id] = input.processors[best].id;
    load[best] += frag.cpu_load;
    used.insert(best);
    last_placed[frag.query] = best;
  }
  return placement;
}

// ------------------------------------------------------------ LoadOnly

common::Result<Placement> LoadOnlyPlacement::Place(
    const PlacementInput& input) {
  DSPS_RETURN_IF_ERROR(ValidateInput(input));
  Placement placement;
  std::vector<double> util(input.processors.size());
  for (size_t i = 0; i < input.processors.size(); ++i) {
    util[i] = input.processors[i].base_load / input.processors[i].capacity;
  }
  // Largest fragments first, to the least-utilized processor.
  std::vector<const FragmentSpec*> order;
  for (const auto& f : input.fragments) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const FragmentSpec* a, const FragmentSpec* b) {
                     return a->cpu_load > b->cpu_load;
                   });
  for (const FragmentSpec* frag : order) {
    size_t best =
        std::min_element(util.begin(), util.end()) - util.begin();
    placement[frag->id] = input.processors[best].id;
    util[best] += frag->cpu_load / input.processors[best].capacity;
  }
  return placement;
}

// -------------------------------------------------------------- Random

RandomPlacement::RandomPlacement(uint64_t seed) : rng_(seed) {}

common::Result<Placement> RandomPlacement::Place(const PlacementInput& input) {
  DSPS_RETURN_IF_ERROR(ValidateInput(input));
  Placement placement;
  for (const FragmentSpec& frag : input.fragments) {
    size_t i = rng_.NextUint64(input.processors.size());
    placement[frag.id] = input.processors[i].id;
  }
  return placement;
}

// ------------------------------------------------------------- Metrics

PlacementMetrics EvaluatePlacement(const PlacementInput& input,
                                   const Placement& placement) {
  PlacementMetrics m;
  std::vector<double> load(input.processors.size());
  for (size_t i = 0; i < input.processors.size(); ++i) {
    load[i] = input.processors[i].base_load;
  }
  std::map<common::QueryId, std::set<common::ProcessorId>> used;
  std::map<common::QueryId, common::ProcessorId> prev;
  for (const FragmentSpec& frag : input.fragments) {
    auto it = placement.find(frag.id);
    DSPS_CHECK(it != placement.end());
    int idx = ProcIndex(input, it->second);
    DSPS_CHECK(idx >= 0);
    load[idx] += frag.cpu_load;
    used[frag.query].insert(it->second);
    auto home_it = input.input_home.find(frag.id);
    if (home_it != input.input_home.end()) {
      if (home_it->second != it->second) {
        m.cross_traffic_bytes_s += frag.input_rate_bytes_s;
      }
    } else if (auto prev_it = prev.find(frag.query);
               prev_it != prev.end() && prev_it->second != it->second) {
      // Pipeline hop across processors.
      m.cross_traffic_bytes_s += frag.input_rate_bytes_s;
    }
    prev[frag.query] = it->second;
  }
  double sum_util = 0.0;
  for (size_t i = 0; i < input.processors.size(); ++i) {
    double u = load[i] / input.processors[i].capacity;
    m.max_utilization = std::max(m.max_utilization, u);
    sum_util += u;
  }
  m.mean_utilization = sum_util / input.processors.size();
  for (const auto& [query, procs] : used) {
    m.max_processors_per_query =
        std::max(m.max_processors_per_query, static_cast<int>(procs.size()));
    if (static_cast<int>(procs.size()) > input.distribution_limit) {
      ++m.limit_violations;
    }
  }
  return m;
}

}  // namespace dsps::placement
