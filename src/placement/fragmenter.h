#ifndef DSPS_PLACEMENT_FRAGMENTER_H_
#define DSPS_PLACEMENT_FRAGMENTER_H_

#include <vector>

#include "common/ids.h"
#include "engine/plan.h"

namespace dsps::placement {

/// A fragment description: which plan operators are co-located. (The
/// runnable instance is engine::FragmentInstance; this is the optimizer's
/// view.)
struct FragmentSpec {
  common::FragmentId id = -1;
  common::QueryId query = common::kInvalidQuery;
  std::vector<common::OperatorId> ops;
  /// Estimated CPU seconds per second this fragment consumes, given the
  /// plan's selectivity cascade and `input_tuples_per_s` at the bindings.
  double cpu_load = 0.0;
  /// Estimated bytes/s entering this fragment from outside (stream
  /// bindings and remote plan edges).
  double input_rate_bytes_s = 0.0;
};

/// Splits `plan` into at most `max_fragments` fragments (Section 4.1's
/// dynamic query partitioning). Operators are grouped along the
/// topological order into contiguous chunks of roughly equal estimated CPU
/// cost, which keeps pipeline neighbors together and bounds the number of
/// processors a query can touch (the distribution limit).
///
/// `input_tuples_per_s` is the expected arrival rate per bound stream,
/// used to estimate each fragment's cpu_load and input rate.
/// `next_fragment_id` provides ids and is advanced.
std::vector<FragmentSpec> FragmentQuery(const engine::QueryPlan& plan,
                                        common::QueryId query,
                                        int max_fragments,
                                        double input_tuples_per_s,
                                        double bytes_per_tuple,
                                        common::FragmentId* next_fragment_id);

}  // namespace dsps::placement

#endif  // DSPS_PLACEMENT_FRAGMENTER_H_
