#ifndef DSPS_PLACEMENT_PLACEMENT_H_
#define DSPS_PLACEMENT_PLACEMENT_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "placement/fragmenter.h"

namespace dsps::placement {

/// The optimizer's view of one processor.
struct ProcessorSpec {
  common::ProcessorId id = common::kInvalidProcessor;
  /// CPU seconds available per second (1.0 = one dedicated core).
  double capacity = 1.0;
  /// Load already committed (CPU s/s).
  double base_load = 0.0;
};

/// Everything a placement decision needs. Fragments of the same query
/// appear consecutively, in pipeline (topological) order, so a policy can
/// track which processors a query already uses.
struct PlacementInput {
  std::vector<ProcessorSpec> processors;
  std::vector<FragmentSpec> fragments;
  /// The processor at which each fragment's external input arrives: the
  /// stream delegate for source fragments, or the processor of the
  /// upstream fragment once placed (filled by policies as they go). -1 if
  /// unconstrained.
  std::map<common::FragmentId, common::ProcessorId> input_home;
  /// Maximum number of distinct processors one query may touch
  /// (Section 4.1's "distribution limit").
  int distribution_limit = 2;
};

/// fragment id -> processor id.
using Placement = std::map<common::FragmentId, common::ProcessorId>;

/// Places fragments on processors (Section 4.1). This is an *assignment*
/// problem: stream delegation pins where each query's input enters the
/// cluster, unlike Flux/Borealis-style symmetric partitioning.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;
  virtual common::Result<Placement> Place(const PlacementInput& input) = 0;
};

/// The paper's heuristics, in priority order: (1) balance load across
/// processors, (2) keep each query on at most `distribution_limit`
/// processors, (3) among balanced options minimize communication traffic
/// (prefer the fragment's input home and processors the query already
/// uses).
class PrAwarePlacement : public PlacementPolicy {
 public:
  struct Config {
    /// Utilization slack: among processors whose post-placement
    /// utilization is within this of the best, the lowest-traffic one
    /// wins. Keeps heuristic 1 (balance) primary and heuristic 3
    /// (traffic) subordinate, per Section 4.1.
    double balance_slack = 0.10;
  };
  PrAwarePlacement();
  explicit PrAwarePlacement(const Config& config);

  const char* name() const override { return "pr-aware"; }
  common::Result<Placement> Place(const PlacementInput& input) override;

 private:
  Config config_;
};

/// Baseline: balance CPU load only; ignores the distribution limit and all
/// traffic (what Flux/Borealis-style balancing would do to this problem).
class LoadOnlyPlacement : public PlacementPolicy {
 public:
  const char* name() const override { return "load-only"; }
  common::Result<Placement> Place(const PlacementInput& input) override;
};

/// Baseline: uniform random processor per fragment.
class RandomPlacement : public PlacementPolicy {
 public:
  explicit RandomPlacement(uint64_t seed = 1);
  const char* name() const override { return "random"; }
  common::Result<Placement> Place(const PlacementInput& input) override;

 private:
  common::Rng rng_;
};

/// Post-placement diagnostics used by tests and benches.
struct PlacementMetrics {
  /// max processor utilization (load/capacity).
  double max_utilization = 0.0;
  double mean_utilization = 0.0;
  /// Bytes/s crossing processor boundaries (fragment inputs whose home
  /// differs from their placement, plus inter-fragment edges across
  /// processors).
  double cross_traffic_bytes_s = 0.0;
  /// Number of queries exceeding the distribution limit.
  int limit_violations = 0;
  /// Max number of distinct processors used by one query.
  int max_processors_per_query = 0;
};

PlacementMetrics EvaluatePlacement(const PlacementInput& input,
                                   const Placement& placement);

}  // namespace dsps::placement

#endif  // DSPS_PLACEMENT_PLACEMENT_H_
