#include "placement/fragmenter.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace dsps::placement {

std::vector<FragmentSpec> FragmentQuery(const engine::QueryPlan& plan,
                                        common::QueryId query,
                                        int max_fragments,
                                        double input_tuples_per_s,
                                        double bytes_per_tuple,
                                        common::FragmentId* next_fragment_id) {
  DSPS_CHECK(next_fragment_id != nullptr);
  DSPS_CHECK(max_fragments >= 1);
  auto order_result = plan.TopologicalOrder();
  DSPS_CHECK(order_result.ok());
  const std::vector<common::OperatorId>& order = order_result.value();

  // Per-operator input rates (tuples/s), propagating selectivities.
  std::vector<double> in_rate(plan.num_operators(), 0.0);
  for (const engine::StreamBinding& b : plan.bindings()) {
    in_rate[b.to] += input_tuples_per_s;
  }
  std::vector<double> op_cost(plan.num_operators(), 0.0);
  for (common::OperatorId id : order) {
    op_cost[id] = in_rate[id] * plan.op(id).cost_per_tuple();
    double out_rate = in_rate[id] * plan.op(id).estimated_selectivity();
    for (const engine::PlanEdge& e : plan.edges()) {
      if (e.from == id) in_rate[e.to] += out_rate;
    }
  }
  double total_cost = 0.0;
  for (double c : op_cost) total_cost += c;

  // Contiguous chunking of the topological order into <= max_fragments
  // groups of roughly equal cost.
  int n_frags = std::min<int>(max_fragments, plan.num_operators());
  double target = total_cost / n_frags;
  std::vector<std::vector<common::OperatorId>> groups;
  groups.emplace_back();
  double acc = 0.0;
  for (common::OperatorId id : order) {
    if (!groups.back().empty() && acc + op_cost[id] > target * 1.2 &&
        static_cast<int>(groups.size()) < n_frags) {
      groups.emplace_back();
      acc = 0.0;
    }
    groups.back().push_back(id);
    acc += op_cost[id];
  }

  std::vector<FragmentSpec> out;
  out.reserve(groups.size());
  for (const auto& ops : groups) {
    FragmentSpec spec;
    spec.id = (*next_fragment_id)++;
    spec.query = query;
    spec.ops = ops;
    std::set<common::OperatorId> members(ops.begin(), ops.end());
    for (common::OperatorId id : ops) spec.cpu_load += op_cost[id];
    // External input rate: stream bindings into this group plus plan edges
    // arriving from other groups.
    for (const engine::StreamBinding& b : plan.bindings()) {
      if (members.count(b.to) > 0) {
        spec.input_rate_bytes_s += input_tuples_per_s * bytes_per_tuple;
      }
    }
    for (const engine::PlanEdge& e : plan.edges()) {
      if (members.count(e.to) > 0 && members.count(e.from) == 0) {
        double rate =
            in_rate[e.from] * plan.op(e.from).estimated_selectivity();
        spec.input_rate_bytes_s += rate * bytes_per_tuple;
      }
    }
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace dsps::placement
