#ifndef DSPS_PLACEMENT_REBALANCER_H_
#define DSPS_PLACEMENT_REBALANCER_H_

#include <vector>

#include "placement/placement.h"

namespace dsps::placement {

/// One planned fragment migration.
struct MoveDecision {
  common::FragmentId fragment = -1;
  common::ProcessorId from = common::kInvalidProcessor;
  common::ProcessorId to = common::kInvalidProcessor;
  double cpu_load = 0.0;
};

/// Plans fragment migrations to restore load balance at runtime
/// (Section 4.1's *dynamic* placement: fragments are "(re)placed onto a
/// processor" as conditions change). Greedy: while some processor exceeds
/// the mean utilization by more than the slack, move the best-fitting
/// fragment from the hottest processor to the coolest one that keeps the
/// owning query within the distribution limit.
class Rebalancer {
 public:
  struct Config {
    /// A processor is overloaded when util > mean util + slack.
    double slack = 0.15;
    /// Max migrations per Plan call (bounds disruption per round).
    int max_moves = 4;
  };

  Rebalancer();
  explicit Rebalancer(const Config& config);

  /// Plans moves for `current` placement of `input.fragments` on
  /// `input.processors` (whose base_load must exclude these fragments).
  std::vector<MoveDecision> Plan(const PlacementInput& input,
                                 const Placement& current) const;

 private:
  Config config_;
};

}  // namespace dsps::placement

#endif  // DSPS_PLACEMENT_REBALANCER_H_
