#include "placement/placement_map.h"

#include <algorithm>

#include "common/check.h"

namespace dsps::placement {

int32_t JumpConsistentHash(uint64_t key, int32_t num_buckets) {
  DSPS_CHECK(num_buckets > 0);
  int64_t b = -1;
  int64_t j = 0;
  while (j < num_buckets) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<int32_t>(b);
}

uint64_t HashMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

PlacementMap::PlacementMap(std::vector<int> domain_of, const Config& config)
    : config_(config), domain_of_(std::move(domain_of)) {
  DSPS_CHECK(!domain_of_.empty());
  DSPS_CHECK(config_.replicas >= 0);
  DSPS_CHECK(config_.rings >= 1);
  DSPS_CHECK(config_.vnodes >= 1);
  alive_.assign(domain_of_.size(), true);
  for (int d : domain_of_) {
    DSPS_CHECK(d >= 0);
    num_domains_ = std::max(num_domains_, d + 1);
  }
  rings_.resize(config_.rings);
  for (int r = 0; r < config_.rings; ++r) {
    std::vector<RingPoint>& ring = rings_[r];
    ring.reserve(domain_of_.size() * static_cast<size_t>(config_.vnodes));
    for (common::EntityId e = 0; e < num_entities(); ++e) {
      for (int v = 0; v < config_.vnodes; ++v) {
        RingPoint p;
        p.pos = HashMix(config_.seed ^
                        HashMix((static_cast<uint64_t>(r) << 40) ^
                                (static_cast<uint64_t>(e) << 16) ^
                                static_cast<uint64_t>(v)));
        p.entity = e;
        ring.push_back(p);
      }
    }
    std::sort(ring.begin(), ring.end(),
              [](const RingPoint& a, const RingPoint& b) {
                return a.pos != b.pos ? a.pos < b.pos : a.entity < b.entity;
              });
  }
}

void PlacementMap::SetAlive(common::EntityId entity, bool alive) {
  DSPS_CHECK(entity >= 0 && entity < num_entities());
  alive_[entity] = alive;
}

bool PlacementMap::IsAlive(common::EntityId entity) const {
  return entity >= 0 && entity < num_entities() && alive_[entity];
}

int PlacementMap::num_alive() const {
  int n = 0;
  for (bool a : alive_) n += a ? 1 : 0;
  return n;
}

std::vector<common::EntityId> PlacementMap::Targets(
    common::QueryId query) const {
  std::vector<common::EntityId> out;
  int alive = num_alive();
  if (alive == 0) return out;
  int want = std::min(config_.replicas + 1, alive);
  out.reserve(static_cast<size_t>(want));

  uint64_t h = HashMix(static_cast<uint64_t>(query) ^ config_.seed);
  int ring_index =
      config_.rings > 1 ? JumpConsistentHash(h, config_.rings) : 0;
  const std::vector<RingPoint>& ring = rings_[ring_index];
  uint64_t start = HashMix(h + 0x6A09E667F3BCC909ull);
  size_t begin = std::lower_bound(ring.begin(), ring.end(), start,
                                  [](const RingPoint& p, uint64_t pos) {
                                    return p.pos < pos;
                                  }) -
                 ring.begin();
  if (begin == ring.size()) begin = 0;

  std::vector<bool> chosen(domain_of_.size(), false);
  std::vector<bool> domain_used(static_cast<size_t>(num_domains_), false);
  // Pass 1: clockwise walk, one entity per fault domain.
  for (size_t i = 0;
       i < ring.size() && static_cast<int>(out.size()) < want; ++i) {
    common::EntityId e = ring[(begin + i) % ring.size()].entity;
    if (!alive_[e] || chosen[e]) continue;
    if (domain_used[domain_of_[e]]) continue;
    chosen[e] = true;
    domain_used[domain_of_[e]] = true;
    out.push_back(e);
  }
  // Pass 2: every alive domain is represented but more targets are
  // wanted — relax the domain constraint, same walk order.
  for (size_t i = 0;
       i < ring.size() && static_cast<int>(out.size()) < want; ++i) {
    common::EntityId e = ring[(begin + i) % ring.size()].entity;
    if (!alive_[e] || chosen[e]) continue;
    chosen[e] = true;
    out.push_back(e);
  }
  return out;
}

common::EntityId PlacementMap::Primary(common::QueryId query) const {
  std::vector<common::EntityId> targets = Targets(query);
  return targets.empty() ? common::kInvalidEntity : targets[0];
}

}  // namespace dsps::placement
