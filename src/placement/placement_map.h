#ifndef DSPS_PLACEMENT_PLACEMENT_MAP_H_
#define DSPS_PLACEMENT_PLACEMENT_MAP_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace dsps::placement {

/// Lamping-Veach jump consistent hash: maps `key` uniformly into
/// [0, num_buckets) such that growing the bucket count only remaps keys
/// into the newly added bucket (minimal disruption).
int32_t JumpConsistentHash(uint64_t key, int32_t num_buckets);

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
uint64_t HashMix(uint64_t x);

/// DAOS-style algorithmic placement map over fault domains.
///
/// Entities (dense ids [0, n)) are assigned to fault domains (racks /
/// sites — components that fail together). The map builds several
/// independent consistent-hash rings, each holding `vnodes` pseudo-random
/// virtual points per entity; a query is routed by jump-hashing onto one
/// ring and walking it clockwise from its hashed start position,
/// collecting a primary plus `replicas` warm-standby targets that straddle
/// distinct fault domains for as long as distinct domains remain.
///
/// The payoff is declustering: two queries co-resident on one entity walk
/// different rings from different offsets, so when that entity fails their
/// standby targets scatter across *all* survivors instead of piling onto
/// one neighbor — rebuild work spreads, and recovery time shrinks roughly
/// with the survivor count. Placement is stateless (any holder of the map
/// computes identical targets) and minimally disruptive: an entity's death
/// only changes the target lists that contained it.
class PlacementMap {
 public:
  struct Config {
    /// Warm standbys per query (k). Targets() returns up to replicas + 1
    /// entities: primary first, standbys after.
    int replicas = 2;
    /// Independent rings; more rings → better declustering of co-resident
    /// queries at map-build cost.
    int rings = 4;
    /// Virtual points per entity per ring.
    int vnodes = 16;
    uint64_t seed = 0x9E3779B97F4A7C15ull;
  };

  /// `domain_of[e]` is the fault domain of entity id `e`; every entity in
  /// [0, domain_of.size()) starts alive.
  PlacementMap(std::vector<int> domain_of, const Config& config);

  int num_entities() const { return static_cast<int>(domain_of_.size()); }
  int num_domains() const { return num_domains_; }
  int domain_of(common::EntityId entity) const { return domain_of_[entity]; }
  const Config& config() const { return config_; }

  /// Membership: dead entities are transparently skipped by Targets.
  void SetAlive(common::EntityId entity, bool alive);
  bool IsAlive(common::EntityId entity) const;
  int num_alive() const;

  /// The query's primary plus up to Config::replicas standbys — all
  /// alive, all distinct, and in pairwise-distinct fault domains while
  /// unused domains remain (the declustering walk relaxes the domain
  /// constraint only once every alive domain is represented). Empty iff
  /// no entity is alive. Stateless: equal maps give equal answers.
  std::vector<common::EntityId> Targets(common::QueryId query) const;

  /// Targets(query)[0]; kInvalidEntity when nothing is alive.
  common::EntityId Primary(common::QueryId query) const;

 private:
  struct RingPoint {
    uint64_t pos = 0;
    common::EntityId entity = common::kInvalidEntity;
  };

  Config config_;
  std::vector<int> domain_of_;
  std::vector<bool> alive_;
  int num_domains_ = 0;
  /// rings_[r] sorted by (pos, entity).
  std::vector<std::vector<RingPoint>> rings_;
};

}  // namespace dsps::placement

#endif  // DSPS_PLACEMENT_PLACEMENT_MAP_H_
