#ifndef DSPS_TELEMETRY_SKETCH_H_
#define DSPS_TELEMETRY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>

namespace dsps::telemetry {

/// Mergeable quantile sketch with bounded relative error (DDSketch-style
/// log-gamma bucketing).
///
/// Every observation is quantized to a geometric bucket whose estimate is
/// at most `relative_accuracy` away from the true value, so any quantile
/// query answers within that relative error of the exact sample quantile
/// regardless of stream length. Memory is O(buckets): with the default
/// 1% accuracy, values spanning six orders of magnitude fit in ~700
/// buckets (~11 KB), versus 8 bytes *per sample* for common::Histogram.
///
/// Choose Sketch for unbounded hot-path streams (per-result latency at
/// metro scale); choose common::Histogram when the sample count is small
/// and exact order statistics matter (detection latencies, CI-pinned
/// simulated-time results).
///
/// Merging adds bucket counts, so merge(a, b) is exact: the merged sketch
/// is identical to one that observed both streams. Merge order only
/// matters once `max_buckets` forces low-bucket collapsing (high
/// quantiles keep their error bound even then).
class Sketch {
 public:
  struct Config {
    /// Bound on the relative error of quantile estimates (alpha).
    double relative_accuracy = 0.01;
    /// Bucket budget per sign. When exceeded, the lowest-magnitude
    /// buckets collapse together: high quantiles stay accurate, the far
    /// low tail degrades. 1024 buckets cover ~9 decades at alpha=0.01.
    size_t max_buckets = 1024;
  };

  Sketch() : Sketch(Config{}) {}
  explicit Sketch(const Config& config);

  /// Adds `n` observations of value `x` (NaN is counted but ignored for
  /// quantiles; callers feed finite data on hot paths).
  void Add(double x, int64_t n = 1);

  /// Folds another sketch in. Both sketches must share the same
  /// relative_accuracy (checked); bucket counts add exactly.
  void Merge(const Sketch& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Exact extremes (tracked outside the buckets).
  double min() const;
  double max() const;

  /// The q-quantile (q in [0,1]) by nearest rank over the buckets; the
  /// returned value is within relative_accuracy of the exact sample at
  /// that rank. 0 when empty.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }

  size_t num_buckets() const { return pos_.size() + neg_.size(); }
  /// Approximate heap footprint of the bucket maps.
  size_t MemoryBytes() const;
  /// True once the bucket budget forced low-bucket collapsing.
  bool collapsed() const { return collapsed_; }

  const Config& config() const { return config_; }

  void Clear();

 private:
  /// |x| below this is counted in the zero bucket (sub-picosecond for
  /// second-valued latencies — indistinguishable from zero).
  static constexpr double kMinIndexable = 1e-12;

  int KeyFor(double magnitude) const;
  double ValueFor(int key) const;
  void Collapse(std::map<int, int64_t>& buckets);

  Config config_;
  double gamma_ = 0.0;
  double inv_log_gamma_ = 0.0;
  /// Bucket key -> count, keyed on the magnitude's log-gamma index.
  std::map<int, int64_t> pos_;
  std::map<int, int64_t> neg_;
  int64_t zero_count_ = 0;
  int64_t count_ = 0;
  double sum_ = 0.0;
  /// Exact extremes over finite observations; +/-inf sentinels until the
  /// first finite Add so NaN-only streams never poison them.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  bool collapsed_ = false;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_SKETCH_H_
