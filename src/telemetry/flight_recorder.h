#ifndef DSPS_TELEMETRY_FLIGHT_RECORDER_H_
#define DSPS_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace.h"

namespace dsps::telemetry {

/// Fixed-capacity ring of recent structured events — trace spans,
/// control-plane instants, audit summaries, net drops, anomalies —
/// overwriting oldest-first. Where TraceLog keeps the *first* N spans
/// and drops the tail, the flight recorder always holds the *last* N
/// events, which are exactly the ones a post-mortem needs.
///
/// DumpJsonl emits a deterministic JSONL snapshot (one header line, then
/// events oldest-to-newest in the same span/instant schema TraceLog
/// sinks use), so tools/trace_stats and tools/trace_export decompose
/// post-mortem rings and full traces alike. Auto-dump hooks fire it on
/// auditor violations, failed fatal checks, and watchdog anomalies.
class FlightRecorder {
 public:
  struct Config {
    /// Ring capacity in events (each ~128 bytes plus the instant name).
    size_t capacity = 4096;
    /// Destination for DumpOnce(); empty disables the auto-dump hooks.
    std::string dump_path;
  };

  enum class EventKind : int8_t {
    kSpan = 0,
    kInstant,
    kAnomaly,
    kAudit,
    kNetDrop,
  };

  struct Event {
    /// Monotonic sequence number over everything ever recorded.
    int64_t seq = 0;
    EventKind kind = EventKind::kInstant;
    Span span;        // kSpan only.
    Instant instant;  // All other kinds.
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(const Config& config);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void RecordSpan(const Span& span);
  void RecordInstant(std::string_view name, double t, int32_t node = -1,
                     double value = 0.0,
                     EventKind kind = EventKind::kInstant);

  /// Total events ever recorded (>= size once the ring wraps).
  int64_t recorded() const { return next_seq_; }
  /// Events overwritten by the wrap-around.
  int64_t overwritten() const {
    return next_seq_ - static_cast<int64_t>(ring_.size());
  }
  size_t size() const { return ring_.size(); }
  const Config& config() const { return config_; }

  /// Events oldest-to-newest (pointers valid until the next Record).
  std::vector<const Event*> Events() const;

  /// Deterministic JSONL dump: one header object
  /// {"flight":1,"capacity":...,"recorded":...,"overwritten":...}, then
  /// one span/instant object per event, oldest first.
  void DumpJsonl(std::ostream& os) const;
  bool DumpToFile(const std::string& path) const;

  /// Dumps to config.dump_path the first time it is called; later calls
  /// (and calls with an empty dump_path) return false without touching
  /// the file, so the retained post-mortem is the one nearest the
  /// *first* fault.
  bool DumpOnce();

  void Clear();

 private:
  Config config_;
  std::vector<Event> ring_;  // Index seq % capacity.
  int64_t next_seq_ = 0;
  bool dumped_ = false;
};

/// Installs a process-wide fatal-check hook (common::SetFatalHook) that
/// DumpOnce()s `recorder` just before a failed DSPS_CHECK aborts.
/// Passing nullptr uninstalls.
void InstallFatalDumpHook(FlightRecorder* recorder);

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_FLIGHT_RECORDER_H_
