#ifndef DSPS_TELEMETRY_CHROME_TRACE_H_
#define DSPS_TELEMETRY_CHROME_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace dsps::telemetry {

/// Spans + instants re-read from the JSONL the sinks write. Decouples the
/// exporter from a live TraceLog so tools/trace_export can run on a file
/// long after the bench exited.
struct TraceRecords {
  std::vector<Span> spans;
  std::vector<Instant> instants;
  /// Set when the input was a FlightRecorder dump (leading
  /// {"flight":...} header): ring capacity and how much history the
  /// wrap-around discarded, so tools can say "last N of M events".
  bool from_flight_recorder = false;
  int64_t flight_capacity = 0;
  int64_t flight_recorded = 0;
  int64_t flight_overwritten = 0;
};

/// Parses the trace JSONL format (one span or instant object per line;
/// blank lines allowed), including flight-recorder dumps (their header
/// line fills the flight_* fields). Strict: any malformed line —
/// including a truncated final line from a killed run — fails with its
/// 1-based line number rather than silently dropping data.
common::Result<TraceRecords> ReadTraceJsonLines(std::istream& is);

/// Renders the records as a Chrome trace-event JSON document (the format
/// chrome://tracing, Perfetto, and speedscope load):
///  - process 1 "dsps traced tuples": one "X" (complete) event per span,
///    one thread per trace id, ts/dur in microseconds of simulated time;
///  - process 2 "dsps system events": one "i" (global instant) event per
///    control-plane instant (repartition, tree_reorg, crash, ...).
/// Deterministic byte-for-byte for identical records.
std::string ToChromeTraceJson(const TraceRecords& records);

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_CHROME_TRACE_H_
