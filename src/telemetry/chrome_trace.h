#ifndef DSPS_TELEMETRY_CHROME_TRACE_H_
#define DSPS_TELEMETRY_CHROME_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace dsps::telemetry {

/// Spans + instants re-read from the JSONL the sinks write. Decouples the
/// exporter from a live TraceLog so tools/trace_export can run on a file
/// long after the bench exited.
struct TraceRecords {
  std::vector<Span> spans;
  std::vector<Instant> instants;
};

/// Parses the trace JSONL format (one span or instant object per line;
/// blank lines allowed). Strict: any malformed line — including a
/// truncated final line from a killed run — fails with its 1-based line
/// number rather than silently dropping data.
common::Result<TraceRecords> ReadTraceJsonLines(std::istream& is);

/// Renders the records as a Chrome trace-event JSON document (the format
/// chrome://tracing, Perfetto, and speedscope load):
///  - process 1 "dsps traced tuples": one "X" (complete) event per span,
///    one thread per trace id, ts/dur in microseconds of simulated time;
///  - process 2 "dsps system events": one "i" (global instant) event per
///    control-plane instant (repartition, tree_reorg, crash, ...).
/// Deterministic byte-for-byte for identical records.
std::string ToChromeTraceJson(const TraceRecords& records);

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_CHROME_TRACE_H_
