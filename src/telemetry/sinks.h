#ifndef DSPS_TELEMETRY_SINKS_H_
#define DSPS_TELEMETRY_SINKS_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace dsps::telemetry {

/// Serializes one span as a single-line JSON object (no newline).
std::string SpanToJson(const Span& span);

/// Serializes one instant event as a single-line JSON object (no
/// newline). Distinguished from spans by its "instant" key.
std::string InstantToJson(const Instant& instant);

/// Writes every retained span — then every instant — as one JSON object
/// per line (JSONL), the format tools/trace_stats and tools/trace_export
/// consume.
void WriteSpansJsonLines(const TraceLog& log, std::ostream& os);

/// WriteSpansJsonLines into a file; fails with a Status on IO errors.
common::Status WriteSpansFile(const TraceLog& log, const std::string& path);

/// Prints a per-stage latency breakdown (count, total, mean/p50/p95/p99 in
/// ms) of the log's spans as an aligned table.
void PrintTraceSummary(const TraceLog& log, std::ostream& os);

/// Prints every sample of a snapshot as an aligned table (histograms show
/// count/mean/p95).
void PrintMetricsSummary(const MetricsSnapshot& snapshot, std::ostream& os);

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_SINKS_H_
