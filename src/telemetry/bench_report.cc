#include "telemetry/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "telemetry/json.h"

namespace dsps::telemetry {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetHeadline(std::string_view key, double value,
                              Labels labels) {
  registry_.gauge(std::string("headline.") + std::string(key),
                  std::move(labels))
      ->Set(value);
}

void BenchReport::MergeSnapshot(const MetricsSnapshot& snapshot,
                                const Labels& extra_labels) {
  for (const MetricSample& s : snapshot.samples) {
    Labels labels = s.labels;
    for (const auto& extra : extra_labels) labels.push_back(extra);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        registry_.counter(s.name, std::move(labels))
            ->Increment(static_cast<int64_t>(s.value));
        break;
      case MetricSample::Kind::kGauge:
        registry_.gauge(s.name, std::move(labels))->Set(s.value);
        break;
      case MetricSample::Kind::kHistogram: {
        // Summarized histograms cannot be re-merged sample-exactly; keep
        // the summary as gauges so the trajectory stays comparable.
        Labels base = labels;
        registry_.gauge(s.name + ".count", base)
            ->Set(static_cast<double>(s.count));
        registry_.gauge(s.name + ".mean", base)->Set(s.mean);
        registry_.gauge(s.name + ".p50", base)->Set(s.p50);
        registry_.gauge(s.name + ".p95", base)->Set(s.p95);
        registry_.gauge(s.name + ".p99", base)->Set(s.p99);
        registry_.gauge(s.name + ".max", std::move(base))->Set(s.max);
        break;
      }
    }
  }
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(name_);
  w.Key("metrics").Raw(registry_.Snapshot().ToJson());
  w.EndObject();
  return w.TakeString();
}

std::string BenchReport::OutputPath() const {
  const char* dir = std::getenv("DSPS_BENCH_DIR");
  std::string prefix = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
  return prefix + "BENCH_" + name_ + ".json";
}

common::Status BenchReport::WriteFile() const {
  std::string path = OutputPath();
  std::ofstream os(path);
  if (!os) return common::Status::InvalidArgument("cannot open " + path);
  os << ToJson() << '\n';
  os.flush();
  if (!os) return common::Status::Internal("write failed for " + path);
  return common::Status::OK();
}

void BenchReport::WriteFileOrDie() const {
  common::Status s = WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "BenchReport: %s\n", s.ToString().c_str());
    std::abort();
  }
  std::printf("wrote %s\n", OutputPath().c_str());
}

}  // namespace dsps::telemetry
