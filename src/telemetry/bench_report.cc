#include "telemetry/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "telemetry/json.h"

namespace dsps::telemetry {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetHeadline(std::string_view key, double value,
                              Labels labels) {
  registry_.gauge(std::string("headline.") + std::string(key),
                  std::move(labels))
      ->Set(value);
}

void BenchReport::MergeSnapshot(const MetricsSnapshot& snapshot,
                                const Labels& extra_labels) {
  for (const MetricSample& s : snapshot.samples) {
    Labels labels = s.labels;
    for (const auto& extra : extra_labels) labels.push_back(extra);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        registry_.counter(s.name, std::move(labels))
            ->Increment(static_cast<int64_t>(s.value));
        break;
      case MetricSample::Kind::kGauge:
        registry_.gauge(s.name, std::move(labels))->Set(s.value);
        break;
      case MetricSample::Kind::kHistogram: {
        // Summarized histograms cannot be re-merged sample-exactly; keep
        // the summary as gauges so the trajectory stays comparable.
        Labels base = labels;
        registry_.gauge(s.name + ".count", base)
            ->Set(static_cast<double>(s.count));
        registry_.gauge(s.name + ".mean", base)->Set(s.mean);
        registry_.gauge(s.name + ".p50", base)->Set(s.p50);
        registry_.gauge(s.name + ".p95", base)->Set(s.p95);
        registry_.gauge(s.name + ".p99", base)->Set(s.p99);
        registry_.gauge(s.name + ".max", std::move(base))->Set(s.max);
        break;
      }
    }
  }
}

void BenchReport::AttachSeries(const TimeSeriesRecorder* recorder,
                               Labels labels) {
  series_.emplace_back(recorder, std::move(labels));
}

void BenchReport::AttachTrace(const TraceLog* trace, Labels labels) {
  traces_.emplace_back(trace, std::move(labels));
}

std::string BenchReport::ToJson() {
  // Span loss is a first-class health signal: every report carries the
  // drop counters (zero when tracing is off or nothing dropped) so the
  // doctor can flag truncated traces without guessing at schema.
  int64_t dropped_spans = 0;
  int64_t dropped_instants = 0;
  for (const auto& [trace, labels] : traces_) {
    dropped_spans += trace->dropped_spans();
    dropped_instants += trace->dropped_instants();
  }
  auto sync = [this](const char* name, int64_t target) {
    Counter* c = registry_.counter(name);
    if (c->value() != target) c->Increment(target - c->value());
  };
  sync("trace.dropped_spans", dropped_spans);
  sync("trace.dropped_instants", dropped_instants);
  if (!stage_sketches_folded_) {
    stage_sketches_folded_ = true;
    for (const auto& [trace, labels] : traces_) {
      for (const auto& [stage, sketch] : trace->stage_sketches()) {
        Labels stage_labels = labels;
        stage_labels.emplace_back("stage", StageName(stage));
        registry_.histogram("trace.stage_s", std::move(stage_labels))
            ->MergeSketch(sketch);
      }
    }
  }
  auto render = [this] {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("metrics").Raw(registry_.Snapshot().ToJson());
    bool any_series = false;
    for (const auto& [recorder, labels] : series_) {
      if (recorder->empty()) continue;
      if (!any_series) {
        w.Key("series").BeginArray();
        any_series = true;
      }
      recorder->AppendJson(&w, labels);
    }
    if (any_series) w.EndArray();
    w.EndObject();
    return w.TakeString();
  };
  std::string body = render();
  // Rendering may itself have pushed non-finite values through JsonNumber;
  // fold the process-wide count in and re-render so the report admits to
  // its own nulls. No counter is interned when the count is zero, keeping
  // clean reports byte-identical to the pre-counter format.
  int64_t nonfinite = NonfiniteJsonValues();
  int64_t overflow = common::Histogram::TotalOverflow();
  if (nonfinite > 0 || overflow > 0) {
    if (nonfinite > 0) {
      Counter* c = registry_.counter("telemetry.nonfinite_values");
      if (c->value() != nonfinite) c->Increment(nonfinite - c->value());
    }
    if (overflow > 0) {
      // Capped histograms silently stopped storing samples somewhere in
      // this process; the report owns up to the truncation.
      Counter* c = registry_.counter("common.histogram_overflow");
      if (c->value() != overflow) c->Increment(overflow - c->value());
    }
    body = render();
  }
  return body;
}

std::string BenchReport::OutputPath() const {
  const char* dir = std::getenv("DSPS_BENCH_DIR");
  std::string prefix = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
  return prefix + "BENCH_" + name_ + ".json";
}

common::Status BenchReport::WriteFile() {
  std::string path = OutputPath();
  std::ofstream os(path);
  if (!os) return common::Status::InvalidArgument("cannot open " + path);
  os << ToJson() << '\n';
  os.flush();
  if (!os) return common::Status::Internal("write failed for " + path);
  return common::Status::OK();
}

void BenchReport::WriteFileOrDie() {
  common::Status s = WriteFile();
  if (!s.ok()) {
    std::fprintf(stderr, "BenchReport: %s\n", s.ToString().c_str());
    std::abort();
  }
  std::printf("wrote %s\n", OutputPath().c_str());
}

}  // namespace dsps::telemetry
