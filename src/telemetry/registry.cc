#include "telemetry/registry.h"

#include <algorithm>

#include "telemetry/json.h"

namespace dsps::telemetry {

Labels MakeLabels(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  Labels out(labels);
  std::sort(out.begin(), out.end());
  return out;
}

const char* MetricKindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry::Key MetricsRegistry::MakeKey(std::string_view name,
                                              Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter* MetricsRegistry::counter(std::string_view name, Labels labels) {
  auto [it, inserted] =
      counters_.try_emplace(MakeKey(name, std::move(labels)), nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, Labels labels) {
  auto [it, inserted] =
      gauges_.try_emplace(MakeKey(name, std::move(labels)), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

HistogramMetric* MetricsRegistry::histogram(std::string_view name,
                                            Labels labels) {
  auto [it, inserted] =
      histograms_.try_emplace(MakeKey(name, std::move(labels)), nullptr);
  if (inserted) {
    it->second = sketch_mode_
                     ? std::make_unique<HistogramMetric>(sketch_config_)
                     : std::make_unique<HistogramMetric>();
  }
  return it->second.get();
}

void MetricsRegistry::UseSketches(const Sketch::Config& config) {
  sketch_mode_ = true;
  sketch_config_ = config;
}

void HistogramMetric::MergeSketch(const Sketch& other) {
  if (sketch_ == nullptr) {
    sketch_ = std::make_unique<Sketch>(other.config());
    for (double x : data_.samples()) sketch_->Add(x);
    data_ = common::Histogram();
  }
  sketch_->Merge(other);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(size());
  for (const auto& [key, metric] : counters_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(metric->value());
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, metric] : gauges_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricSample::Kind::kGauge;
    s.value = metric->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, metric] : histograms_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = metric->count();
    s.mean = metric->mean();
    s.p50 = metric->p50();
    s.p95 = metric->p95();
    s.p99 = metric->p99();
    s.max = metric->max();
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.labels != b.labels) return a.labels < b.labels;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return snap;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [key, metric] : other.counters_) {
    counter(key.first, key.second)->Increment(metric->value());
  }
  for (const auto& [key, metric] : other.gauges_) {
    gauge(key.first, key.second)->Set(metric->value());
  }
  for (const auto& [key, metric] : other.histograms_) {
    HistogramMetric* mine = histogram(key.first, key.second);
    if (metric->sketch_backed()) {
      mine->MergeSketch(*metric->sketch());
    } else {
      mine->Merge(metric->data());
    }
  }
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          const Labels& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginArray();
  for (const MetricSample& s : samples) {
    w.BeginObject();
    w.Key("name").String(s.name);
    if (!s.labels.empty()) {
      w.Key("labels").BeginObject();
      for (const auto& [k, v] : s.labels) w.Key(k).String(v);
      w.EndObject();
    }
    w.Key("kind").String(MetricKindName(s.kind));
    if (s.kind == MetricSample::Kind::kHistogram) {
      w.Key("count").Int(s.count);
      w.Key("mean").Number(s.mean);
      w.Key("p50").Number(s.p50);
      w.Key("p95").Number(s.p95);
      w.Key("p99").Number(s.p99);
      w.Key("max").Number(s.max);
    } else {
      w.Key("value").Number(s.value);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

}  // namespace dsps::telemetry
