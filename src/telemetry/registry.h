#ifndef DSPS_TELEMETRY_REGISTRY_H_
#define DSPS_TELEMETRY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace dsps::telemetry {

/// A metric's label set: (key, value) pairs. The registry sorts them by
/// key at intern time, so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Builds a label set from an initializer-friendly form.
Labels MakeLabels(std::initializer_list<std::pair<std::string, std::string>>
                      labels);

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-written-value metric.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution metric backed by common::Histogram (exact percentiles).
class HistogramMetric {
 public:
  void Observe(double x) { data_.Add(x); }
  void Merge(const common::Histogram& other) { data_.Merge(other); }
  const common::Histogram& data() const { return data_; }

 private:
  common::Histogram data_;
};

/// One exported sample: the point-in-time value of a metric series.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  /// Counter / gauge value (counters exported as exact integers cast to
  /// double; bench-scale counts stay well under 2^53).
  double value = 0.0;
  /// Histogram summary (kind == kHistogram only).
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

const char* MetricKindName(MetricSample::Kind kind);

/// A deterministic point-in-time export of a registry: samples sorted by
/// (name, labels, kind), so identical registry contents serialize to
/// identical bytes regardless of registration order.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// JSON array of sample objects.
  std::string ToJson() const;
  /// First sample matching (name, labels), or nullptr.
  const MetricSample* Find(std::string_view name,
                           const Labels& labels = {}) const;
};

/// Registry of labeled counters, gauges, and histograms. Components call
/// counter()/gauge()/histogram() once to intern a series and cache the
/// returned pointer (stable for the registry's lifetime); the hot path is
/// then a plain field update. Not thread-safe — the simulation is
/// single-threaded by design.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns (or finds) the series; the pointer stays valid until the
  /// registry is destroyed.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  HistogramMetric* histogram(std::string_view name, Labels labels = {});

  /// Number of interned series across all kinds.
  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Deterministic export of every series.
  MetricsSnapshot Snapshot() const;

  /// Folds another registry in: counters add, gauges take the other's
  /// value, histograms merge their samples.
  void MergeFrom(const MetricsRegistry& other);

 private:
  using Key = std::pair<std::string, Labels>;

  static Key MakeKey(std::string_view name, Labels labels);

  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_REGISTRY_H_
