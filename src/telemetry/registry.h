#ifndef DSPS_TELEMETRY_REGISTRY_H_
#define DSPS_TELEMETRY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "telemetry/sketch.h"

namespace dsps::telemetry {

/// A metric's label set: (key, value) pairs. The registry sorts them by
/// key at intern time, so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Builds a label set from an initializer-friendly form.
Labels MakeLabels(std::initializer_list<std::pair<std::string, std::string>>
                      labels);

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-written-value metric.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution metric. Exact by default (common::Histogram, every sample
/// kept); a registry in sketch mode backs it with a bounded
/// telemetry::Sketch instead, so unbounded hot-path streams export the
/// same count/mean/p50/p95/p99/max summary in O(buckets) memory. Call
/// sites are identical either way.
class HistogramMetric {
 public:
  HistogramMetric() = default;
  explicit HistogramMetric(const Sketch::Config& config)
      : sketch_(std::make_unique<Sketch>(config)) {}

  void Observe(double x) {
    if (sketch_ != nullptr) {
      sketch_->Add(x);
    } else {
      data_.Add(x);
    }
  }
  /// Folds exact samples in (replayed one by one when sketch-backed).
  void Merge(const common::Histogram& other) {
    if (sketch_ != nullptr) {
      for (double x : other.samples()) sketch_->Add(x);
    } else {
      data_.Merge(other);
    }
  }
  /// Folds a sketch in. An exact-backed metric is promoted to sketch
  /// backing first (exact samples replayed into the sketch) — the only
  /// lossless direction.
  void MergeSketch(const Sketch& other);

  bool sketch_backed() const { return sketch_ != nullptr; }
  /// Exact backing store; empty when sketch-backed.
  const common::Histogram& data() const { return data_; }
  /// Sketch backing store; nullptr when exact.
  const Sketch* sketch() const { return sketch_.get(); }

  /// Uniform summary surface used by snapshots regardless of backing.
  int64_t count() const {
    return sketch_ ? sketch_->count() : static_cast<int64_t>(data_.count());
  }
  double mean() const { return sketch_ ? sketch_->mean() : data_.mean(); }
  double p50() const { return sketch_ ? sketch_->p50() : data_.p50(); }
  double p95() const { return sketch_ ? sketch_->p95() : data_.p95(); }
  double p99() const { return sketch_ ? sketch_->p99() : data_.p99(); }
  double max() const { return sketch_ ? sketch_->max() : data_.max(); }

 private:
  common::Histogram data_;
  std::unique_ptr<Sketch> sketch_;
};

/// One exported sample: the point-in-time value of a metric series.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  /// Counter / gauge value (counters exported as exact integers cast to
  /// double; bench-scale counts stay well under 2^53).
  double value = 0.0;
  /// Histogram summary (kind == kHistogram only).
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

const char* MetricKindName(MetricSample::Kind kind);

/// A deterministic point-in-time export of a registry: samples sorted by
/// (name, labels, kind), so identical registry contents serialize to
/// identical bytes regardless of registration order.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// JSON array of sample objects.
  std::string ToJson() const;
  /// First sample matching (name, labels), or nullptr.
  const MetricSample* Find(std::string_view name,
                           const Labels& labels = {}) const;
};

/// Registry of labeled counters, gauges, and histograms. Components call
/// counter()/gauge()/histogram() once to intern a series and cache the
/// returned pointer (stable for the registry's lifetime); the hot path is
/// then a plain field update. Not thread-safe — the simulation is
/// single-threaded by design.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns (or finds) the series; the pointer stays valid until the
  /// registry is destroyed.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  HistogramMetric* histogram(std::string_view name, Labels labels = {});

  /// Switches histogram series interned *after* this call to bounded
  /// sketch backing (existing series keep their backing, so flip the
  /// mode before components intern). Snapshot output keeps the exact
  /// same shape — only the memory/accuracy trade changes.
  void UseSketches(const Sketch::Config& config = {});
  bool sketch_mode() const { return sketch_mode_; }

  /// Number of interned series across all kinds.
  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Deterministic export of every series.
  MetricsSnapshot Snapshot() const;

  /// Folds another registry in: counters add, gauges take the other's
  /// value, histograms merge their samples.
  void MergeFrom(const MetricsRegistry& other);

 private:
  using Key = std::pair<std::string, Labels>;

  static Key MakeKey(std::string_view name, Labels labels);

  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_;
  bool sketch_mode_ = false;
  Sketch::Config sketch_config_;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_REGISTRY_H_
