#include "telemetry/chrome_trace.h"

#include <istream>
#include <string>
#include <utility>

#include "telemetry/json.h"

namespace dsps::telemetry {

namespace {

common::Status LineError(size_t line_no, const std::string& detail) {
  return common::Status::InvalidArgument(
      "trace JSONL line " + std::to_string(line_no) + ": " + detail);
}

}  // namespace

common::Result<TraceRecords> ReadTraceJsonLines(std::istream& is) {
  TraceRecords out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok()) {
      return LineError(line_no, parsed.status().message());
    }
    const JsonValue& v = parsed.value();
    if (!v.is_object()) {
      return LineError(line_no, "expected a JSON object");
    }
    if (v.Find("flight") != nullptr) {
      out.from_flight_recorder = true;
      out.flight_capacity = static_cast<int64_t>(v.NumberOr("capacity", 0.0));
      out.flight_recorded = static_cast<int64_t>(v.NumberOr("recorded", 0.0));
      out.flight_overwritten =
          static_cast<int64_t>(v.NumberOr("overwritten", 0.0));
      continue;
    }
    if (const JsonValue* name = v.Find("instant"); name != nullptr) {
      if (name->kind != JsonValue::Kind::kString) {
        return LineError(line_no, "\"instant\" must be a string");
      }
      if (v.Find("t") == nullptr) {
        return LineError(line_no, "instant missing \"t\"");
      }
      Instant instant;
      instant.name = name->string;
      instant.t = v.NumberOr("t", 0.0);
      instant.node = static_cast<int32_t>(v.NumberOr("node", -1.0));
      instant.value = v.NumberOr("value", 0.0);
      out.instants.push_back(std::move(instant));
      continue;
    }
    for (const char* key : {"trace", "stage", "start", "end"}) {
      if (v.Find(key) == nullptr) {
        return LineError(line_no,
                         std::string("span missing \"") + key + "\"");
      }
    }
    Span span;
    span.trace = static_cast<int64_t>(v.NumberOr("trace", 0.0));
    span.stage = StageFromName(v.StringOr("stage", "other"));
    span.start = v.NumberOr("start", 0.0);
    span.end = v.NumberOr("end", 0.0);
    span.from = static_cast<int32_t>(v.NumberOr("from", -1.0));
    span.to = static_cast<int32_t>(v.NumberOr("to", -1.0));
    span.query = static_cast<int64_t>(v.NumberOr("query", -1.0));
    span.tenant = static_cast<int64_t>(v.NumberOr("tenant", -1.0));
    out.spans.push_back(span);
  }
  // A truncated last line (no trailing newline, killed mid-write) still
  // reaches getline and fails ParseJson above, so arriving here means the
  // whole file parsed.
  return out;
}

namespace {

constexpr int kTuplePid = 1;
constexpr int kSystemPid = 2;

void WriteMetadata(JsonWriter* w, int pid, const char* process_name) {
  w->BeginObject();
  w->Key("ph").String("M");
  w->Key("pid").Int(pid);
  w->Key("tid").Int(0);
  w->Key("name").String("process_name");
  w->Key("args").BeginObject();
  w->Key("name").String(process_name);
  w->EndObject();
  w->EndObject();
}

}  // namespace

std::string ToChromeTraceJson(const TraceRecords& records) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  WriteMetadata(&w, kTuplePid, "dsps traced tuples");
  WriteMetadata(&w, kSystemPid, "dsps system events");
  for (const Span& span : records.spans) {
    w.BeginObject();
    w.Key("ph").String("X");
    w.Key("pid").Int(kTuplePid);
    // One Perfetto track per traced tuple: its spans line up causally.
    w.Key("tid").Int(span.trace);
    w.Key("name").String(StageName(span.stage));
    // Simulated seconds -> trace-event microseconds.
    w.Key("ts").Number(span.start * 1e6);
    w.Key("dur").Number(span.duration() * 1e6);
    w.Key("args").BeginObject();
    if (span.from >= 0) w.Key("from").Int(span.from);
    if (span.to >= 0) w.Key("to").Int(span.to);
    if (span.query >= 0) w.Key("query").Int(span.query);
    if (span.tenant >= 0) w.Key("tenant").Int(span.tenant);
    w.EndObject();
    w.EndObject();
  }
  for (const Instant& instant : records.instants) {
    w.BeginObject();
    w.Key("ph").String("i");
    w.Key("pid").Int(kSystemPid);
    w.Key("tid").Int(0);
    w.Key("name").String(instant.name);
    w.Key("ts").Number(instant.t * 1e6);
    w.Key("s").String("g");
    w.Key("args").BeginObject();
    if (instant.node >= 0) w.Key("node").Int(instant.node);
    w.Key("value").Number(instant.value);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace dsps::telemetry
