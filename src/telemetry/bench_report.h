#ifndef DSPS_TELEMETRY_BENCH_REPORT_H_
#define DSPS_TELEMETRY_BENCH_REPORT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace dsps::telemetry {

/// Machine-readable benchmark output: collects headline numbers and metric
/// snapshots from a bench run and writes `BENCH_<name>.json` next to the
/// human-readable tables, establishing a perf trajectory across PRs.
///
/// Usage in a bench binary:
///   telemetry::BenchReport report("e1_dissemination");
///   report.SetHeadline("wan_mb", wan_mb, {{"entities", "64"}});
///   report.MergeSnapshot(registry.Snapshot(), {{"entities", "64"}});
///   report.WriteFileOrDie();
class BenchReport {
 public:
  /// `name` is the experiment id; the output file is BENCH_<name>.json in
  /// the current directory (override with env DSPS_BENCH_DIR).
  explicit BenchReport(std::string name);

  const std::string& name() const { return name_; }

  /// Records one headline number as a gauge named "headline.<key>".
  void SetHeadline(std::string_view key, double value, Labels labels = {});

  /// Folds a component registry snapshot into the report, appending
  /// `extra_labels` to every sample (e.g. the sweep point of this row).
  void MergeSnapshot(const MetricsSnapshot& snapshot,
                     const Labels& extra_labels = {});

  /// A registry owned by the report, for benches that want components to
  /// write into the report directly.
  MetricsRegistry* registry() { return &registry_; }

  /// Attaches a time-series recorder; its windows appear as one block of
  /// the report's "series" array, annotated with `labels` (e.g. the
  /// scenario of this run). The recorder must outlive the report. Empty
  /// recorders are skipped at serialization time, so attaching a
  /// never-sampled recorder leaves the JSON byte-identical.
  void AttachSeries(const TimeSeriesRecorder* recorder, Labels labels = {});

  /// Attaches a trace log (must outlive the report): its drop counts add
  /// into the report's trace.dropped_* counters, and any per-stage
  /// sketches (aggregate_stages mode) appear as "trace.stage_s"
  /// histogram samples labeled by stage.
  void AttachTrace(const TraceLog* trace, Labels labels = {});

  /// {"bench": name, "metrics": [...], "series": [...]}; deterministic
  /// for identical data. "series" is present only when a non-empty
  /// recorder is attached. Non-const: folds the process-wide non-finite
  /// JSON value count (see JsonNumber) into a `telemetry.nonfinite_values`
  /// counter, the process-wide Histogram sample-cap overflow into
  /// `common.histogram_overflow` (zero folds nothing, keeping clean
  /// reports byte-identical), and always exports trace.dropped_spans /
  /// trace.dropped_instants counters so span loss is a headline signal
  /// in every report.
  std::string ToJson();

  /// Resolved output path (honors DSPS_BENCH_DIR).
  std::string OutputPath() const;

  common::Status WriteFile();
  /// WriteFile, aborting on failure (bench binaries have no error path).
  void WriteFileOrDie();

 private:
  std::string name_;
  MetricsRegistry registry_;
  std::vector<std::pair<const TimeSeriesRecorder*, Labels>> series_;
  std::vector<std::pair<const TraceLog*, Labels>> traces_;
  bool stage_sketches_folded_ = false;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_BENCH_REPORT_H_
