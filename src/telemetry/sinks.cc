#include "telemetry/sinks.h"

#include <array>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/table.h"
#include "telemetry/json.h"

namespace dsps::telemetry {

std::string SpanToJson(const Span& span) {
  JsonWriter w;
  w.BeginObject();
  w.Key("trace").Int(span.trace);
  w.Key("stage").String(StageName(span.stage));
  w.Key("start").Number(span.start);
  w.Key("end").Number(span.end);
  if (span.from >= 0) w.Key("from").Int(span.from);
  if (span.to >= 0) w.Key("to").Int(span.to);
  if (span.query >= 0) w.Key("query").Int(span.query);
  if (span.tenant >= 0) w.Key("tenant").Int(span.tenant);
  w.EndObject();
  return w.TakeString();
}

std::string InstantToJson(const Instant& instant) {
  JsonWriter w;
  w.BeginObject();
  w.Key("instant").String(instant.name);
  w.Key("t").Number(instant.t);
  if (instant.node >= 0) w.Key("node").Int(instant.node);
  if (instant.value != 0.0) w.Key("value").Number(instant.value);
  w.EndObject();
  return w.TakeString();
}

void WriteSpansJsonLines(const TraceLog& log, std::ostream& os) {
  for (const Span& span : log.spans()) {
    os << SpanToJson(span) << '\n';
  }
  for (const Instant& instant : log.instants()) {
    os << InstantToJson(instant) << '\n';
  }
}

common::Status WriteSpansFile(const TraceLog& log, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return common::Status::InvalidArgument("cannot open " + path);
  }
  WriteSpansJsonLines(log, os);
  os.flush();
  if (!os) return common::Status::Internal("write failed for " + path);
  return common::Status::OK();
}

void PrintTraceSummary(const TraceLog& log, std::ostream& os) {
  common::Table table({"stage", "spans", "total ms", "mean ms", "p50 ms",
                       "p95 ms", "p99 ms"});
  if (!log.stage_sketches().empty()) {
    // Aggregate-stages mode: the bounded sketches carry the breakdown
    // (and, with retain_spans off, the spans were never stored).
    for (const auto& [stage, sketch] : log.stage_sketches()) {
      table.AddRow({StageName(stage), common::Table::Int(sketch.count()),
                    common::Table::Num(sketch.sum() * 1e3, 3),
                    common::Table::Num(sketch.mean() * 1e3, 4),
                    common::Table::Num(sketch.p50() * 1e3, 4),
                    common::Table::Num(sketch.p95() * 1e3, 4),
                    common::Table::Num(sketch.p99() * 1e3, 4)});
    }
    os << table.ToString();
    return;
  }
  std::map<Stage, common::Histogram> per_stage;
  for (const Span& span : log.spans()) {
    per_stage[span.stage].Add(span.duration());
  }
  for (const auto& [stage, hist] : per_stage) {
    table.AddRow({StageName(stage),
                  common::Table::Int(static_cast<int64_t>(hist.count())),
                  common::Table::Num(hist.mean() * hist.count() * 1e3, 3),
                  common::Table::Num(hist.mean() * 1e3, 4),
                  common::Table::Num(hist.p50() * 1e3, 4),
                  common::Table::Num(hist.p95() * 1e3, 4),
                  common::Table::Num(hist.p99() * 1e3, 4)});
  }
  os << table.ToString();
}

namespace {

std::string LabelsToString(const Labels& labels) {
  std::ostringstream os;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ',';
    os << labels[i].first << '=' << labels[i].second;
  }
  return os.str();
}

}  // namespace

void PrintMetricsSummary(const MetricsSnapshot& snapshot, std::ostream& os) {
  common::Table table({"metric", "labels", "kind", "value / count", "mean",
                       "p95"});
  for (const MetricSample& s : snapshot.samples) {
    if (s.kind == MetricSample::Kind::kHistogram) {
      table.AddRow({s.name, LabelsToString(s.labels), MetricKindName(s.kind),
                    common::Table::Int(s.count), common::Table::Num(s.mean, 6),
                    common::Table::Num(s.p95, 6)});
    } else {
      table.AddRow({s.name, LabelsToString(s.labels), MetricKindName(s.kind),
                    common::Table::Num(s.value, 3), "", ""});
    }
  }
  os << table.ToString();
}

}  // namespace dsps::telemetry
