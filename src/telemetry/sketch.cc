#include "telemetry/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dsps::telemetry {

Sketch::Sketch(const Config& config) : config_(config) {
  DSPS_CHECK(config_.relative_accuracy > 0.0 &&
             config_.relative_accuracy < 1.0);
  DSPS_CHECK(config_.max_buckets >= 8);
  gamma_ = (1.0 + config_.relative_accuracy) /
           (1.0 - config_.relative_accuracy);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

int Sketch::KeyFor(double magnitude) const {
  // Bucket k covers (gamma^(k-1), gamma^k].
  return static_cast<int>(std::ceil(std::log(magnitude) * inv_log_gamma_));
}

double Sketch::ValueFor(int key) const {
  // Midpoint (in relative terms) of (gamma^(k-1), gamma^k]: every value in
  // the bucket is within relative_accuracy of this estimate.
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

void Sketch::Collapse(std::map<int, int64_t>& buckets) {
  // Fold the lowest-magnitude bucket into its neighbor. High quantiles
  // keep the error bound; only the collapsed low tail coarsens.
  while (buckets.size() > config_.max_buckets) {
    auto first = buckets.begin();
    auto second = std::next(first);
    second->second += first->second;
    buckets.erase(first);
    collapsed_ = true;
  }
}

void Sketch::Add(double x, int64_t n) {
  if (n <= 0) return;
  if (std::isnan(x)) {
    count_ += n;  // Counted so totals reconcile; excluded from quantiles.
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  count_ += n;
  sum_ += x * static_cast<double>(n);
  double mag = std::fabs(x);
  if (mag < kMinIndexable) {
    zero_count_ += n;
  } else if (x > 0.0) {
    pos_[KeyFor(mag)] += n;
    Collapse(pos_);
  } else {
    neg_[KeyFor(mag)] += n;
    Collapse(neg_);
  }
}

void Sketch::Merge(const Sketch& other) {
  DSPS_CHECK(config_.relative_accuracy == other.config_.relative_accuracy);
  if (other.count_ == 0) return;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [key, n] : other.pos_) pos_[key] += n;
  for (const auto& [key, n] : other.neg_) neg_[key] += n;
  collapsed_ = collapsed_ || other.collapsed_;
  Collapse(pos_);
  Collapse(neg_);
}

double Sketch::min() const { return min_ <= max_ ? min_ : 0.0; }
double Sketch::max() const { return min_ <= max_ ? max_ : 0.0; }

double Sketch::Percentile(double q) const {
  int64_t indexed = zero_count_;
  for (const auto& [key, n] : pos_) indexed += n;
  for (const auto& [key, n] : neg_) indexed += n;
  if (indexed == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Nearest rank in [1, indexed].
  int64_t rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(indexed)));
  rank = std::max<int64_t>(1, std::min(rank, indexed));
  int64_t cum = 0;
  // Ascending value order: negatives from largest magnitude down, the
  // zero bucket, then positives from smallest magnitude up.
  for (auto it = neg_.rbegin(); it != neg_.rend(); ++it) {
    cum += it->second;
    if (cum >= rank) {
      return std::clamp(-ValueFor(it->first), min_, max_);
    }
  }
  cum += zero_count_;
  if (cum >= rank) return std::clamp(0.0, min_, max_);
  for (const auto& [key, n] : pos_) {
    cum += n;
    if (cum >= rank) return std::clamp(ValueFor(key), min_, max_);
  }
  return max();
}

size_t Sketch::MemoryBytes() const {
  // std::map node: key + count + three pointers + color, rounded up.
  constexpr size_t kNodeBytes = 48;
  return sizeof(Sketch) + num_buckets() * kNodeBytes;
}

void Sketch::Clear() {
  pos_.clear();
  neg_.clear();
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  collapsed_ = false;
}

}  // namespace dsps::telemetry
