#include "telemetry/timeseries.h"

#include <utility>

#include "telemetry/json.h"

namespace dsps::telemetry {

void TimeSeriesRecorder::AddGaugeProbe(std::string name, Labels labels,
                                       std::function<double()> probe) {
  Series s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.probe = std::move(probe);
  s.rate = false;
  series_.push_back(std::move(s));
}

void TimeSeriesRecorder::AddRateProbe(std::string name, Labels labels,
                                      std::function<double()> probe) {
  Series s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.probe = std::move(probe);
  s.rate = true;
  series_.push_back(std::move(s));
}

void TimeSeriesRecorder::Sample(double now) {
  if (times_.size() >= config_.max_samples) return;
  for (Series& s : series_) {
    double v = s.probe();
    if (s.rate) {
      double dt = now - last_time_;
      double rate = (s.has_prev && dt > 0.0) ? (v - s.prev_value) / dt : 0.0;
      s.prev_value = v;
      s.has_prev = true;
      s.values.push_back(rate);
    } else {
      s.values.push_back(v);
    }
  }
  times_.push_back(now);
  last_time_ = now;
}

namespace {

void WriteLabelsObject(JsonWriter* w, const Labels& labels) {
  w->BeginObject();
  for (const auto& [key, value] : labels) {
    w->Key(key).String(value);
  }
  w->EndObject();
}

}  // namespace

void TimeSeriesRecorder::AppendJson(JsonWriter* w,
                                    const Labels& extra_labels) const {
  w->BeginObject();
  w->Key("interval_s").Number(config_.interval_s);
  w->Key("labels");
  WriteLabelsObject(w, extra_labels);
  w->Key("t").BeginArray();
  for (double t : times_) w->Number(t);
  w->EndArray();
  w->Key("series").BeginArray();
  for (const Series& s : series_) {
    w->BeginObject();
    w->Key("name").String(s.name);
    w->Key("labels");
    WriteLabelsObject(w, s.labels);
    w->Key("points").BeginArray();
    for (double v : s.values) w->Number(v);
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string TimeSeriesRecorder::ToJson(const Labels& extra_labels) const {
  JsonWriter w;
  AppendJson(&w, extra_labels);
  return w.TakeString();
}

}  // namespace dsps::telemetry
