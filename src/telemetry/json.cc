#include "telemetry/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dsps::telemetry {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {
int64_t g_nonfinite_values = 0;
}  // namespace

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    ++g_nonfinite_values;
    return "null";
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    ++g_nonfinite_values;
    return "null";
  }
  return std::string(buf, ptr);
}

int64_t NonfiniteJsonValues() { return g_nonfinite_values; }

void ResetNonfiniteJsonValues() { g_nonfinite_values = 0; }

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_value_.back()) out_.push_back(',');
  has_value_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += JsonQuote(key);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += JsonQuote(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  MaybeComma();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string
                                                    : std::string(fallback);
}

namespace {

/// Cursor over the input; all Parse* helpers advance it.
struct Parser {
  std::string_view text;
  size_t pos = 0;

  common::Status Error(const char* what) const {
    return common::Status::InvalidArgument(
        std::string("JSON parse error at byte ") + std::to_string(pos) + ": " +
        what);
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  common::Result<JsonValue> ParseValue(int depth) {
    if (depth > 64) return Error("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Error("unexpected end of input");
    char c = text[pos];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  common::Result<JsonValue> ParseObject(int depth) {
    ++pos;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return out;
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.members.emplace_back(std::move(key.value().string),
                               std::move(value).value());
      SkipWs();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  common::Result<JsonValue> ParseArray(int depth) {
    ++pos;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return out;
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.items.push_back(std::move(value).value());
      SkipWs();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  common::Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.string.push_back(c);
        continue;
      }
      if (pos >= text.size()) return Error("dangling escape");
      char e = text[pos++];
      switch (e) {
        case '"':
          out.string.push_back('"');
          break;
        case '\\':
          out.string.push_back('\\');
          break;
        case '/':
          out.string.push_back('/');
          break;
        case 'b':
          out.string.push_back('\b');
          break;
        case 'f':
          out.string.push_back('\f');
          break;
        case 'n':
          out.string.push_back('\n');
          break;
        case 'r':
          out.string.push_back('\r');
          break;
        case 't':
          out.string.push_back('\t');
          break;
        case 'u': {
          if (pos + 4 > text.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // ASCII decodes exactly; anything wider is kept as UTF-8.
          if (code < 0x80) {
            out.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.string.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  common::Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      out.boolean = true;
      return out;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      out.boolean = false;
      return out;
    }
    return Error("expected 'true' or 'false'");
  }

  common::Result<JsonValue> ParseNull() {
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      return JsonValue{};
    }
    return Error("expected 'null'");
  }

  common::Result<JsonValue> ParseNumber() {
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return Error("expected a value");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + pos, out.number);
    if (ec != std::errc() || ptr != text.data() + pos) {
      return Error("malformed number");
    }
    return out;
  }
};

}  // namespace

common::Result<JsonValue> ParseJson(std::string_view text) {
  Parser parser{text};
  auto value = parser.ParseValue(0);
  if (!value.ok()) return value.status();
  parser.SkipWs();
  if (parser.pos != text.size()) {
    return parser.Error("trailing characters after document");
  }
  return value;
}

}  // namespace dsps::telemetry
