#include "telemetry/watchdog.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "telemetry/flight_recorder.h"

namespace dsps::telemetry {

namespace {

// Median of a small window (copy + sort: deterministic, O(w log w) on a
// watchdog cadence, not a hot path).
double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

void Watchdog::AddDetector(std::string name, Kind kind, Probe probe,
                           double limit, Tuning tuning) {
  DSPS_CHECK(probe != nullptr);
  Detector d;
  d.state.name = std::move(name);
  d.state.kind = kind;
  d.probe = std::move(probe);
  d.tuning = tuning;
  d.limit = limit;
  detectors_.push_back(std::move(d));
  states_.push_back(detectors_.back().state);
}

void Watchdog::AddSpikeDetector(std::string name, Probe probe,
                                Tuning tuning) {
  AddDetector(std::move(name), Kind::kSpike, std::move(probe), 0.0, tuning);
}

void Watchdog::AddRateDetector(std::string name, Probe cumulative,
                               double max_rate_per_s, Tuning tuning) {
  AddDetector(std::move(name), Kind::kRate, std::move(cumulative),
              max_rate_per_s, tuning);
}

void Watchdog::AddThresholdDetector(std::string name, Probe probe,
                                    double limit, Tuning tuning) {
  AddDetector(std::move(name), Kind::kThreshold, std::move(probe), limit,
              tuning);
}

void Watchdog::AddGrowthDetector(std::string name, Probe probe, double floor,
                                 Tuning tuning) {
  AddDetector(std::move(name), Kind::kGrowth, std::move(probe), floor,
              tuning);
}

void Watchdog::AddIncreaseDetector(std::string name, Probe cumulative,
                                   Tuning tuning) {
  AddDetector(std::move(name), Kind::kIncrease, std::move(cumulative), 0.0,
              tuning);
}

void Watchdog::Trigger(Detector& d, double now, double value) {
  d.state.triggers += 1;
  d.state.last_trigger_t = now;
  anomalies_ += 1;
  d.cooldown_left = d.tuning.cooldown;
  if (config_.metrics != nullptr) {
    if (total_counter_ == nullptr) {
      // Interned lazily so anomaly-free runs export no anomaly series at
      // all — quiet snapshots stay byte-identical to pre-watchdog ones.
      total_counter_ = config_.metrics->counter("anomaly.total");
    }
    total_counter_->Increment();
    config_.metrics
        ->counter("anomaly.events",
                  MakeLabels({{"detector", d.state.name}}))
        ->Increment();
  }
  if (config_.trace != nullptr) {
    config_.trace->RecordInstant("anomaly." + d.state.name, now, -1, value);
  }
  if (config_.flight != nullptr) {
    config_.flight->RecordInstant("anomaly." + d.state.name, now, -1, value,
                                  FlightRecorder::EventKind::kAnomaly);
  }
}

void Watchdog::Tick(double now) {
  ticks_ += 1;
  for (size_t i = 0; i < detectors_.size(); ++i) {
    Detector& d = detectors_[i];
    const Tuning& t = d.tuning;
    double x = d.probe();
    d.state.last_value = x;
    d.samples_seen += 1;
    bool armed = d.cooldown_left == 0;
    if (d.cooldown_left > 0) d.cooldown_left -= 1;
    switch (d.state.kind) {
      case Kind::kSpike: {
        bool warm = d.samples_seen > t.warmup &&
                    static_cast<int>(d.window.size()) >= t.warmup;
        if (warm && armed) {
          double med = Median({d.window.begin(), d.window.end()});
          std::vector<double> dev;
          dev.reserve(d.window.size());
          for (double w : d.window) dev.push_back(std::fabs(w - med));
          double mad = std::max(Median(std::move(dev)), t.mad_floor);
          bool robust_outlier = x - med > t.mad_k * mad;
          bool ewma_outlier =
              x > t.rel_factor * std::max(d.ewma, t.mad_floor);
          if (robust_outlier && ewma_outlier && x >= t.min_abs) {
            Trigger(d, now, x);
          }
        }
        if (!d.ewma_init) {
          d.ewma = x;
          d.ewma_init = true;
        } else {
          d.ewma = t.ewma_alpha * x + (1.0 - t.ewma_alpha) * d.ewma;
        }
        d.window.push_back(x);
        while (static_cast<int>(d.window.size()) > t.window) {
          d.window.pop_front();
        }
        break;
      }
      case Kind::kRate: {
        if (d.has_prev && now > d.prev_t && armed) {
          double rate = (x - d.prev) / (now - d.prev_t);
          if (rate > d.limit) Trigger(d, now, rate);
        }
        d.prev = x;
        d.prev_t = now;
        d.has_prev = true;
        break;
      }
      case Kind::kThreshold: {
        d.streak = x >= d.limit ? d.streak + 1 : 0;
        if (d.streak >= t.sustain && armed) {
          Trigger(d, now, x);
          d.streak = 0;
        }
        break;
      }
      case Kind::kGrowth: {
        d.streak = d.has_prev && x > d.prev ? d.streak + 1 : 0;
        d.prev = x;
        d.has_prev = true;
        if (d.streak >= t.sustain && x >= d.limit && armed) {
          Trigger(d, now, x);
          d.streak = 0;
        }
        break;
      }
      case Kind::kIncrease: {
        bool fire = d.has_prev && x > d.prev && armed;
        d.prev = x;
        d.has_prev = true;
        if (fire) Trigger(d, now, x);
        break;
      }
    }
    states_[i] = d.state;
  }
}

int64_t Watchdog::triggers(std::string_view name) const {
  for (const DetectorState& s : states_) {
    if (s.name == name) return s.triggers;
  }
  return 0;
}

}  // namespace dsps::telemetry
