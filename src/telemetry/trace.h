#ifndef DSPS_TELEMETRY_TRACE_H_
#define DSPS_TELEMETRY_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/sketch.h"

namespace dsps::telemetry {

class FlightRecorder;

/// The stages of the paper's delay decomposition, as observed per traced
/// tuple: source emission, dissemination-tree hops across the WAN, the
/// gateway->delegate hop inside the entity, pipeline hops between
/// processors, CPU queue wait, operator execution, and result delivery.
enum class Stage : int32_t {
  /// Publication at the stream source (zero-length anchor span).
  kSourceEmit = 0,
  /// One dissemination-tree edge: link queueing + transmission + latency.
  kDisseminationHop,
  /// Gateway -> stream-delegate hop inside the entity (Figure 3).
  kEntityIngress,
  /// Inter-processor hop between fragments of one query.
  kPipelineHop,
  /// Time waiting for a processor's CPU to free up.
  kQueueWait,
  /// Simulated CPU time of operator execution.
  kExecute,
  /// Entity gateway -> client result shipping.
  kResultDeliver,
  /// End-to-end marker: start = source timestamp, end = result completion;
  /// its duration is the paper's d_k for this traced result.
  kResult,
  /// Anything recorded without a registered mapping.
  kOther,
};

/// Stable lower-case name used in exports ("source_emit", "queue_wait", ...).
const char* StageName(Stage stage);

/// Inverse of StageName; kOther for unknown names.
Stage StageFromName(std::string_view name);

/// One causal, simulated-time span of a traced tuple's journey.
struct Span {
  /// Trace this span belongs to (assigned at source publication).
  int64_t trace = 0;
  Stage stage = Stage::kOther;
  /// Simulated seconds.
  double start = 0.0;
  double end = 0.0;
  /// Context ids; meaning depends on the stage (network spans: sim nodes;
  /// processor spans: the processor's sim node twice).
  int32_t from = -1;
  int32_t to = -1;
  /// The query that produced the result (kResult spans only).
  int64_t query = -1;
  /// Owning tenant of that query (kResult spans of tenant-enabled runs
  /// only; -1 = untagged, omitted from JSON so tenant-free output is
  /// byte-identical).
  int64_t tenant = -1;

  double duration() const { return end - start; }
};

/// A point-in-time system event ("repartition", "tree_reorg", "crash",
/// ...). Instants are not tied to a traced tuple; they mark the control
/// plane's adaptation actions so exported traces show *why* the data
/// plane's latencies shifted.
struct Instant {
  std::string name;
  /// Simulated seconds.
  double t = 0.0;
  /// Affected sim node / entity id; -1 when not node-specific.
  int32_t node = -1;
  /// Event magnitude (queries migrated, entities moved, ...); 0 if n/a.
  double value = 0.0;
};

/// Append-only log of spans for a sampled subset of tuples.
///
/// Sampling is deterministic — every `sample_every_n`-th source
/// publication starts a trace — so traced runs remain reproducible, and a
/// sampling rate of 0 disables tracing entirely (the zero-cost default:
/// instrumentation sites check one pointer and one integer).
class TraceLog {
 public:
  struct Config {
    /// Trace every Nth published tuple; 0 disables tracing.
    int sample_every_n = 0;
    /// Hard cap on retained spans; once reached, further spans are
    /// counted (dropped_spans) but not stored.
    size_t max_spans = 1u << 20;
    /// Instants get their own budget: control-plane markers (crash,
    /// repartition, evict) are rare and must survive span-budget
    /// exhaustion in long runs.
    size_t max_instants = 1u << 16;
    /// Aggregate span durations into bounded per-stage quantile
    /// sketches as they are recorded.
    bool aggregate_stages = false;
    /// Keep raw spans (subject to max_spans). With aggregate_stages on
    /// and retain_spans off, every tuple can be traced at metro scale:
    /// the per-stage latency decomposition survives in O(buckets)
    /// memory while raw spans are not stored (and not counted dropped).
    bool retain_spans = true;
    /// Bucketing for the stage sketches.
    Sketch::Config stage_sketch;
  };

  TraceLog() = default;
  explicit TraceLog(const Config& config) : config_(config) {}
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  bool enabled() const { return config_.sample_every_n > 0; }
  const Config& config() const { return config_; }

  /// Source-side sampling decision: counts one publication and returns a
  /// fresh nonzero trace id if it should be traced, 0 otherwise.
  int64_t MaybeStartTrace();

  /// Records one span (no-op when `trace` is 0 or the log is disabled).
  void Record(int64_t trace, Stage stage, double start, double end,
              int32_t from = -1, int32_t to = -1, int64_t query = -1,
              int64_t tenant = -1);

  /// Registers which Stage a simulated-network message type maps to, so
  /// the network layer can attribute in-flight time without knowing the
  /// upper layers' message enums.
  void MapMessageType(int type, Stage stage);
  Stage StageForMessageType(int type) const;

  /// Record() with the stage resolved from the message type.
  void RecordMessage(int64_t trace, int msg_type, double start, double end,
                     int32_t from, int32_t to);

  /// Records a system instant event (no-op when the log is disabled).
  /// Instants have their own max_instants budget.
  void RecordInstant(std::string_view name, double t, int32_t node = -1,
                     double value = 0.0);

  /// Mirrors every recorded span and instant into `recorder`'s ring
  /// (even ones the budgets drop), so the recorder always holds the
  /// *latest* events. nullptr detaches.
  void AttachFlightRecorder(FlightRecorder* recorder) {
    flight_ = recorder;
  }
  FlightRecorder* flight_recorder() const { return flight_; }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  /// Per-stage duration sketches (aggregate_stages mode only).
  const std::map<Stage, Sketch>& stage_sketches() const {
    return stage_sketches_;
  }
  int64_t traces_started() const { return next_trace_ - 1; }
  int64_t publications_seen() const { return publications_; }
  int64_t dropped_spans() const { return dropped_; }
  int64_t dropped_instants() const { return dropped_instants_; }

  /// Forgets all spans and resets the sampling phase (mapping kept).
  void Clear();

 private:
  Config config_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::map<Stage, Sketch> stage_sketches_;
  std::map<int, Stage> stage_of_type_;
  FlightRecorder* flight_ = nullptr;
  int64_t publications_ = 0;
  int64_t next_trace_ = 1;
  int64_t dropped_ = 0;
  int64_t dropped_instants_ = 0;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_TRACE_H_
