#include "telemetry/trace.h"

#include "telemetry/flight_recorder.h"

namespace dsps::telemetry {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kSourceEmit:
      return "source_emit";
    case Stage::kDisseminationHop:
      return "dissemination_hop";
    case Stage::kEntityIngress:
      return "entity_ingress";
    case Stage::kPipelineHop:
      return "pipeline_hop";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kExecute:
      return "execute";
    case Stage::kResultDeliver:
      return "result_deliver";
    case Stage::kResult:
      return "result";
    case Stage::kOther:
      return "other";
  }
  return "other";
}

Stage StageFromName(std::string_view name) {
  for (Stage s : {Stage::kSourceEmit, Stage::kDisseminationHop,
                  Stage::kEntityIngress, Stage::kPipelineHop,
                  Stage::kQueueWait, Stage::kExecute, Stage::kResultDeliver,
                  Stage::kResult}) {
    if (name == StageName(s)) return s;
  }
  return Stage::kOther;
}

int64_t TraceLog::MaybeStartTrace() {
  if (config_.sample_every_n <= 0) return 0;
  int64_t seq = publications_++;
  if (seq % config_.sample_every_n != 0) return 0;
  return next_trace_++;
}

void TraceLog::Record(int64_t trace, Stage stage, double start, double end,
                      int32_t from, int32_t to, int64_t query,
                      int64_t tenant) {
  if (trace == 0 || !enabled()) return;
  Span span{trace, stage, start, end, from, to, query, tenant};
  if (flight_ != nullptr) flight_->RecordSpan(span);
  if (config_.aggregate_stages) {
    auto [it, inserted] =
        stage_sketches_.try_emplace(stage, config_.stage_sketch);
    it->second.Add(span.duration());
  }
  if (!config_.retain_spans) return;  // Aggregated by design, not dropped.
  if (spans_.size() >= config_.max_spans) {
    ++dropped_;
    return;
  }
  spans_.push_back(span);
}

void TraceLog::MapMessageType(int type, Stage stage) {
  stage_of_type_[type] = stage;
}

Stage TraceLog::StageForMessageType(int type) const {
  auto it = stage_of_type_.find(type);
  return it == stage_of_type_.end() ? Stage::kOther : it->second;
}

void TraceLog::RecordMessage(int64_t trace, int msg_type, double start,
                             double end, int32_t from, int32_t to) {
  Record(trace, StageForMessageType(msg_type), start, end, from, to);
}

void TraceLog::RecordInstant(std::string_view name, double t, int32_t node,
                             double value) {
  if (!enabled()) return;
  if (flight_ != nullptr) flight_->RecordInstant(name, t, node, value);
  if (instants_.size() >= config_.max_instants) {
    ++dropped_instants_;
    return;
  }
  instants_.push_back(Instant{std::string(name), t, node, value});
}

void TraceLog::Clear() {
  spans_.clear();
  instants_.clear();
  stage_sketches_.clear();
  publications_ = 0;
  next_trace_ = 1;
  dropped_ = 0;
  dropped_instants_ = 0;
}

}  // namespace dsps::telemetry
