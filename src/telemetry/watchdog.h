#ifndef DSPS_TELEMETRY_WATCHDOG_H_
#define DSPS_TELEMETRY_WATCHDOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace dsps::telemetry {

class FlightRecorder;

/// Detector tuning knobs (namespace-scope so it can appear as a default
/// argument inside Watchdog's own definition).
struct WatchdogTuning {
  /// Sliding-window length (spike detectors).
  int window = 16;
  /// Ticks observed before a detector may fire.
  int warmup = 8;
  /// EWMA smoothing factor.
  double ewma_alpha = 0.3;
  /// Spike: deviations-from-median multiplier.
  double mad_k = 8.0;
  /// Spike: sample must also exceed rel_factor * EWMA.
  double rel_factor = 2.0;
  /// Spike: absolute floor a sample must reach (suppresses "spikes"
  /// within noise of zero).
  double min_abs = 1.0;
  /// Spike: MAD lower bound so an all-constant window (MAD = 0) does
  /// not make every deviation infinite sigmas.
  double mad_floor = 1e-9;
  /// Ticks a detector stays quiet after firing.
  int cooldown = 8;
  /// Threshold / growth: consecutive ticks required.
  int sustain = 3;
};

/// Online anomaly watchdog: a set of deterministic detectors evaluated
/// against read-only probes on a fixed simulated-time cadence (the owner
/// schedules Tick), flagging pathologies — repartition thrash, retry
/// storms, admission-queue growth, SLO burn — while the run is live
/// instead of in a post-hoc trawl.
///
/// Detector kinds:
///  - Spike: robust outlier test over a sliding window — fires when the
///    probe exceeds the window median by `mad_k` median-absolute-
///    deviations AND `rel_factor`x the EWMA. The MAD floor and warmup
///    guarantee zero triggers on quiet, steady runs.
///  - Rate: fires when a cumulative counter's per-second rate between
///    ticks exceeds a limit (retry storms).
///  - Threshold: fires when the probe holds at/above a limit for
///    `sustain` consecutive ticks (SLO burn).
///  - Growth: fires when the probe strictly grows for `sustain`
///    consecutive ticks and sits at/above a floor (queue buildup).
///  - Increase: fires on any strict increase of a cumulative counter
///    that is zero on healthy runs (evictions, lost queries).
///
/// Every trigger increments anomaly counters (anomaly.total plus
/// anomaly.events{detector=...} when a registry is attached), records an
/// "anomaly.<name>" trace instant, and mirrors the event into the flight
/// recorder; a per-detector cooldown stops one sustained incident from
/// flooding the log. All state is a pure function of the probe values,
/// so fixed-seed runs produce identical anomaly streams.
class Watchdog {
 public:
  using Tuning = WatchdogTuning;

  struct Config {
    MetricsRegistry* metrics = nullptr;
    TraceLog* trace = nullptr;
    FlightRecorder* flight = nullptr;
  };

  /// Read-only view into the owner's state; must be deterministic and
  /// side-effect free.
  using Probe = std::function<double()>;

  enum class Kind : int8_t { kSpike, kRate, kThreshold, kGrowth, kIncrease };

  struct DetectorState {
    std::string name;
    Kind kind = Kind::kSpike;
    int64_t triggers = 0;
    double last_trigger_t = -1.0;
    double last_value = 0.0;
  };

  Watchdog() = default;
  explicit Watchdog(const Config& config) : config_(config) {}
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void AddSpikeDetector(std::string name, Probe probe, Tuning tuning = {});
  /// `cumulative` must be non-decreasing; fires when its rate exceeds
  /// `max_rate_per_s`.
  void AddRateDetector(std::string name, Probe cumulative,
                       double max_rate_per_s, Tuning tuning = {});
  void AddThresholdDetector(std::string name, Probe probe, double limit,
                            Tuning tuning = {});
  void AddGrowthDetector(std::string name, Probe probe, double floor,
                         Tuning tuning = {});
  void AddIncreaseDetector(std::string name, Probe cumulative,
                           Tuning tuning = {});

  /// Evaluates every detector at simulated time `now`.
  void Tick(double now);

  int64_t ticks() const { return ticks_; }
  /// Total triggers across all detectors.
  int64_t anomalies() const { return anomalies_; }
  const std::vector<DetectorState>& detectors() const { return states_; }
  /// Trigger count for one detector (0 if unknown).
  int64_t triggers(std::string_view name) const;

 private:
  struct Detector {
    DetectorState state;
    Probe probe;
    Tuning tuning;
    // Spike state.
    std::deque<double> window;
    double ewma = 0.0;
    bool ewma_init = false;
    // Rate / increase state.
    double prev = 0.0;
    double prev_t = 0.0;
    bool has_prev = false;
    // Rate limit or threshold limit or growth floor.
    double limit = 0.0;
    // Threshold / growth streaks.
    int streak = 0;
    int cooldown_left = 0;
    int samples_seen = 0;
  };

  void AddDetector(std::string name, Kind kind, Probe probe, double limit,
                   Tuning tuning);
  void Trigger(Detector& d, double now, double value);

  Config config_;
  std::vector<Detector> detectors_;
  /// Mirrors detectors_' public state (stable snapshot for callers).
  std::vector<DetectorState> states_;
  int64_t ticks_ = 0;
  int64_t anomalies_ = 0;
  Counter* total_counter_ = nullptr;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_WATCHDOG_H_
