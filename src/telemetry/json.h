#ifndef DSPS_TELEMETRY_JSON_H_
#define DSPS_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dsps::telemetry {

/// Escapes `s` per RFC 8259 string rules and wraps it in double quotes.
std::string JsonQuote(std::string_view s);

/// Formats a double as a JSON number (shortest round-trippable form).
/// JSON has no Inf/NaN, so non-finite values render as `null` and bump
/// the process-wide counter below — silently writing 0 would let bad
/// math hide inside otherwise-plausible bench numbers.
std::string JsonNumber(double v);

/// Number of non-finite doubles JsonNumber has rendered as null since
/// process start (or the last reset). BenchReport folds this into a
/// `telemetry.nonfinite_values` counter so it shows up in bench JSON.
int64_t NonfiniteJsonValues();
void ResetNonfiniteJsonValues();

/// Minimal streaming JSON writer. Emits syntactically valid JSON as long
/// as calls respect the grammar (the writer inserts commas, the caller
/// supplies structure). Used by the metric/trace sinks and the bench
/// reports; deterministic byte-for-byte for identical call sequences.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Emits an object key (must be followed by a value or Begin*).
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Number(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Embeds `json` verbatim as one value (must itself be valid JSON).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void MaybeComma();

  std::string out_;
  /// Whether the current nesting level already holds a value (comma needed).
  std::vector<bool> has_value_{false};
  bool after_key_ = false;
};

/// A parsed JSON document. Object member order is preserved as written,
/// so parse(serialize(x)) round-trips deterministically.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;
  /// Member `key` as a number, or `fallback` when absent / wrong type.
  double NumberOr(std::string_view key, double fallback) const;
  /// Member `key` as a string, or `fallback` when absent / wrong type.
  std::string StringOr(std::string_view key, std::string_view fallback) const;
};

/// Recursive-descent parser for the JSON subset this repo emits (which is
/// all of RFC 8259 minus \u surrogate pairs, decoded as-is). Returns
/// InvalidArgument with a byte offset on malformed input.
common::Result<JsonValue> ParseJson(std::string_view text);

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_JSON_H_
