#ifndef DSPS_TELEMETRY_TIMESERIES_H_
#define DSPS_TELEMETRY_TIMESERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "telemetry/registry.h"

namespace dsps::telemetry {

class JsonWriter;

/// Windowed time-series sampler: the caller registers probes (closures
/// reading live system state or registry metrics) and then calls
/// Sample(now) at fixed sim-clock intervals; every probe is evaluated at
/// every sample, so all series share one time axis. The recorder turns
/// end-of-run bench aggregates into adaptation *trajectories* — e.g. load
/// imbalance before/during/after a repartition round, or WAN bytes/s
/// across a failover.
///
/// Probes come in two flavors:
///  - gauge probes record the probed value as-is (imbalance ratio,
///    unplaced-queue depth, per-entity load);
///  - rate probes record the per-second delta of a monotonically growing
///    quantity (bytes sent, results delivered) over the sampling window,
///    0 for the first window.
///
/// Like the rest of the telemetry plane, a recorder that is never sampled
/// costs nothing and emits nothing: BenchReport skips the `series`
/// section entirely when the recorder is empty, keeping bench JSON
/// byte-identical to a recorder-free build.
class TimeSeriesRecorder {
 public:
  struct Config {
    /// Sampling period in simulated seconds (informational — the caller
    /// drives Sample(); this is recorded into the JSON so readers know
    /// the intended spacing).
    double interval_s = 1.0;
    /// Hard cap on retained samples; Sample() becomes a no-op beyond it
    /// (a runaway loop should not OOM the bench).
    size_t max_samples = 1u << 16;
  };

  TimeSeriesRecorder() = default;
  explicit TimeSeriesRecorder(const Config& config) : config_(config) {}
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  const Config& config() const { return config_; }

  /// Registers a probe whose value is recorded directly.
  void AddGaugeProbe(std::string name, Labels labels,
                     std::function<double()> probe);

  /// Registers a probe over a cumulative quantity; each sample records
  /// (value - previous value) / (now - previous now). The first sample
  /// records 0 (no window yet).
  void AddRateProbe(std::string name, Labels labels,
                    std::function<double()> probe);

  /// Evaluates every probe at simulated time `now`, appending one point
  /// per series. Callers must pass non-decreasing times.
  void Sample(double now);

  size_t num_samples() const { return times_.size(); }
  size_t num_series() const { return series_.size(); }
  bool empty() const { return times_.empty() || series_.empty(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values(size_t series) const {
    return series_[series].values;
  }

  /// Appends this recorder's block to `w` as one JSON object:
  ///   {"interval_s": .., "labels": {..}, "t": [..],
  ///    "series": [{"name": .., "labels": {..}, "points": [..]}, ..]}
  /// `extra_labels` annotate the whole block (e.g. the bench scenario).
  void AppendJson(JsonWriter* w, const Labels& extra_labels = {}) const;

  /// Standalone JSON for tests/tools.
  std::string ToJson(const Labels& extra_labels = {}) const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    std::function<double()> probe;
    bool rate = false;
    /// Rate-probe state: cumulative value at the previous sample.
    double prev_value = 0.0;
    bool has_prev = false;
    std::vector<double> values;
  };

  Config config_;
  std::vector<double> times_;
  std::vector<Series> series_;
  double last_time_ = 0.0;
};

}  // namespace dsps::telemetry

#endif  // DSPS_TELEMETRY_TIMESERIES_H_
