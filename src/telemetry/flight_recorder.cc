#include "telemetry/flight_recorder.h"

#include <fstream>
#include <ostream>

#include "common/check.h"
#include "telemetry/sinks.h"

namespace dsps::telemetry {

FlightRecorder::FlightRecorder(const Config& config) : config_(config) {
  DSPS_CHECK(config_.capacity > 0);
  ring_.reserve(config_.capacity < 1024 ? config_.capacity : 1024);
}

void FlightRecorder::RecordSpan(const Span& span) {
  Event ev;
  ev.seq = next_seq_++;
  ev.kind = EventKind::kSpan;
  ev.span = span;
  size_t slot = static_cast<size_t>(ev.seq) % config_.capacity;
  if (slot < ring_.size()) {
    ring_[slot] = std::move(ev);
  } else {
    ring_.push_back(std::move(ev));
  }
}

void FlightRecorder::RecordInstant(std::string_view name, double t,
                                   int32_t node, double value,
                                   EventKind kind) {
  Event ev;
  ev.seq = next_seq_++;
  ev.kind = kind;
  ev.instant = Instant{std::string(name), t, node, value};
  size_t slot = static_cast<size_t>(ev.seq) % config_.capacity;
  if (slot < ring_.size()) {
    ring_[slot] = std::move(ev);
  } else {
    ring_.push_back(std::move(ev));
  }
}

std::vector<const FlightRecorder::Event*> FlightRecorder::Events() const {
  std::vector<const Event*> out;
  out.reserve(ring_.size());
  // Oldest event is at slot next_seq_ % capacity once wrapped, slot 0
  // before that.
  size_t start = ring_.size() < config_.capacity
                     ? 0
                     : static_cast<size_t>(next_seq_) % config_.capacity;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(&ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::DumpJsonl(std::ostream& os) const {
  os << "{\"flight\":1,\"capacity\":" << config_.capacity
     << ",\"recorded\":" << recorded()
     << ",\"overwritten\":" << overwritten() << "}\n";
  for (const Event* ev : Events()) {
    if (ev->kind == EventKind::kSpan) {
      os << SpanToJson(ev->span) << "\n";
    } else {
      os << InstantToJson(ev->instant) << "\n";
    }
  }
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  DumpJsonl(os);
  return os.good();
}

bool FlightRecorder::DumpOnce() {
  if (dumped_ || config_.dump_path.empty()) return false;
  dumped_ = true;
  return DumpToFile(config_.dump_path);
}

void FlightRecorder::Clear() {
  ring_.clear();
  next_seq_ = 0;
  dumped_ = false;
}

namespace {
FlightRecorder* g_fatal_dump_recorder = nullptr;

void FatalDump() {
  if (g_fatal_dump_recorder != nullptr) g_fatal_dump_recorder->DumpOnce();
}
}  // namespace

void InstallFatalDumpHook(FlightRecorder* recorder) {
  g_fatal_dump_recorder = recorder;
  common::SetFatalHook(recorder != nullptr ? &FatalDump : nullptr);
}

}  // namespace dsps::telemetry
