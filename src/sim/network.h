#ifndef DSPS_SIM_NETWORK_H_
#define DSPS_SIM_NETWORK_H_

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace dsps::sim {

/// 2D position used for "geographic" distances between nodes. The paper's
/// inter-entity WAN latencies are modeled as proportional to Euclidean
/// distance in this plane.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance.
double Distance(const Point& a, const Point& b);

/// A message in flight between two simulated nodes.
struct Message {
  common::SimNodeId from = common::kInvalidSimNode;
  common::SimNodeId to = common::kInvalidSimNode;
  /// Application-defined message kind (each subsystem defines its own enum).
  int type = 0;
  /// Size on the wire in bytes; drives bandwidth/serialization delay.
  int64_t size_bytes = 0;
  /// Telemetry trace of the tuple this message carries; 0 = untraced.
  /// The network records an in-flight span per traced message.
  int64_t trace_id = 0;
  /// Application payload.
  std::any payload;
};

/// Link parameters. Delivery time of a message of size S on link (a,b):
///   start = max(now, link.busy_until); tx = S / bandwidth;
///   deliver at start + tx + latency; busy_until = start + tx.
struct LinkParams {
  double latency_s = 0.001;
  double bandwidth_bps = 1e9;  // bytes per second
};

/// Cumulative per-link transfer statistics.
struct LinkStats {
  int64_t messages = 0;
  int64_t bytes = 0;
};

/// Point-to-point message-passing network on top of the Simulator.
///
/// Nodes are registered with a position and a receive handler. Links are
/// created explicitly, or lazily from a default model (a function of the two
/// endpoints' positions) the first time a pair communicates. Every link
/// tracks bytes and serialization (one transfer at a time per direction).
class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using LinkModel =
      std::function<LinkParams(const Point& from, const Point& to)>;

  /// Creates a network driven by `simulator` (not owned; must outlive).
  explicit Network(Simulator* simulator);

  /// Registers a node at `position`; returns its id.
  common::SimNodeId AddNode(const Point& position);

  /// Installs (replaces) the receive handler for `node`.
  void SetHandler(common::SimNodeId node, Handler handler);

  /// Sets the model used to derive parameters for lazily-created links.
  void SetDefaultLinkModel(LinkModel model);

  /// Creates or replaces a directed link with explicit parameters.
  void SetLink(common::SimNodeId from, common::SimNodeId to,
               const LinkParams& params);

  /// Sends `msg` (msg.from/msg.to must be valid node ids). Local sends
  /// (from == to) are delivered after a fixed small epsilon with no
  /// bandwidth cost. Returns InvalidArgument for unknown nodes.
  ///
  /// With a fault injector attached, the message may be silently dropped
  /// (crashed endpoint, partitioned pair, or Bernoulli loss — counted in
  /// dropped_messages() and in the injector), duplicated, or delayed.
  /// Like a real datagram network, Send still returns OK: senders that
  /// need delivery use an ack/retry protocol on top.
  common::Status Send(Message msg);

  /// Attaches a fault injector (nullptr detaches — the default). With no
  /// injector the network takes no RNG draws and is bit-identical to a
  /// fault-free build. Must outlive the network.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() { return faults_; }

  /// Messages that were sent but never reached a handler, by cause:
  /// injected faults (send- or delivery-time) and deliveries to nodes with
  /// no handler installed. Mirrored as net.dropped_messages{reason=...}
  /// counters when metrics are attached.
  int64_t dropped_messages() const {
    return dropped_faults_ + dropped_no_handler_;
  }
  int64_t dropped_no_handler() const { return dropped_no_handler_; }

  /// When set, delivering a message to a node with no handler is a fatal
  /// error instead of a counted drop — the debug check that makes silent
  /// query loss impossible to miss in tests. Defaults to on in debug
  /// (!NDEBUG) builds, off in release builds.
  void set_fail_on_unhandled(bool fail) { fail_on_unhandled_ = fail; }

  /// The node's registered position.
  const Point& position(common::SimNodeId node) const;

  size_t node_count() const { return nodes_.size(); }

  /// Cumulative stats for the directed link (from, to); zeros if the pair
  /// never communicated.
  LinkStats link_stats(common::SimNodeId from, common::SimNodeId to) const;

  /// Total bytes ever sent on non-local links.
  int64_t total_bytes() const { return total_bytes_; }

  /// Total messages ever sent on non-local links.
  int64_t total_messages() const { return total_messages_; }

  /// Total bytes sent from `node` on non-local links.
  int64_t egress_bytes(common::SimNodeId node) const;

  /// Resets all transfer statistics (link state/busy times are kept).
  void ResetStats();

  /// Attaches a metrics registry (nullptr detaches — the default; all
  /// instrumentation is skipped). Registers aggregate counters
  /// (net.messages, net.bytes, net.local_messages) and the link queueing
  /// histogram net.link_queue_wait_s. With `per_link` set, each directed link
  /// additionally gets net.link.bytes / net.link.messages counters labeled
  /// {from,to} — higher cardinality, intended for focused experiments.
  void SetMetrics(telemetry::MetricsRegistry* metrics, bool per_link = false);

  /// Attaches a trace log (nullptr detaches). Every message with a
  /// nonzero trace_id records one span from send to delivery, staged via
  /// TraceLog::StageForMessageType.
  void SetTraceLog(telemetry::TraceLog* trace) { trace_ = trace; }

  /// Attaches a flight recorder (nullptr detaches): every dropped
  /// message — injected fault or delivery to a handler-less node — lands
  /// in the post-mortem ring as a "net.drop.*" event.
  void SetFlightRecorder(telemetry::FlightRecorder* flight) {
    flight_ = flight;
  }

  /// Every directed link that ever carried traffic, with its stats.
  struct LinkRecord {
    common::SimNodeId from;
    common::SimNodeId to;
    LinkStats stats;
  };
  std::vector<LinkRecord> AllLinkStats() const;

  Simulator* simulator() { return sim_; }

 private:
  struct NodeState {
    Point position;
    Handler handler;
    int64_t egress_bytes = 0;
  };
  struct LinkState {
    LinkParams params;
    LinkStats stats;
    double busy_until = 0.0;
    /// Cached per-link metric handles (only when per-link metrics are on).
    telemetry::Counter* bytes_counter = nullptr;
    telemetry::Counter* messages_counter = nullptr;
  };

  LinkState& GetOrCreateLink(common::SimNodeId from, common::SimNodeId to);
  void ScheduleDelivery(double deliver_at, Message msg);
  void DeliverSlot(uint32_t slot);
  void ReleaseSlot(uint32_t slot);
  void CountFaultDrop();

  Simulator* sim_;
  std::vector<NodeState> nodes_;
  std::map<std::pair<common::SimNodeId, common::SimNodeId>, LinkState> links_;
  /// In-flight message arena. Each scheduled delivery parks its Message in
  /// a slot here instead of capturing it by value in the delivery lambda:
  /// the `[this, slot]` capture fits std::function's small-buffer storage,
  /// so a Send costs zero heap allocations on the hot path. A deque keeps
  /// slots pointer-stable across growth; drained slots are recycled LIFO.
  std::deque<Message> arena_;
  std::vector<uint32_t> free_slots_;
  LinkModel default_model_;
  FaultInjector* faults_ = nullptr;
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
  int64_t dropped_faults_ = 0;
  int64_t dropped_no_handler_ = 0;
#ifdef NDEBUG
  bool fail_on_unhandled_ = false;
#else
  bool fail_on_unhandled_ = true;
#endif
  /// Telemetry (all optional; null = zero-cost disabled state).
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::TraceLog* trace_ = nullptr;
  bool per_link_metrics_ = false;
  telemetry::Counter* messages_counter_ = nullptr;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* local_messages_counter_ = nullptr;
  telemetry::HistogramMetric* queue_wait_hist_ = nullptr;
  telemetry::Counter* dropped_fault_counter_ = nullptr;
  telemetry::Counter* dropped_no_handler_counter_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
};

}  // namespace dsps::sim

#endif  // DSPS_SIM_NETWORK_H_
