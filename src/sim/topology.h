#ifndef DSPS_SIM_TOPOLOGY_H_
#define DSPS_SIM_TOPOLOGY_H_

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/network.h"

namespace dsps::sim {

/// Parameters of the two-layer world: entities scattered on a WAN plane,
/// each with a cluster of processors on a fast LAN, plus stream sources.
struct TopologyConfig {
  int num_entities = 4;
  int processors_per_entity = 4;
  int num_sources = 2;
  /// Fault domains (racks / sites — groups of entities that fail
  /// together). Entities are assigned to domains in contiguous blocks:
  /// entity e gets domain e * num_fault_domains / num_entities. 0 (the
  /// default) gives every entity its own domain — independent failures,
  /// the pre-fault-domain behavior.
  int num_fault_domains = 0;
  /// Entities and sources are placed uniformly in [0, world_size]^2.
  double world_size = 1000.0;
  /// Processors of one entity are placed within this radius of its center.
  double lan_radius = 1.0;
  /// LAN link parameters (intra-entity).
  LinkParams lan{0.0001, 1e9};
  /// WAN link parameters; latency grows with distance (see BuildTopology).
  double wan_base_latency_s = 0.002;
  double wan_latency_per_unit_s = 5e-5;
  double wan_bandwidth_bps = 1e8;
};

/// One entity's footprint in the simulator.
struct EntitySite {
  common::EntityId entity = common::kInvalidEntity;
  Point center;
  /// The entity's fault domain (see TopologyConfig::num_fault_domains).
  int fault_domain = 0;
  /// One sim node per processor; processors[0] is also the entity's
  /// wrapper/gateway node for inter-entity traffic.
  std::vector<common::SimNodeId> processors;
};

/// One stream source's footprint.
struct SourceSite {
  common::StreamId stream = common::kInvalidStream;
  Point position;
  common::SimNodeId node = common::kInvalidSimNode;
};

/// A generated two-layer topology.
struct Topology {
  std::vector<EntitySite> entities;
  std::vector<SourceSite> sources;
};

/// Creates nodes for every entity processor and every source in `network`,
/// and installs a distance-based link model: node pairs within
/// 2*lan_radius of each other use LAN parameters, all other pairs use WAN
/// parameters with distance-proportional latency.
Topology BuildTopology(Network* network, const TopologyConfig& config,
                       common::Rng* rng);

}  // namespace dsps::sim

#endif  // DSPS_SIM_TOPOLOGY_H_
