#ifndef DSPS_SIM_FAULT_INJECTOR_H_
#define DSPS_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "telemetry/registry.h"

namespace dsps::sim {

/// Deterministic fault-injection layer for the simulated network.
///
/// The injector is consulted by Network::Send for every message (and again
/// at delivery time for crash windows); it decides — from its own seeded
/// RNG and the configured fault model — whether the message is dropped,
/// duplicated, or delayed. Faults come in four flavors:
///
///  * node crashes: messages from or to a down node are dropped (a crash
///    window is CrashNode .. RecoverNode; in-flight messages addressed to
///    a node that crashes before delivery are also lost);
///  * link partitions: a bidirectional pair block, dropped at send time;
///  * message loss: per-message Bernoulli drop, globally or per directed
///    link;
///  * latency jitter & duplication: uniform extra delay and occasional
///    double delivery, the classic at-least-once hazards.
///
/// Everything is counted (plain accessors always; labeled
/// fault.dropped/fault.duplicated counters when a registry is attached),
/// so no injected fault is ever silent. A Network with no injector
/// attached takes no RNG draws and behaves bit-identically to a build
/// without this layer.
class FaultInjector {
 public:
  struct Config {
    /// Seed of the injector's private RNG. Two runs with equal seeds and
    /// equal fault schedules inject exactly the same faults.
    uint64_t seed = 1;
    /// Probability that any non-local message is dropped in flight.
    double loss_probability = 0.0;
    /// Probability that a delivered message is delivered twice.
    double duplication_probability = 0.0;
    /// Extra per-message latency, uniform in [0, latency_jitter_s).
    double latency_jitter_s = 0.0;
  };

  /// Why a message was dropped (kNone = deliver it).
  enum class DropReason { kNone = 0, kNodeDown, kPartition, kLoss };

  /// The injector's decision for one message.
  struct Verdict {
    DropReason drop = DropReason::kNone;
    bool duplicate = false;
    double extra_latency_s = 0.0;
    /// Extra latency of the duplicate copy (when duplicate is set).
    double duplicate_extra_latency_s = 0.0;
  };

  explicit FaultInjector(const Config& config);

  /// Decides the fate of one message about to be sent. Consumes RNG; call
  /// exactly once per send for reproducibility. Drops are counted here.
  Verdict Judge(common::SimNodeId from, common::SimNodeId to);

  /// Marks a node crashed: every message from or to it drops until
  /// RecoverNode. Idempotent.
  void CrashNode(common::SimNodeId node);
  void RecoverNode(common::SimNodeId node);
  bool IsNodeUp(common::SimNodeId node) const;

  /// Correlated failure: crashes (recovers) every node of the group as
  /// one event — a whole rack or site going dark at once, the scenario
  /// declustered placement must straddle. Counted separately from
  /// independent crashes so benches can report how many correlated
  /// events a run survived.
  void CrashGroup(const std::vector<common::SimNodeId>& nodes);
  void RecoverGroup(const std::vector<common::SimNodeId>& nodes);
  int64_t correlated_crash_events() const { return correlated_crashes_; }

  /// Blocks the (a, b) pair in both directions until Heal. Idempotent.
  void Partition(common::SimNodeId a, common::SimNodeId b);
  void Heal(common::SimNodeId a, common::SimNodeId b);
  bool IsPartitioned(common::SimNodeId a, common::SimNodeId b) const;

  /// Overrides the loss probability of the directed link (from, to);
  /// negative restores the global default.
  void SetLinkLossProbability(common::SimNodeId from, common::SimNodeId to,
                              double p);

  /// Counts a drop decided outside Judge (the network's delivery-time
  /// crash check). Keeps all drop accounting in one place.
  void CountDrop(DropReason reason);

  int64_t dropped_node_down() const { return dropped_node_down_; }
  int64_t dropped_partition() const { return dropped_partition_; }
  int64_t dropped_loss() const { return dropped_loss_; }
  int64_t total_dropped() const {
    return dropped_node_down_ + dropped_partition_ + dropped_loss_;
  }
  int64_t duplicated() const { return duplicated_; }

  /// Attaches a metrics registry (null detaches; default off, zero cost).
  /// Exports fault.dropped{reason=node_down|partition|loss} and
  /// fault.duplicated counters.
  void SetMetrics(telemetry::MetricsRegistry* metrics);

 private:
  static std::pair<common::SimNodeId, common::SimNodeId> Ordered(
      common::SimNodeId a, common::SimNodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  Config config_;
  common::Rng rng_;
  std::set<common::SimNodeId> down_nodes_;
  std::set<std::pair<common::SimNodeId, common::SimNodeId>> partitions_;
  std::map<std::pair<common::SimNodeId, common::SimNodeId>, double>
      link_loss_;
  int64_t dropped_node_down_ = 0;
  int64_t dropped_partition_ = 0;
  int64_t dropped_loss_ = 0;
  int64_t duplicated_ = 0;
  int64_t correlated_crashes_ = 0;
  telemetry::Counter* drop_node_down_counter_ = nullptr;
  telemetry::Counter* drop_partition_counter_ = nullptr;
  telemetry::Counter* drop_loss_counter_ = nullptr;
  telemetry::Counter* duplicated_counter_ = nullptr;
};

}  // namespace dsps::sim

#endif  // DSPS_SIM_FAULT_INJECTOR_H_
