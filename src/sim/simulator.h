#ifndef DSPS_SIM_SIMULATOR_H_
#define DSPS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dsps::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Deterministic single-threaded discrete-event simulator.
///
/// Events are executed in (time, insertion order) order, so two events
/// scheduled for the same instant run in the order they were scheduled —
/// this makes every run exactly reproducible.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now. Negative delays clamp
  /// to zero (run "immediately", after already-queued same-time events).
  void Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  void ScheduleAt(SimTime t, Callback fn);

  /// Runs until the event queue is empty or Stop() is called.
  void Run();

  /// Runs until simulated time would exceed `t`; events at exactly `t` are
  /// executed. Returns when the next event is later than `t` or the queue
  /// is empty.
  void RunUntil(SimTime t);

  /// Executes at most one pending event. Returns false if none remained.
  bool Step();

  /// Makes Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events waiting in the queue.
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dsps::sim

#endif  // DSPS_SIM_SIMULATOR_H_
