#ifndef DSPS_SIM_SIMULATOR_H_
#define DSPS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace dsps::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Handle to a cancellable scheduled event. 0 is the invalid handle; events
/// scheduled through the plain Schedule/ScheduleAt API carry no handle.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Deterministic single-threaded discrete-event simulator.
///
/// Events are executed in (time, insertion order) order, so two events
/// scheduled for the same instant run in the order they were scheduled —
/// this makes every run exactly reproducible.
///
/// The queue is an indexed 4-ary heap in a flat vector: pops move the
/// callback out (no std::function copy per event), and events scheduled
/// via ScheduleCancellable can be removed in O(log n) — their heap slots
/// are reclaimed immediately instead of lingering as dud entries.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now. Negative delays clamp
  /// to zero (run "immediately", after already-queued same-time events).
  /// Non-finite delays are a DCHECK failure; release builds clamp NaN to
  /// zero delay and +Inf to the largest finite time.
  void Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at absolute time `t` (clamped to now()). Non-finite
  /// `t` is a DCHECK failure; release builds clamp NaN/-Inf to now() and
  /// +Inf to the largest finite time so the heap ordering stays valid.
  void ScheduleAt(SimTime t, Callback fn);

  /// Like Schedule/ScheduleAt, but returns a handle that Cancel() accepts.
  /// Cancellation removes the event from the heap immediately — use for
  /// retry/timeout timers that are usually disarmed before they fire.
  TimerId ScheduleCancellable(SimTime delay, Callback fn);
  TimerId ScheduleCancellableAt(SimTime t, Callback fn);

  /// Cancels a timer scheduled with ScheduleCancellable[At]. Returns true
  /// if the event was still pending (and is now removed), false if it
  /// already fired, was already cancelled, or the handle is invalid.
  bool Cancel(TimerId timer);

  /// Runs until the event queue is empty or Stop() is called.
  void Run();

  /// Runs until simulated time would exceed `t`; events at exactly `t` are
  /// executed. The clock advances to `t` whenever every event at or before
  /// `t` has executed — including when Stop() fired during the final such
  /// event — so callers can treat a completed RunUntil(t) as "time is now
  /// t". Only a Stop() with events at or before `t` still pending leaves
  /// the clock at the stopping event's time.
  void RunUntil(SimTime t);

  /// Executes at most one pending event. Returns false if none remained.
  bool Step();

  /// Makes Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events waiting in the queue.
  size_t pending_events() const { return heap_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    /// Cancellation handle; kInvalidTimer for plain events.
    TimerId timer;
    Callback fn;
  };

  /// True when the event at `a` must pop before the event at `b`:
  /// (time, seq) lexicographic — the strict total order that makes every
  /// heap implementation pop in the identical sequence.
  static bool Before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  SimTime SanitizeTime(SimTime t) const;
  void Push(SimTime t, TimerId timer, Callback fn);
  /// Removes the root event and returns it (callback moved, not copied).
  Event PopTop();
  /// Restores the heap property for the event at `pos` after its key may
  /// have decreased (toward the root) and updates the position index.
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void MoveInto(size_t pos, Event ev);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_timer_ = 1;
  uint64_t events_executed_ = 0;
  bool stopped_ = false;
  /// Indexed 4-ary heap: children of i at 4i+1..4i+4, parent at (i-1)/4.
  /// Flatter than a binary heap, so pops touch ~half the cache lines.
  std::vector<Event> heap_;
  /// Heap position of every live cancellable event (plain events are not
  /// tracked — the common case pays nothing for cancellability).
  std::unordered_map<TimerId, size_t> timer_pos_;
};

}  // namespace dsps::sim

#endif  // DSPS_SIM_SIMULATOR_H_
