#include "sim/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace dsps::sim {

Topology BuildTopology(Network* network, const TopologyConfig& config,
                       common::Rng* rng) {
  DSPS_CHECK(network != nullptr);
  DSPS_CHECK(rng != nullptr);
  DSPS_CHECK(config.num_entities > 0);
  DSPS_CHECK(config.processors_per_entity > 0);

  const double lan_cutoff = 2.0 * config.lan_radius;
  LinkParams lan = config.lan;
  double wan_base = config.wan_base_latency_s;
  double wan_per_unit = config.wan_latency_per_unit_s;
  double wan_bw = config.wan_bandwidth_bps;
  network->SetDefaultLinkModel(
      [lan_cutoff, lan, wan_base, wan_per_unit, wan_bw](const Point& a,
                                                        const Point& b) {
        double d = Distance(a, b);
        if (d <= lan_cutoff) return lan;
        LinkParams p;
        p.latency_s = wan_base + wan_per_unit * d;
        p.bandwidth_bps = wan_bw;
        return p;
      });

  Topology topo;
  topo.entities.reserve(config.num_entities);
  const int domains = config.num_fault_domains > 0
                          ? std::min(config.num_fault_domains,
                                     config.num_entities)
                          : config.num_entities;
  for (int e = 0; e < config.num_entities; ++e) {
    EntitySite site;
    site.entity = e;
    // Contiguous blocks, no RNG: domain assignment never perturbs the
    // node/position draws, so topologies stay bit-identical across
    // num_fault_domains settings.
    site.fault_domain = static_cast<int>(
        static_cast<int64_t>(e) * domains / config.num_entities);
    site.center = Point{rng->Uniform(0, config.world_size),
                        rng->Uniform(0, config.world_size)};
    site.processors.reserve(config.processors_per_entity);
    for (int p = 0; p < config.processors_per_entity; ++p) {
      double angle = rng->Uniform(0, 2.0 * M_PI);
      double r = config.lan_radius * std::sqrt(rng->NextDouble());
      Point pos{site.center.x + r * std::cos(angle),
                site.center.y + r * std::sin(angle)};
      site.processors.push_back(network->AddNode(pos));
    }
    topo.entities.push_back(std::move(site));
  }
  topo.sources.reserve(config.num_sources);
  for (int s = 0; s < config.num_sources; ++s) {
    SourceSite src;
    src.stream = s;
    src.position = Point{rng->Uniform(0, config.world_size),
                         rng->Uniform(0, config.world_size)};
    src.node = network->AddNode(src.position);
    topo.sources.push_back(src);
  }
  return topo;
}

}  // namespace dsps::sim
