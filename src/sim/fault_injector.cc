#include "sim/fault_injector.h"

#include "common/check.h"

namespace dsps::sim {

FaultInjector::FaultInjector(const Config& config)
    : config_(config), rng_(config.seed) {
  DSPS_CHECK(config.loss_probability >= 0.0 && config.loss_probability <= 1.0);
  DSPS_CHECK(config.duplication_probability >= 0.0 &&
             config.duplication_probability <= 1.0);
  DSPS_CHECK(config.latency_jitter_s >= 0.0);
}

FaultInjector::Verdict FaultInjector::Judge(common::SimNodeId from,
                                            common::SimNodeId to) {
  Verdict v;
  if (down_nodes_.count(from) > 0 || down_nodes_.count(to) > 0) {
    v.drop = DropReason::kNodeDown;
    CountDrop(v.drop);
    return v;
  }
  if (from != to) {
    if (!partitions_.empty() && partitions_.count(Ordered(from, to)) > 0) {
      v.drop = DropReason::kPartition;
      CountDrop(v.drop);
      return v;
    }
    double loss = config_.loss_probability;
    if (!link_loss_.empty()) {
      auto it = link_loss_.find({from, to});
      if (it != link_loss_.end()) loss = it->second;
    }
    if (loss > 0.0 && rng_.Bernoulli(loss)) {
      v.drop = DropReason::kLoss;
      CountDrop(v.drop);
      return v;
    }
    if (config_.latency_jitter_s > 0.0) {
      v.extra_latency_s = rng_.Uniform(0.0, config_.latency_jitter_s);
    }
    if (config_.duplication_probability > 0.0 &&
        rng_.Bernoulli(config_.duplication_probability)) {
      v.duplicate = true;
      v.duplicate_extra_latency_s =
          config_.latency_jitter_s > 0.0
              ? rng_.Uniform(0.0, config_.latency_jitter_s)
              : 0.0;
      duplicated_ += 1;
      if (duplicated_counter_ != nullptr) duplicated_counter_->Increment();
    }
  }
  return v;
}

void FaultInjector::CrashNode(common::SimNodeId node) {
  down_nodes_.insert(node);
}

void FaultInjector::RecoverNode(common::SimNodeId node) {
  down_nodes_.erase(node);
}

bool FaultInjector::IsNodeUp(common::SimNodeId node) const {
  return down_nodes_.count(node) == 0;
}

void FaultInjector::CrashGroup(const std::vector<common::SimNodeId>& nodes) {
  for (common::SimNodeId node : nodes) CrashNode(node);
  correlated_crashes_ += 1;
}

void FaultInjector::RecoverGroup(const std::vector<common::SimNodeId>& nodes) {
  for (common::SimNodeId node : nodes) RecoverNode(node);
}

void FaultInjector::Partition(common::SimNodeId a, common::SimNodeId b) {
  partitions_.insert(Ordered(a, b));
}

void FaultInjector::Heal(common::SimNodeId a, common::SimNodeId b) {
  partitions_.erase(Ordered(a, b));
}

bool FaultInjector::IsPartitioned(common::SimNodeId a,
                                  common::SimNodeId b) const {
  return partitions_.count(Ordered(a, b)) > 0;
}

void FaultInjector::SetLinkLossProbability(common::SimNodeId from,
                                           common::SimNodeId to, double p) {
  if (p < 0.0) {
    link_loss_.erase({from, to});
    return;
  }
  DSPS_CHECK(p <= 1.0);
  link_loss_[{from, to}] = p;
}

void FaultInjector::CountDrop(DropReason reason) {
  switch (reason) {
    case DropReason::kNone:
      break;
    case DropReason::kNodeDown:
      dropped_node_down_ += 1;
      if (drop_node_down_counter_ != nullptr) {
        drop_node_down_counter_->Increment();
      }
      break;
    case DropReason::kPartition:
      dropped_partition_ += 1;
      if (drop_partition_counter_ != nullptr) {
        drop_partition_counter_->Increment();
      }
      break;
    case DropReason::kLoss:
      dropped_loss_ += 1;
      if (drop_loss_counter_ != nullptr) drop_loss_counter_->Increment();
      break;
  }
}

void FaultInjector::SetMetrics(telemetry::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    drop_node_down_counter_ = nullptr;
    drop_partition_counter_ = nullptr;
    drop_loss_counter_ = nullptr;
    duplicated_counter_ = nullptr;
    return;
  }
  drop_node_down_counter_ = metrics->counter(
      "fault.dropped", telemetry::MakeLabels({{"reason", "node_down"}}));
  drop_partition_counter_ = metrics->counter(
      "fault.dropped", telemetry::MakeLabels({{"reason", "partition"}}));
  drop_loss_counter_ = metrics->counter(
      "fault.dropped", telemetry::MakeLabels({{"reason", "loss"}}));
  duplicated_counter_ = metrics->counter("fault.duplicated");
}

}  // namespace dsps::sim
