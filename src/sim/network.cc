#include "sim/network.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "telemetry/flight_recorder.h"

namespace dsps::sim {

namespace {
/// Delivery delay for node-local sends (scheduler hop, no wire).
constexpr double kLocalDeliveryDelay = 1e-6;
}  // namespace

double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Network::Network(Simulator* simulator) : sim_(simulator) {
  DSPS_CHECK(simulator != nullptr);
  default_model_ = [](const Point& from, const Point& to) {
    LinkParams p;
    // 1 ms base + 50 us per distance unit; 100 MB/s default WAN pipe.
    p.latency_s = 0.001 + 5e-5 * Distance(from, to);
    p.bandwidth_bps = 1e8;
    return p;
  };
}

common::SimNodeId Network::AddNode(const Point& position) {
  nodes_.push_back(NodeState{position, nullptr, 0});
  return static_cast<common::SimNodeId>(nodes_.size() - 1);
}

void Network::SetHandler(common::SimNodeId node, Handler handler) {
  DSPS_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void Network::SetDefaultLinkModel(LinkModel model) {
  DSPS_CHECK(model != nullptr);
  default_model_ = std::move(model);
}

void Network::SetLink(common::SimNodeId from, common::SimNodeId to,
                      const LinkParams& params) {
  links_[{from, to}].params = params;
}

Network::LinkState& Network::GetOrCreateLink(common::SimNodeId from,
                                             common::SimNodeId to) {
  auto it = links_.find({from, to});
  if (it != links_.end()) return it->second;
  LinkState state;
  state.params = default_model_(nodes_[from].position, nodes_[to].position);
  return links_.emplace(std::make_pair(from, to), std::move(state))
      .first->second;
}

void Network::CountFaultDrop() {
  dropped_faults_ += 1;
  // Interned on first drop (not at SetMetrics time) so fault-free runs
  // export exactly the same series as a build without fault injection.
  if (metrics_ != nullptr) {
    if (dropped_fault_counter_ == nullptr) {
      dropped_fault_counter_ = metrics_->counter(
          "net.dropped_messages", telemetry::MakeLabels({{"reason", "fault"}}));
    }
    dropped_fault_counter_->Increment();
  }
  if (flight_ != nullptr) {
    flight_->RecordInstant("net.drop.fault", sim_->now(), /*node=*/-1,
                           /*value=*/1.0,
                           telemetry::FlightRecorder::EventKind::kNetDrop);
  }
}

void Network::ScheduleDelivery(double deliver_at, Message msg) {
  // Park the message in an arena slot; the delivery lambda captures only
  // {this, slot} — small enough for std::function's inline storage, so
  // scheduling a delivery performs no heap allocation.
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    arena_[slot] = std::move(msg);
  } else {
    slot = static_cast<uint32_t>(arena_.size());
    arena_.push_back(std::move(msg));
  }
  sim_->ScheduleAt(deliver_at, [this, slot]() { DeliverSlot(slot); });
}

void Network::DeliverSlot(uint32_t slot) {
  // The reference stays valid while the handler sends more messages: the
  // arena is a deque, so growth never relocates existing slots.
  const Message& m = arena_[slot];
  common::SimNodeId to = m.to;
  // In-flight messages to a node that crashed before delivery are lost
  // (the injector's delivery-time crash check).
  if (faults_ != nullptr && !faults_->IsNodeUp(to)) {
    faults_->CountDrop(FaultInjector::DropReason::kNodeDown);
    CountFaultDrop();
    ReleaseSlot(slot);
    return;
  }
  const Handler& h = nodes_[to].handler;
  if (!h) {
    // A message addressed to a node nobody listens on is data loss;
    // count it so it can never be silent, and abort in debug mode.
    DSPS_CHECK_MSG(!fail_on_unhandled_,
                   "message type %d delivered to node %d with no handler",
                   m.type, to);
    dropped_no_handler_ += 1;
    if (metrics_ != nullptr) {
      if (dropped_no_handler_counter_ == nullptr) {
        dropped_no_handler_counter_ = metrics_->counter(
            "net.dropped_messages",
            telemetry::MakeLabels({{"reason", "no_handler"}}));
      }
      dropped_no_handler_counter_->Increment();
    }
    if (flight_ != nullptr) {
      flight_->RecordInstant("net.drop.no_handler", sim_->now(), to,
                             static_cast<double>(m.type),
                             telemetry::FlightRecorder::EventKind::kNetDrop);
    }
    ReleaseSlot(slot);
    return;
  }
  h(m);
  ReleaseSlot(slot);
}

void Network::ReleaseSlot(uint32_t slot) {
  // Drop the payload now (it may own arbitrary application state); the
  // slot shell is recycled for the next Send.
  arena_[slot] = Message{};
  free_slots_.push_back(slot);
}

common::Status Network::Send(Message msg) {
  if (msg.from < 0 || static_cast<size_t>(msg.from) >= nodes_.size() ||
      msg.to < 0 || static_cast<size_t>(msg.to) >= nodes_.size()) {
    return common::Status::InvalidArgument("unknown node in Send");
  }
  if (msg.size_bytes < 0) {
    return common::Status::InvalidArgument("negative message size");
  }
  FaultInjector::Verdict verdict;
  if (faults_ != nullptr) {
    verdict = faults_->Judge(msg.from, msg.to);
    if (verdict.drop != FaultInjector::DropReason::kNone) {
      CountFaultDrop();
      return common::Status::OK();
    }
  }
  double deliver_at;
  if (msg.from == msg.to) {
    deliver_at = sim_->now() + kLocalDeliveryDelay;
    if (local_messages_counter_ != nullptr) {
      local_messages_counter_->Increment();
    }
  } else {
    LinkState& link = GetOrCreateLink(msg.from, msg.to);
    double start = std::max(sim_->now(), link.busy_until);
    double tx = static_cast<double>(msg.size_bytes) / link.params.bandwidth_bps;
    link.busy_until = start + tx;
    deliver_at = start + tx + link.params.latency_s + verdict.extra_latency_s;
    link.stats.messages += 1;
    link.stats.bytes += msg.size_bytes;
    nodes_[msg.from].egress_bytes += msg.size_bytes;
    total_bytes_ += msg.size_bytes;
    total_messages_ += 1;
    if (metrics_ != nullptr) {
      messages_counter_->Increment();
      bytes_counter_->Increment(msg.size_bytes);
      queue_wait_hist_->Observe(start - sim_->now());
      if (per_link_metrics_) {
        if (link.bytes_counter == nullptr) {
          telemetry::Labels labels = telemetry::MakeLabels(
              {{"from", std::to_string(msg.from)},
               {"to", std::to_string(msg.to)}});
          link.bytes_counter = metrics_->counter("net.link.bytes", labels);
          link.messages_counter =
              metrics_->counter("net.link.messages", std::move(labels));
        }
        link.bytes_counter->Increment(msg.size_bytes);
        link.messages_counter->Increment();
      }
    }
  }
  if (trace_ != nullptr && msg.trace_id != 0) {
    trace_->RecordMessage(msg.trace_id, msg.type, sim_->now(), deliver_at,
                          msg.from, msg.to);
  }
  if (verdict.duplicate && msg.from != msg.to) {
    // The duplicate gets its own arena slot (a copy); the original moves.
    ScheduleDelivery(deliver_at + verdict.duplicate_extra_latency_s, msg);
  }
  ScheduleDelivery(deliver_at, std::move(msg));
  return common::Status::OK();
}

const Point& Network::position(common::SimNodeId node) const {
  DSPS_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size());
  return nodes_[node].position;
}

LinkStats Network::link_stats(common::SimNodeId from,
                              common::SimNodeId to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) return LinkStats{};
  return it->second.stats;
}

int64_t Network::egress_bytes(common::SimNodeId node) const {
  DSPS_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size());
  return nodes_[node].egress_bytes;
}

std::vector<Network::LinkRecord> Network::AllLinkStats() const {
  std::vector<LinkRecord> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) {
    if (link.stats.messages > 0) {
      out.push_back(LinkRecord{key.first, key.second, link.stats});
    }
  }
  return out;
}

void Network::SetMetrics(telemetry::MetricsRegistry* metrics, bool per_link) {
  metrics_ = metrics;
  per_link_metrics_ = per_link && metrics != nullptr;
  for (auto& [key, link] : links_) {
    link.bytes_counter = nullptr;
    link.messages_counter = nullptr;
  }
  if (metrics == nullptr) {
    messages_counter_ = nullptr;
    bytes_counter_ = nullptr;
    local_messages_counter_ = nullptr;
    queue_wait_hist_ = nullptr;
    dropped_fault_counter_ = nullptr;
    dropped_no_handler_counter_ = nullptr;
    return;
  }
  messages_counter_ = metrics->counter("net.messages");
  bytes_counter_ = metrics->counter("net.bytes");
  local_messages_counter_ = metrics->counter("net.local_messages");
  queue_wait_hist_ = metrics->histogram("net.link_queue_wait_s");
  // net.dropped_messages counters are interned lazily on first drop so
  // fault-free snapshots stay byte-identical to the pre-fault-layer ones.
  dropped_fault_counter_ = nullptr;
  dropped_no_handler_counter_ = nullptr;
}

void Network::ResetStats() {
  total_bytes_ = 0;
  total_messages_ = 0;
  for (auto& node : nodes_) node.egress_bytes = 0;
  for (auto& [key, link] : links_) link.stats = LinkStats{};
}

}  // namespace dsps::sim
