#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace dsps::sim {

void Simulator::Schedule(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime t, Callback fn) {
  DSPS_DCHECK(fn != nullptr);
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-prone, so
  // copy the callback handle (cheap: std::function with small payloads) and
  // pop before running so the event can schedule more events.
  Event ev = queue_.top();
  queue_.pop();
  DSPS_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t && !stopped_) now_ = t;
}

}  // namespace dsps::sim
