#include "sim/simulator.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace dsps::sim {

SimTime Simulator::SanitizeTime(SimTime t) const {
  DSPS_DCHECK(std::isfinite(t));
  if (std::isnan(t)) return now_;
  if (std::isinf(t)) {
    return t > 0 ? std::numeric_limits<SimTime>::max() : now_;
  }
  return t < now_ ? now_ : t;
}

void Simulator::Schedule(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;  // NaN falls through; SanitizeTime catches it.
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime t, Callback fn) {
  DSPS_DCHECK(fn != nullptr);
  Push(SanitizeTime(t), kInvalidTimer, std::move(fn));
}

TimerId Simulator::ScheduleCancellable(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;
  return ScheduleCancellableAt(now_ + delay, std::move(fn));
}

TimerId Simulator::ScheduleCancellableAt(SimTime t, Callback fn) {
  DSPS_DCHECK(fn != nullptr);
  TimerId timer = next_timer_++;
  Push(SanitizeTime(t), timer, std::move(fn));
  return timer;
}

bool Simulator::Cancel(TimerId timer) {
  if (timer == kInvalidTimer) return false;
  auto it = timer_pos_.find(timer);
  if (it == timer_pos_.end()) return false;
  size_t pos = it->second;
  timer_pos_.erase(it);
  size_t last = heap_.size() - 1;
  if (pos != last) {
    Event moved = std::move(heap_[last]);
    heap_.pop_back();
    MoveInto(pos, std::move(moved));
    // The relocated event may violate the heap property in either
    // direction relative to its new neighborhood.
    if (pos > 0 && Before(heap_[pos], heap_[(pos - 1) / 4])) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  } else {
    heap_.pop_back();
  }
  return true;
}

void Simulator::MoveInto(size_t pos, Event ev) {
  if (ev.timer != kInvalidTimer) timer_pos_[ev.timer] = pos;
  heap_[pos] = std::move(ev);
}

void Simulator::Push(SimTime t, TimerId timer, Callback fn) {
  heap_.push_back(Event{t, next_seq_++, timer, std::move(fn)});
  size_t pos = heap_.size() - 1;
  if (timer != kInvalidTimer) timer_pos_[timer] = pos;
  SiftUp(pos);
}

void Simulator::SiftUp(size_t pos) {
  while (pos > 0) {
    size_t parent = (pos - 1) / 4;
    if (!Before(heap_[pos], heap_[parent])) break;
    Event tmp = std::move(heap_[pos]);
    MoveInto(pos, std::move(heap_[parent]));
    MoveInto(parent, std::move(tmp));
    pos = parent;
  }
}

void Simulator::SiftDown(size_t pos) {
  size_t n = heap_.size();
  for (;;) {
    size_t first = 4 * pos + 1;
    if (first >= n) break;
    size_t best = first;
    size_t end = first + 4 < n ? first + 4 : n;
    for (size_t c = first + 1; c < end; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], heap_[pos])) break;
    Event tmp = std::move(heap_[pos]);
    MoveInto(pos, std::move(heap_[best]));
    MoveInto(best, std::move(tmp));
    pos = best;
  }
}

Simulator::Event Simulator::PopTop() {
  Event ev = std::move(heap_[0]);
  if (ev.timer != kInvalidTimer) timer_pos_.erase(ev.timer);
  size_t last = heap_.size() - 1;
  if (last > 0) {
    Event moved = std::move(heap_[last]);
    heap_.pop_back();
    MoveInto(0, std::move(moved));
    SiftDown(0);
  } else {
    heap_.pop_back();
  }
  return ev;
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  // The callback is moved out of the heap (the event's slot is recycled
  // before it runs), so the event can freely schedule more events.
  Event ev = PopTop();
  DSPS_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_.front().time <= t) {
    Step();
  }
  // Advance the clock to the horizon whenever every event at or before `t`
  // has executed — including when Stop() fired during the *final* such
  // event (there was nothing left to abort, so the run did complete and
  // time-series windows opened afterwards must not see a stale clock).
  // Only a stop with work still pending keeps the clock at the stopping
  // event's time.
  if (now_ < t && (heap_.empty() || heap_.front().time > t)) now_ = t;
}

}  // namespace dsps::sim
