#include "coordinator/coordinator_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "interest/summarize.h"

namespace dsps::coordinator {

using sim::Distance;
using sim::Point;

/// Tree node: leaves are entities, internal nodes are coordinator roles.
/// All children of one node are the same kind (all leaves or all internal).
struct CoordinatorTree::Node {
  bool is_leaf = false;
  /// Leaf: the entity. Internal: the entity playing this coordinator role.
  common::EntityId entity = common::kInvalidEntity;
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;
  /// Cached coarse interest summary of the subtree (see SummaryOf).
  interest::InterestSet summary;
  uint64_t summary_version = 0;
  /// Cached routing aggregates (see RefreshRouteCache): the subtree's
  /// leaf count and total routed load. Valid iff route_version matches
  /// the tree's route_epoch_; a version of 0 is always stale.
  size_t cached_leaves = 0;
  double cached_load = 0.0;
  uint64_t route_version = 0;
};

namespace {

/// Collects the entities at the leaves of `node`'s subtree.
void CollectLeaves(const CoordinatorTree::Node* node,
                   std::vector<common::EntityId>* out);

}  // namespace

CoordinatorTree::CoordinatorTree(const Config& config) : config_(config) {
  DSPS_CHECK(config.k >= 2);
  root_ = std::make_unique<Node>();
  root_->is_leaf = false;
}

CoordinatorTree::~CoordinatorTree() = default;

namespace {

void CollectLeaves(const CoordinatorTree::Node* node,
                   std::vector<common::EntityId>* out) {
  if (node->is_leaf) {
    out->push_back(node->entity);
    return;
  }
  for (const auto& c : node->children) CollectLeaves(c.get(), out);
}

}  // namespace

bool CoordinatorTree::Contains(common::EntityId id) const {
  return positions_.count(id) > 0;
}

CoordinatorTree::Node* CoordinatorTree::FindLeaf(common::EntityId id) const {
  // Iterative DFS.
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      if (n->entity == id) return n;
      continue;
    }
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  return nullptr;
}

common::EntityId CoordinatorTree::CenterOf(const Node& node) const {
  std::vector<common::EntityId> leaves;
  CollectLeaves(&node, &leaves);
  DSPS_CHECK(!leaves.empty());
  Point centroid{0, 0};
  for (common::EntityId e : leaves) {
    const Point& p = positions_.at(e);
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(leaves.size());
  centroid.y /= static_cast<double>(leaves.size());
  common::EntityId best = leaves[0];
  double best_d = std::numeric_limits<double>::max();
  for (common::EntityId e : leaves) {
    double d = Distance(positions_.at(e), centroid);
    if (d < best_d) {
      best_d = d;
      best = e;
    }
  }
  return best;
}

common::Result<int> CoordinatorTree::Join(common::EntityId id,
                                          const Point& position) {
  if (Contains(id)) {
    return common::Status::AlreadyExists("entity already joined");
  }
  positions_[id] = position;
  ++interest_version_;
  ++route_epoch_;
  int messages = 1;  // request to the root
  // Rule 1: descend toward the closest child coordinator until reaching a
  // node whose children are leaves (or the empty root).
  Node* node = root_.get();
  while (!node->children.empty() && !node->children.front()->is_leaf) {
    Node* best = nullptr;
    double best_d = std::numeric_limits<double>::max();
    for (const auto& c : node->children) {
      double d = Distance(positions_.at(c->entity), position);
      if (d < best_d) {
        best_d = d;
        best = c.get();
      }
    }
    node = best;
    ++messages;  // forwarded request
  }
  auto leaf = std::make_unique<Node>();
  leaf->is_leaf = true;
  leaf->entity = id;
  leaf->parent = node;
  node->children.push_back(std::move(leaf));
  ++messages;  // welcome
  if (node->entity == common::kInvalidEntity) node->entity = id;
  SplitIfOversized(node, &messages);
  total_messages_ += messages;
  if (metrics_.joins != nullptr) {
    metrics_.joins->Increment();
    metrics_.messages->Increment(messages);
  }
  return messages;
}

void CoordinatorTree::SplitIfOversized(Node* node, int* messages) {
  const int max_size = 3 * config_.k - 1;
  while (node != nullptr &&
         static_cast<int>(node->children.size()) > max_size) {
    if (metrics_.splits != nullptr) metrics_.splits->Increment();
    // Rule 3: split into two clusters, each at least floor(3k/2), with
    // small radii: seeds = the farthest child pair, greedy assignment to
    // the nearest seed, then rebalance.
    auto pos_of = [&](const Node* c) { return positions_.at(c->entity); };
    size_t n = node->children.size();
    size_t si = 0, sj = 1;
    double far = -1.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = Distance(pos_of(node->children[i].get()),
                            pos_of(node->children[j].get()));
        if (d > far) {
          far = d;
          si = i;
          sj = j;
        }
      }
    }
    Point seed_a = pos_of(node->children[si].get());
    Point seed_b = pos_of(node->children[sj].get());
    std::vector<std::unique_ptr<Node>> group_a, group_b;
    std::vector<std::pair<double, std::unique_ptr<Node>>> undecided;
    for (auto& c : node->children) {
      double da = Distance(pos_of(c.get()), seed_a);
      double db = Distance(pos_of(c.get()), seed_b);
      if (da <= db) {
        group_a.push_back(std::move(c));
      } else {
        group_b.push_back(std::move(c));
      }
    }
    node->children.clear();
    // Rebalance so each group has >= floor(3k/2) children: move the
    // members of the larger group closest to the other seed.
    size_t min_size = static_cast<size_t>(3 * config_.k / 2);
    auto rebalance = [&](std::vector<std::unique_ptr<Node>>* from,
                         std::vector<std::unique_ptr<Node>>* to,
                         const Point& to_seed) {
      while (to->size() < min_size && from->size() > min_size) {
        size_t best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (size_t i = 0; i < from->size(); ++i) {
          double d = Distance(pos_of((*from)[i].get()), to_seed);
          if (d < best_d) {
            best_d = d;
            best = i;
          }
        }
        to->push_back(std::move((*from)[best]));
        from->erase(from->begin() + static_cast<long>(best));
      }
    };
    rebalance(&group_a, &group_b, seed_b);
    rebalance(&group_b, &group_a, seed_a);
    *messages += static_cast<int>(n);  // notify every member of its cluster

    auto make_cluster = [&](std::vector<std::unique_ptr<Node>> children) {
      auto cluster = std::make_unique<Node>();
      cluster->is_leaf = false;
      cluster->children = std::move(children);
      for (auto& c : cluster->children) c->parent = cluster.get();
      cluster->entity = CenterOf(*cluster);
      return cluster;
    };
    auto a = make_cluster(std::move(group_a));
    auto b = make_cluster(std::move(group_b));

    if (node->parent == nullptr) {
      // Splitting the root cluster grows the tree by one level.
      a->parent = node;
      b->parent = node;
      node->children.push_back(std::move(a));
      node->children.push_back(std::move(b));
      node->entity = CenterOf(*node);
      return;
    }
    // Replace `node` in its parent with the two new clusters (rule 3:
    // "the centers of the two clusters are selected as the two new
    // parents"), then check the parent for overflow.
    Node* parent = node->parent;
    a->parent = parent;
    b->parent = parent;
    auto it = std::find_if(parent->children.begin(), parent->children.end(),
                           [node](const std::unique_ptr<Node>& c) {
                             return c.get() == node;
                           });
    DSPS_CHECK(it != parent->children.end());
    size_t idx = static_cast<size_t>(it - parent->children.begin());
    parent->children[idx] = std::move(a);
    parent->children.push_back(std::move(b));
    node = parent;
  }
}

common::Result<int> CoordinatorTree::Leave(common::EntityId id) {
  Node* leaf = FindLeaf(id);
  if (leaf == nullptr) return common::Status::NotFound("entity not in tree");
  ++interest_version_;
  ++route_epoch_;
  entity_interest_.erase(id);
  int messages = 1;  // notify parent
  Node* parent = leaf->parent;
  DSPS_CHECK(parent != nullptr);
  auto it = std::find_if(parent->children.begin(), parent->children.end(),
                         [leaf](const std::unique_ptr<Node>& c) {
                           return c.get() == leaf;
                         });
  DSPS_CHECK(it != parent->children.end());
  parent->children.erase(it);
  positions_.erase(id);
  load_.erase(id);

  if (positions_.empty()) {
    // Tree is empty again.
    root_ = std::make_unique<Node>();
    root_->is_leaf = false;
    total_messages_ += messages;
    if (metrics_.leaves != nullptr) {
      metrics_.leaves->Increment();
      metrics_.messages->Increment(messages);
    }
    return messages;
  }

  // Rule 2: every coordinator role the entity played is re-assigned to the
  // new center of that cluster.
  for (Node* n = parent; n != nullptr; n = n->parent) {
    if (!n->children.empty() && n->entity == id) {
      n->entity = CenterOf(*n);
      messages += static_cast<int>(n->children.size());
    }
  }
  // Rule 4: merge the (possibly) undersized cluster.
  MergeIfUndersized(parent, &messages);
  total_messages_ += messages;
  if (metrics_.leaves != nullptr) {
    metrics_.leaves->Increment();
    metrics_.messages->Increment(messages);
  }
  return messages;
}

void CoordinatorTree::MergeIfUndersized(Node* node, int* messages) {
  while (node != nullptr) {
    Node* parent = node->parent;
    // Collapse a chain at the root: a root with one internal child drops a
    // level.
    if (parent == nullptr) {
      while (node->children.size() == 1 && !node->children.front()->is_leaf) {
        auto only = std::move(node->children.front());
        node->children = std::move(only->children);
        for (auto& c : node->children) c->parent = node;
        node->entity = only->entity;
        *messages += 1;
      }
      return;
    }
    if (static_cast<int>(node->children.size()) >= config_.k ||
        parent->children.size() < 2) {
      node = parent;
      continue;
    }
    // Find the closest sibling (rule 4) and give it all our children.
    Node* sibling = nullptr;
    double best_d = std::numeric_limits<double>::max();
    for (const auto& c : parent->children) {
      if (c.get() == node) continue;
      double d =
          Distance(positions_.at(c->entity), positions_.at(node->entity));
      if (d < best_d) {
        best_d = d;
        sibling = c.get();
      }
    }
    DSPS_CHECK(sibling != nullptr);
    if (metrics_.merges != nullptr) metrics_.merges->Increment();
    *messages += static_cast<int>(node->children.size()) + 1;
    for (auto& c : node->children) {
      c->parent = sibling;
      sibling->children.push_back(std::move(c));
    }
    node->children.clear();
    // Remove the now-empty cluster from its parent.
    auto it = std::find_if(parent->children.begin(), parent->children.end(),
                           [node](const std::unique_ptr<Node>& c) {
                             return c.get() == node;
                           });
    DSPS_CHECK(it != parent->children.end());
    parent->children.erase(it);
    sibling->entity = CenterOf(*sibling);
    // The merge may have overfilled the sibling.
    SplitIfOversized(sibling, messages);
    node = parent;
  }
}

void CoordinatorTree::Recenter(Node* node, int* messages) {
  if (node->is_leaf || node->children.empty()) return;
  for (auto& c : node->children) Recenter(c.get(), messages);
  common::EntityId center = CenterOf(*node);
  if (center != node->entity) {
    node->entity = center;
    *messages += static_cast<int>(node->children.size());
  }
}

int CoordinatorTree::Maintain() {
  ++interest_version_;
  ++route_epoch_;
  int messages = 0;
  if (!root_->children.empty()) {
    Recenter(root_.get(), &messages);
    // Fix any residual size violations bottom-up.
    std::vector<Node*> internals;
    std::vector<Node*> stack{root_.get()};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_leaf) continue;
      internals.push_back(n);
      for (const auto& c : n->children) stack.push_back(c.get());
    }
    for (auto it = internals.rbegin(); it != internals.rend(); ++it) {
      SplitIfOversized(*it, &messages);
    }
  }
  total_messages_ += messages;
  if (metrics_.maintain_rounds != nullptr) {
    metrics_.maintain_rounds->Increment();
    metrics_.messages->Increment(messages);
  }
  return messages;
}

void CoordinatorTree::SetMetrics(telemetry::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.joins = metrics->counter("coordinator.joins");
  metrics_.leaves = metrics->counter("coordinator.leaves");
  metrics_.maintain_rounds = metrics->counter("coordinator.maintain_rounds");
  metrics_.messages = metrics->counter("coordinator.messages");
  metrics_.splits = metrics->counter("coordinator.splits");
  metrics_.merges = metrics->counter("coordinator.merges");
}

int CoordinatorTree::HeartbeatRound() const {
  // Two messages (ping+ack) per parent-child pair.
  int pairs = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) continue;
    pairs += static_cast<int>(n->children.size());
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  return 2 * pairs;
}

double CoordinatorTree::SubtreeLoad(const Node& node) const {
  if (node.is_leaf) {
    auto it = load_.find(node.entity);
    return it == load_.end() ? 0.0 : it->second;
  }
  double total = 0.0;
  for (const auto& c : node.children) total += SubtreeLoad(*c);
  return total;
}

void CoordinatorTree::RefreshRouteCache(Node* node) {
  if (node->route_version == route_epoch_) return;
  if (node->is_leaf) {
    node->cached_leaves = 1;
    auto it = load_.find(node->entity);
    node->cached_load = it == load_.end() ? 0.0 : it->second;
  } else {
    size_t leaves = 0;
    double total = 0.0;
    // Child-order sum == SubtreeLoad's recursion association, so the
    // cached double equals a fresh recursive recomputation exactly.
    for (auto& c : node->children) {
      RefreshRouteCache(c.get());
      leaves += c->cached_leaves;
      total += c->cached_load;
    }
    node->cached_leaves = leaves;
    node->cached_load = total;
  }
  node->route_version = route_epoch_;
}

void CoordinatorTree::InvalidateRoutePath(Node* leaf) {
  for (Node* n = leaf; n != nullptr; n = n->parent) n->route_version = 0;
}

common::Result<CoordinatorTree::RouteResult> CoordinatorTree::RouteQuery(
    const Point& position, double load) {
  if (positions_.empty()) {
    return common::Status::FailedPrecondition("no entities in the tree");
  }
  RouteResult result;
  Node* node = root_.get();
  while (!node->is_leaf) {
    DSPS_CHECK(!node->children.empty());
    // Score children on coarse information: subtree load per leaf
    // (normalized by the mean across children) plus geographic proximity
    // (normalized by the mean distance across children). The per-child
    // aggregates come from the memoized route cache — O(fanout) per
    // level instead of O(subtree) — with values identical to the old
    // full recursion (see RefreshRouteCache).
    size_t nc = node->children.size();
    std::vector<double> load_per_leaf(nc), dist(nc);
    double mean_load = 0.0, mean_dist = 0.0;
    for (size_t i = 0; i < nc; ++i) {
      Node* c = node->children[i].get();
      RefreshRouteCache(c);
      load_per_leaf[i] =
          c->cached_load / std::max<size_t>(1, c->cached_leaves);
      dist[i] = Distance(positions_.at(c->entity), position);
      mean_load += load_per_leaf[i];
      mean_dist += dist[i];
    }
    mean_load = std::max(1e-12, mean_load / static_cast<double>(nc));
    mean_dist = std::max(1e-12, mean_dist / static_cast<double>(nc));
    size_t best = 0;
    double best_score = std::numeric_limits<double>::max();
    for (size_t i = 0; i < nc; ++i) {
      double score = load_per_leaf[i] / mean_load +
                     config_.route_geo_weight * dist[i] / mean_dist;
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    node = node->children[best].get();
    ++result.hops;
  }
  result.entity = node->entity;
  load_[node->entity] += load;
  InvalidateRoutePath(node);
  return result;
}

void CoordinatorTree::SetEntityInterest(common::EntityId id,
                                        interest::InterestSet set) {
  interest::InterestSet& slot = entity_interest_[id];
  // Change cutoff: republishing an identical set must not invalidate the
  // cached subtree summaries. The system re-ships an entity's aggregated
  // interest on every install, and at metro scale nearly all of those
  // are no-ops — without the cutoff each one forces an O(tree) summary
  // recompute on the next interest-aware route. Summaries are a pure
  // function of the stored sets, so skipping the bump when the bytes are
  // unchanged yields bit-identical routing.
  if (slot == set) return;
  slot = std::move(set);
  ++interest_version_;
}

const interest::InterestSet& CoordinatorTree::SummaryOf(Node* node) {
  if (node->summary_version == interest_version_) return node->summary;
  node->summary.Clear();
  if (node->is_leaf) {
    auto it = entity_interest_.find(node->entity);
    if (it != entity_interest_.end()) node->summary = it->second;
  } else {
    for (auto& child : node->children) {
      node->summary.MergeFrom(SummaryOf(child.get()));
    }
    node->summary.Simplify();
    if (config_.interest_budget > 0) {
      interest::CoarsenInterest(&node->summary, config_.interest_budget);
    }
  }
  node->summary_version = interest_version_;
  return node->summary;
}

interest::InterestSet CoordinatorTree::SubtreeInterestOf(
    common::EntityId id) {
  if (id == common::kInvalidEntity) return SummaryOf(root_.get());
  Node* leaf = FindLeaf(id);
  if (leaf == nullptr) return interest::InterestSet();
  return SummaryOf(leaf);
}

common::Result<CoordinatorTree::RouteResult>
CoordinatorTree::RouteQueryByInterest(const interest::InterestSet& query_interest,
                                      const interest::StreamCatalog& catalog,
                                      const Point& position, double load) {
  if (positions_.empty()) {
    return common::Status::FailedPrecondition("no entities in the tree");
  }
  RouteResult result;
  Node* node = root_.get();
  while (!node->is_leaf) {
    DSPS_CHECK(!node->children.empty());
    size_t nc = node->children.size();
    std::vector<double> load_per_leaf(nc), dist(nc), overlap(nc);
    double mean_load = 0.0, mean_dist = 0.0, mean_overlap = 0.0;
    for (size_t i = 0; i < nc; ++i) {
      Node* c = node->children[i].get();
      RefreshRouteCache(c);
      load_per_leaf[i] =
          c->cached_load / std::max<size_t>(1, c->cached_leaves);
      dist[i] = Distance(positions_.at(c->entity), position);
      overlap[i] =
          interest::SharedRateBytesPerSec(query_interest, SummaryOf(c),
                                          catalog);
      mean_load += load_per_leaf[i];
      mean_dist += dist[i];
      mean_overlap += overlap[i];
    }
    mean_load = std::max(1e-12, mean_load / static_cast<double>(nc));
    mean_dist = std::max(1e-12, mean_dist / static_cast<double>(nc));
    mean_overlap = std::max(1e-12, mean_overlap / static_cast<double>(nc));
    size_t best = 0;
    double best_score = std::numeric_limits<double>::max();
    for (size_t i = 0; i < nc; ++i) {
      double score = load_per_leaf[i] / mean_load +
                     config_.route_geo_weight * dist[i] / mean_dist -
                     config_.route_interest_weight * overlap[i] / mean_overlap;
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    node = node->children[best].get();
    ++result.hops;
  }
  result.entity = node->entity;
  load_[node->entity] += load;
  InvalidateRoutePath(node);
  return result;
}

void CoordinatorTree::ResetLoad() {
  load_.clear();
  ++route_epoch_;
}

double CoordinatorTree::LoadOf(common::EntityId id) const {
  auto it = load_.find(id);
  return it == load_.end() ? 0.0 : it->second;
}

int CoordinatorTree::height() const {
  int h = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    if (node->children.empty()) break;
    node = node->children.front().get();
    ++h;
  }
  return h;
}

int CoordinatorTree::CountClusterViolations(const Node& node,
                                            int depth_from_root) const {
  if (node.is_leaf) return 0;
  int violations = 0;
  int size = static_cast<int>(node.children.size());
  if (size > 3 * config_.k - 1) ++violations;
  // The root and the level directly below it are exempt from the lower
  // bound (paper Section 3.2.1).
  if (depth_from_root >= 2 && size < config_.k) ++violations;
  for (const auto& c : node.children) {
    violations += CountClusterViolations(*c, depth_from_root + 1);
  }
  return violations;
}

common::Status CoordinatorTree::CheckInvariants() const {
  // (c) every registered entity appears exactly once as a leaf.
  std::vector<common::EntityId> leaves;
  CollectLeaves(root_.get(), &leaves);
  if (leaves.size() != positions_.size()) {
    return common::Status::Internal("leaf count != entity count");
  }
  std::vector<common::EntityId> sorted = leaves;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return common::Status::Internal("duplicate leaf");
  }
  for (common::EntityId e : sorted) {
    if (positions_.count(e) == 0) {
      return common::Status::Internal("unknown leaf entity");
    }
  }
  // (a) cluster sizes.
  if (CountClusterViolations(*root_, 0) > 0) {
    return common::Status::Internal("cluster size violation");
  }
  // (b) every coordinator role is played by a subtree member, and children
  // kinds are uniform.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) continue;
    if (!n->children.empty()) {
      bool kind = n->children.front()->is_leaf;
      for (const auto& c : n->children) {
        if (c->is_leaf != kind) {
          return common::Status::Internal("mixed child kinds");
        }
      }
      std::vector<common::EntityId> sub;
      CollectLeaves(n, &sub);
      if (std::find(sub.begin(), sub.end(), n->entity) == sub.end()) {
        return common::Status::Internal("coordinator not in own subtree");
      }
    }
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  return common::Status::OK();
}

}  // namespace dsps::coordinator
