#ifndef DSPS_COORDINATOR_COORDINATOR_TREE_H_
#define DSPS_COORDINATOR_COORDINATOR_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "interest/measure.h"
#include "sim/network.h"
#include "telemetry/registry.h"

namespace dsps::coordinator {

/// Hierarchical coordinator tree (Section 3.2.1), adapted from the NICE
/// application-layer multicast protocol [Banerjee et al., SIGCOMM'02].
///
/// Entities are the leaves. Internal nodes are *coordinator roles*, each
/// played by one member entity (the geographic center of its cluster). A
/// coordinator's children form its cluster; the protocol maintains every
/// cluster size in [k, 3k-1] — except the root and the level directly
/// below it, which are allowed to be smaller — via the paper's five rules:
/// join routing from the root, leave with parent reselection, split of
/// oversized clusters into two minimum-radius halves, merge of undersized
/// clusters into the closest sibling, and periodic re-centering.
///
/// The class is a deterministic in-memory protocol model; every operation
/// reports the number of protocol messages it would have exchanged so the
/// benches can account control overhead. (The full-system runtime drives
/// it from the simulator.)
class CoordinatorTree {
 public:
  /// Tree node (public for the implementation's file-local helpers; not
  /// part of the API surface).
  struct Node;

  struct Config {
    /// Cluster size parameter k (clusters hold k..3k-1 children).
    int k = 3;
    /// Weight of geographic proximity vs load in query routing scores.
    double route_geo_weight = 0.5;
    /// Weight of data-interest overlap in interest-aware routing
    /// (RouteQueryByInterest): higher steers queries toward subtrees
    /// already subscribed to similar data.
    double route_interest_weight = 1.0;
    /// Box budget for the coarse per-coordinator interest summaries
    /// ("a higher level coordinator distributes queries based on coarser
    /// information").
    int interest_budget = 8;
  };

  explicit CoordinatorTree(const Config& config);
  CoordinatorTree(const CoordinatorTree&) = delete;
  CoordinatorTree& operator=(const CoordinatorTree&) = delete;
  ~CoordinatorTree();

  /// Adds an entity. The request is routed from the root down the closest
  /// coordinators (rule 1); oversize clusters split (rule 3). Returns the
  /// number of protocol messages exchanged.
  common::Result<int> Join(common::EntityId id, const sim::Point& position);

  /// Removes an entity (graceful leave or detected failure — same repair
  /// path, rule 2): parent notified, coordinator roles it played are
  /// re-assigned, undersized clusters merge (rule 4). Returns messages.
  common::Result<int> Leave(common::EntityId id);

  /// Periodic maintenance (rule 5): re-select the center of every cluster;
  /// also fixes any size violations. Returns messages exchanged.
  int Maintain();

  /// One heartbeat round: every parent<->child pair exchanges a pair of
  /// messages. Returns the message count (cost of failure detection).
  int HeartbeatRound() const;

  /// Routes one query with interest centered at `position` from the root
  /// to an entity, choosing at each level the child minimizing
  ///   load_subtree/mean_load + route_geo_weight * dist/diameter.
  /// Adds `load` to the chosen entity. Returns the entity and the number
  /// of levels descended (routing messages).
  struct RouteResult {
    common::EntityId entity = common::kInvalidEntity;
    int hops = 0;
  };
  common::Result<RouteResult> RouteQuery(const sim::Point& position,
                                         double load);

  /// Registers the data interest of `id` (the union of its queries'
  /// boxes). Coordinators summarize their subtree's interest with at most
  /// `interest_budget` boxes per stream — the "coarser information" higher
  /// levels route by.
  void SetEntityInterest(common::EntityId id, interest::InterestSet set);

  /// Routes a query level-by-level like RouteQuery, but each child's score
  /// additionally rewards overlap between `query_interest` and the child's
  /// coarse subtree interest summary (rates via `catalog`). Queries with
  /// similar interest land near each other, cutting duplicate
  /// dissemination — the goal of Section 3.2.2, achieved with 3.2.1's
  /// scalable mechanism.
  common::Result<RouteResult> RouteQueryByInterest(
      const interest::InterestSet& query_interest,
      const interest::StreamCatalog& catalog, const sim::Point& position,
      double load);

  /// The coarse interest summary of `id`'s subtree-or-self (for tests).
  interest::InterestSet SubtreeInterestOf(common::EntityId id);

  /// Clears all routed load.
  void ResetLoad();

  /// Load currently routed to `id`.
  double LoadOf(common::EntityId id) const;

  size_t size() const { return positions_.size(); }
  bool Contains(common::EntityId id) const;
  int height() const;

  /// Verifies the structural invariants: (a) every cluster below the top
  /// two levels has size in [k, 3k-1] and no cluster exceeds 3k-1;
  /// (b) every coordinator role is played by an entity of its own subtree;
  /// (c) every entity appears exactly once as a leaf.
  common::Status CheckInvariants() const;

  /// Messages exchanged since construction (joins+leaves+maintenance).
  int64_t total_messages() const { return total_messages_; }

  /// Attaches a metrics registry (null = detach; default off, zero cost).
  /// Exports coordinator.joins / .leaves / .maintain_rounds / .splits /
  /// .merges event counters plus coordinator.messages — the cluster-
  /// maintenance overhead of Section 3.2.1.
  void SetMetrics(telemetry::MetricsRegistry* metrics);

 private:
  Node* FindLeaf(common::EntityId id) const;
  /// Picks the member entity closest to the centroid of `node`'s leaves.
  common::EntityId CenterOf(const Node& node) const;
  void SplitIfOversized(Node* node, int* messages);
  void MergeIfUndersized(Node* node, int* messages);
  void Recenter(Node* node, int* messages);
  double SubtreeLoad(const Node& node) const;
  int CountClusterViolations(const Node& node, int depth_from_root) const;

  /// Lazily recomputes (and caches) `node`'s coarse interest summary.
  const interest::InterestSet& SummaryOf(Node* node);

  /// Lazily recomputes (and caches) `node`'s routing aggregates: subtree
  /// leaf count and subtree load. The memoized sum associates exactly
  /// like the plain recursion it replaced (node = Σ children, in child
  /// order), so the cached doubles are bit-identical to a fresh
  /// recomputation — routing decisions cannot drift. Invalidation:
  /// structural changes bump route_epoch_ (whole tree); each routed
  /// query invalidates only its root-to-leaf path.
  void RefreshRouteCache(Node* node);
  /// Marks the path from `leaf` to the root stale (its loads changed).
  static void InvalidateRoutePath(Node* leaf);

  Config config_;
  std::unique_ptr<Node> root_;
  std::map<common::EntityId, sim::Point> positions_;
  std::map<common::EntityId, double> load_;
  std::map<common::EntityId, interest::InterestSet> entity_interest_;
  /// Bumped on any structural or interest change; invalidates summaries.
  uint64_t interest_version_ = 1;
  /// Bumped on structural changes and ResetLoad; invalidates the routing
  /// caches everywhere at once. (Interest changes leave it alone: they
  /// cannot move load or leaves.)
  uint64_t route_epoch_ = 1;
  int64_t total_messages_ = 0;

  /// Cached counters; all null unless SetMetrics attached a registry.
  struct {
    telemetry::Counter* joins = nullptr;
    telemetry::Counter* leaves = nullptr;
    telemetry::Counter* maintain_rounds = nullptr;
    telemetry::Counter* messages = nullptr;
    telemetry::Counter* splits = nullptr;
    telemetry::Counter* merges = nullptr;
  } metrics_;
};

}  // namespace dsps::coordinator

#endif  // DSPS_COORDINATOR_COORDINATOR_TREE_H_
