#include "coordinator/heartbeat_monitor.h"

#include "common/check.h"

namespace dsps::coordinator {

HeartbeatMonitor::HeartbeatMonitor() : HeartbeatMonitor(Config()) {}
HeartbeatMonitor::HeartbeatMonitor(const Config& config) : config_(config) {
  DSPS_CHECK(config.timeout_s > 0);
}

void HeartbeatMonitor::Register(common::EntityId id, double now) {
  last_seen_[id] = now;
}

void HeartbeatMonitor::Unregister(common::EntityId id) {
  last_seen_.erase(id);
}

void HeartbeatMonitor::Heartbeat(common::EntityId id, double now) {
  auto it = last_seen_.find(id);
  if (it == last_seen_.end()) {
    // False-positive recovery: a swept entity that is still alive keeps
    // heartbeating, and the first heartbeat to get through re-registers
    // it. (Before this fix the id was ignored and never tracked again.)
    last_seen_[id] = now;
    return;
  }
  if (now > it->second) it->second = now;
}

std::vector<common::EntityId> HeartbeatMonitor::Sweep(double now) {
  std::vector<common::EntityId> suspects;
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (now - it->second > config_.timeout_s) {
      suspects.push_back(it->first);
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }
  return suspects;
}

bool HeartbeatMonitor::IsTracked(common::EntityId id) const {
  return last_seen_.count(id) > 0;
}

}  // namespace dsps::coordinator
