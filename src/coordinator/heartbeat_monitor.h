#ifndef DSPS_COORDINATOR_HEARTBEAT_MONITOR_H_
#define DSPS_COORDINATOR_HEARTBEAT_MONITOR_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/ids.h"

namespace dsps::coordinator {

/// Failure detection for the federation (Section 3.2.1: "heartbeat
/// messages are sent periodically among the parent and children to detect
/// any node failure").
///
/// The monitor tracks the last heartbeat time of every registered entity;
/// Sweep() returns (and stops tracking) every entity whose heartbeat is
/// older than the timeout. The caller turns suspicions into
/// CoordinatorTree::Leave / DisseminationTree::RemoveEntity calls — a
/// detected failure follows the same repair path as a graceful leave.
class HeartbeatMonitor {
 public:
  struct Config {
    /// An entity is suspected after this long without a heartbeat.
    double timeout_s = 3.0;
  };

  HeartbeatMonitor();
  explicit HeartbeatMonitor(const Config& config);

  /// Starts tracking `id`, as of time `now`.
  void Register(common::EntityId id, double now);

  /// Stops tracking `id` (graceful leave).
  void Unregister(common::EntityId id);

  /// Records a heartbeat from `id`. A heartbeat from an untracked entity
  /// re-registers it: an entity evicted by Sweep on a false suspicion
  /// (e.g. its heartbeats were delayed or partitioned away) resumes being
  /// monitored the moment it is heard from again, instead of staying
  /// invisible forever. Callers that evict an entity on purpose must also
  /// make it stop heartbeating (a gracefully-left entity does).
  void Heartbeat(common::EntityId id, double now);

  /// Entities whose last heartbeat is older than `now - timeout`. They
  /// are removed from the monitor; re-Register after recovery.
  std::vector<common::EntityId> Sweep(double now);

  bool IsTracked(common::EntityId id) const;
  size_t size() const { return last_seen_.size(); }

 private:
  Config config_;
  std::map<common::EntityId, double> last_seen_;
};

}  // namespace dsps::coordinator

#endif  // DSPS_COORDINATOR_HEARTBEAT_MONITOR_H_
