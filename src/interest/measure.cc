#include "interest/measure.h"

#include <algorithm>

#include "common/check.h"

namespace dsps::interest {

namespace {

/// Recursive helper: volume of the union of `boxes`, considering dimensions
/// [dim, ndims). All boxes are non-empty and share dimensionality.
double UnionVolumeRec(const std::vector<const Box*>& boxes, size_t dim) {
  if (boxes.empty()) return 0.0;
  size_t ndims = boxes[0]->size();
  if (dim == ndims) return 1.0;  // zero remaining dims: counting measure
  if (dim == ndims - 1) {
    // Base case: 1D union of intervals via sort-and-sweep.
    std::vector<Interval> ivs;
    ivs.reserve(boxes.size());
    for (const Box* b : boxes) ivs.push_back((*b)[dim]);
    std::sort(ivs.begin(), ivs.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    double total = 0.0;
    double cur_lo = 0.0, cur_hi = -1.0;
    bool open = false;
    for (const Interval& iv : ivs) {
      if (!open) {
        cur_lo = iv.lo;
        cur_hi = iv.hi;
        open = true;
      } else if (iv.lo <= cur_hi) {
        cur_hi = std::max(cur_hi, iv.hi);
      } else {
        total += cur_hi - cur_lo;
        cur_lo = iv.lo;
        cur_hi = iv.hi;
      }
    }
    if (open) total += cur_hi - cur_lo;
    return total;
  }
  // Slab decomposition along `dim`: between consecutive breakpoints the set
  // of covering boxes is constant, so recurse on the remaining dimensions.
  std::vector<double> cuts;
  cuts.reserve(boxes.size() * 2);
  for (const Box* b : boxes) {
    cuts.push_back((*b)[dim].lo);
    cuts.push_back((*b)[dim].hi);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  double total = 0.0;
  std::vector<const Box*> active;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    double lo = cuts[i], hi = cuts[i + 1];
    if (hi <= lo) continue;
    double mid = 0.5 * (lo + hi);
    active.clear();
    for (const Box* b : boxes) {
      if ((*b)[dim].lo <= mid && mid <= (*b)[dim].hi) active.push_back(b);
    }
    if (active.empty()) continue;
    total += (hi - lo) * UnionVolumeRec(active, dim + 1);
  }
  return total;
}

}  // namespace

double UnionVolume(const std::vector<Box>& boxes) {
  std::vector<const Box*> ptrs;
  ptrs.reserve(boxes.size());
  size_t ndims = 0;
  for (const Box& b : boxes) {
    if (BoxEmpty(b)) continue;
    if (ptrs.empty()) {
      ndims = b.size();
    } else {
      DSPS_CHECK_MSG(b.size() == ndims, "mixed box dimensionality");
    }
    ptrs.push_back(&b);
  }
  if (ptrs.empty()) return 0.0;
  return UnionVolumeRec(ptrs, 0);
}

double IntersectionVolume(const std::vector<Box>& a,
                          const std::vector<Box>& b) {
  std::vector<Box> pieces;
  pieces.reserve(a.size() * b.size());
  for (const Box& ba : a) {
    for (const Box& bb : b) {
      Box piece = BoxIntersect(ba, bb);
      if (!BoxEmpty(piece)) pieces.push_back(std::move(piece));
    }
  }
  return UnionVolume(pieces);
}

void StreamCatalog::Register(common::StreamId stream, StreamStats stats) {
  streams_[stream] = std::move(stats);
}

bool StreamCatalog::Contains(common::StreamId stream) const {
  return streams_.count(stream) > 0;
}

const StreamStats& StreamCatalog::stats(common::StreamId stream) const {
  auto it = streams_.find(stream);
  DSPS_CHECK_MSG(it != streams_.end(), "unknown stream %d", stream);
  return it->second;
}

std::vector<common::StreamId> StreamCatalog::streams() const {
  std::vector<common::StreamId> out;
  out.reserve(streams_.size());
  for (const auto& [id, stats] : streams_) out.push_back(id);
  return out;
}

double CoverageFraction(const InterestSet& set, common::StreamId stream,
                        const Box& domain) {
  const std::vector<Box>* boxes = set.boxes_for(stream);
  if (boxes == nullptr || boxes->empty()) return 0.0;
  double dom_vol = BoxVolume(domain);
  if (dom_vol <= 0.0) return 0.0;
  // Clip interest to the domain before measuring.
  std::vector<Box> clipped;
  clipped.reserve(boxes->size());
  for (const Box& b : *boxes) {
    Box c = BoxIntersect(b, domain);
    if (!BoxEmpty(c)) clipped.push_back(std::move(c));
  }
  return UnionVolume(clipped) / dom_vol;
}

double InterestRateBytesPerSec(const InterestSet& set, common::StreamId stream,
                               const StreamStats& stats) {
  return stats.bytes_per_s() * CoverageFraction(set, stream, stats.domain);
}

double SharedRateBytesPerSec(const InterestSet& a, const InterestSet& b,
                             const StreamCatalog& catalog) {
  double total = 0.0;
  for (common::StreamId stream : catalog.streams()) {
    const std::vector<Box>* ba = a.boxes_for(stream);
    const std::vector<Box>* bb = b.boxes_for(stream);
    if (ba == nullptr || bb == nullptr) continue;
    const StreamStats& stats = catalog.stats(stream);
    double dom_vol = BoxVolume(stats.domain);
    if (dom_vol <= 0.0) continue;
    double shared = IntersectionVolume(*ba, *bb);
    total += stats.bytes_per_s() * (shared / dom_vol);
  }
  return total;
}

double TotalRateBytesPerSec(const InterestSet& set,
                            const StreamCatalog& catalog) {
  double total = 0.0;
  for (common::StreamId stream : catalog.streams()) {
    total += InterestRateBytesPerSec(set, stream, catalog.stats(stream));
  }
  return total;
}

}  // namespace dsps::interest
