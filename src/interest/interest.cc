#include "interest/interest.h"

#include <algorithm>

namespace dsps::interest {

void InterestSet::Add(common::StreamId stream, Box box) {
  if (BoxEmpty(box)) return;
  boxes_[stream].push_back(std::move(box));
}

void InterestSet::MergeFrom(const InterestSet& other) {
  for (const auto& [stream, boxes] : other.boxes_) {
    auto& mine = boxes_[stream];
    mine.insert(mine.end(), boxes.begin(), boxes.end());
  }
}

namespace {

/// One stream's Simplify step (see InterestSet::Simplify). Factored out
/// so the incremental merge applies the exact same reduction per stream.
void SimplifyBoxes(std::vector<Box>* boxes) {
  std::vector<Box> kept;
  kept.reserve(boxes->size());
  for (size_t i = 0; i < boxes->size(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < boxes->size() && !covered; ++j) {
      if (i == j) continue;
      // Tie-break identical boxes by index so exactly one copy survives.
      if (BoxCovers((*boxes)[j], (*boxes)[i]) &&
          (!BoxCovers((*boxes)[i], (*boxes)[j]) || j < i)) {
        covered = true;
      }
    }
    if (!covered) kept.push_back((*boxes)[i]);
  }
  *boxes = std::move(kept);
}

}  // namespace

void InterestSet::MergeSimplifyFrom(const InterestSet& other,
                                    std::vector<common::StreamId>* changed) {
  for (const auto& [stream, boxes] : other.boxes_) {
    auto& mine = boxes_[stream];
    const std::vector<Box> before = mine;
    mine.insert(mine.end(), boxes.begin(), boxes.end());
    SimplifyBoxes(&mine);
    if (mine != before) changed->push_back(stream);
  }
}

bool InterestSet::InterestedIn(common::StreamId stream) const {
  auto it = boxes_.find(stream);
  return it != boxes_.end() && !it->second.empty();
}

bool InterestSet::Matches(common::StreamId stream, const double* point) const {
  auto it = boxes_.find(stream);
  if (it == boxes_.end()) return false;
  for (const Box& box : it->second) {
    if (BoxContains(box, point)) return true;
  }
  return false;
}

const std::vector<Box>* InterestSet::boxes_for(common::StreamId stream) const {
  auto it = boxes_.find(stream);
  if (it == boxes_.end()) return nullptr;
  return &it->second;
}

std::vector<common::StreamId> InterestSet::streams() const {
  std::vector<common::StreamId> out;
  out.reserve(boxes_.size());
  for (const auto& [stream, boxes] : boxes_) {
    if (!boxes.empty()) out.push_back(stream);
  }
  return out;
}

common::StreamId InterestSet::leading_stream() const {
  for (const auto& [stream, boxes] : boxes_) {
    if (!boxes.empty()) return stream;
  }
  return common::kInvalidStream;
}

void InterestSet::Simplify() {
  for (auto& [stream, boxes] : boxes_) {
    SimplifyBoxes(&boxes);
  }
}

int64_t InterestSet::TotalBoxes() const {
  int64_t n = 0;
  for (const auto& [stream, boxes] : boxes_) {
    n += static_cast<int64_t>(boxes.size());
  }
  return n;
}

}  // namespace dsps::interest
