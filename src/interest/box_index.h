#ifndef DSPS_INTEREST_BOX_INDEX_H_
#define DSPS_INTEREST_BOX_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "interest/interval.h"

namespace dsps::interest {

/// Point-stabbing index over subscriber boxes: given a tuple's numeric
/// values, returns every subscriber with a box containing them.
///
/// A stream delegate fans each tuple out to the queries bound to the
/// stream; with thousands of co-located queries the naive per-tuple scan
/// is the hot loop. The index overlays a uniform grid on the first one or
/// two dimensions of the stream's domain; each box registers with every
/// cell it overlaps, and a lookup tests only the boxes in the point's
/// cell. Degenerates gracefully: boxes outside the domain clamp to edge
/// cells, and a fat box simply registers in many cells.
class BoxIndex {
 public:
  struct Config {
    /// Grid resolution per indexed dimension.
    int cells_per_dim = 16;
    /// Index at most this many leading dimensions (1 or 2).
    int index_dims = 2;
  };

  /// `domain` bounds the grid (the stream's full value box).
  explicit BoxIndex(const Box& domain);
  BoxIndex(const Box& domain, const Config& config);

  /// Registers one box for `subscriber` (a subscriber may hold several).
  void Insert(int64_t subscriber, const Box& box);

  /// Unregisters all of `subscriber`'s boxes.
  void Remove(int64_t subscriber);

  /// Appends (deduplicated, ascending) every subscriber with a box
  /// containing `point`. `point` must have at least as many coordinates
  /// as the domain has dimensions.
  void Match(const double* point, std::vector<int64_t>* out) const;

  /// Appends (deduplicated, ascending) every subscriber with a box
  /// overlapping `query` in every dimension. `query` must have the
  /// domain's dimensionality. Used for box-to-box pruning (e.g. finding
  /// the queries whose interest genuinely overlaps a new query's) rather
  /// than per-tuple point stabbing.
  void MatchOverlap(const Box& query, std::vector<int64_t>* out) const;

  /// Registered (subscriber, box) pairs.
  size_t size() const { return total_boxes_; }
  size_t subscriber_count() const { return boxes_of_.size(); }

 private:
  struct Entry {
    int64_t subscriber;
    Box box;
  };

  int CellOf(int dim, double v) const;
  int FlatIndex(const double* point) const;

  Box domain_;
  Config config_;
  int dims_indexed_;
  /// cells_[flat cell] -> entries overlapping the cell.
  std::vector<std::vector<Entry>> cells_;
  std::map<int64_t, std::vector<Box>> boxes_of_;
  size_t total_boxes_ = 0;
};

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_BOX_INDEX_H_
