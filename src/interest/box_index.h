#ifndef DSPS_INTEREST_BOX_INDEX_H_
#define DSPS_INTEREST_BOX_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "interest/interval.h"
#include "interest/spline_index.h"

namespace dsps::interest {

/// Which matching structure a BoxIndex uses.
///
/// - kGrid: uniform grid over the first one or two dimensions.
/// - kSpline: learned-spline equal-depth buckets over the leading
///   dimension (SplineIndex), with a plain linear scan below a build
///   threshold and pending/tombstone overlays for churn.
/// - kAuto: start on the grid and switch to the spline once the box count
///   crosses `Config::spline_min_boxes` — small indexes (per-entity stream
///   delegates, routing caches over a node's children) keep the cheap
///   grid, while million-box structures (graph build, metro-scale routing)
///   get the learned index. The `DSPS_INDEX` environment variable
///   (`grid` | `spline`) pins auto indexes to one strategy process-wide;
///   explicit configs always win over the environment.
enum class IndexStrategy { kAuto, kGrid, kSpline };

/// Aggregated health/size statistics across one or more box indexes;
/// exported to bench JSON and surfaced by dsps_doctor.
struct IndexStats {
  int64_t indexes = 0;
  int64_t grid_indexes = 0;
  int64_t spline_indexes = 0;
  int64_t boxes = 0;
  int64_t mem_bytes = 0;
  /// Match/MatchOverlap calls across all strategies.
  int64_t lookups = 0;
  /// Spline-path bucket locations and how many escaped the bounded
  /// correction window into a full binary search.
  int64_t spline_lookups = 0;
  int64_t spline_fallbacks = 0;
  int64_t spline_rebuilds = 0;
  int64_t spline_knots = 0;
  int64_t spline_buckets = 0;
  /// Max over member indexes.
  int64_t spline_max_error = 0;
  double declared_fallback_bound = 0.0;
  /// Total spline (re)build time.
  double build_us = 0.0;

  void MergeFrom(const IndexStats& other);
  double FallbackRate() const {
    return spline_lookups > 0
               ? static_cast<double>(spline_fallbacks) /
                     static_cast<double>(spline_lookups)
               : 0.0;
  }
};

/// Point-stabbing index over subscriber boxes: given a tuple's numeric
/// values, returns every subscriber with a box containing them.
///
/// A stream delegate fans each tuple out to the queries bound to the
/// stream; with thousands of co-located queries the naive per-tuple scan
/// is the hot loop. Two interchangeable strategies back the same exact
/// interface (identical output, order included):
///
/// - The grid overlays a uniform grid on the first one or two dimensions
///   of the stream's domain; each box registers with every cell it
///   overlaps, and a lookup tests only the boxes in the point's cell.
///   Boxes outside the domain clamp to edge cells.
/// - The spline (see SplineIndex) buckets boxes by the empirical CDF of
///   their leading-dimension endpoints and learns the bucket-locator
///   function — at large box counts its adaptive buckets are orders of
///   magnitude finer than the fixed grid. Inserts land in a pending
///   overlay and removals in a tombstone set; the immutable spline is
///   rebuilt lazily when either overlay grows past a quarter of the
///   built size. Below kSplineBuildMin boxes no spline is built at all
///   and lookups fall back to a linear scan.
class BoxIndex {
 public:
  struct Config {
    /// Grid resolution per indexed dimension.
    int cells_per_dim = 16;
    /// Index at most this many leading dimensions (1 or 2; grid only).
    int index_dims = 2;
    /// Strategy selection; see IndexStrategy.
    IndexStrategy strategy = IndexStrategy::kAuto;
    /// Auto mode switches grid -> spline at this box count.
    int spline_min_boxes = 256;
    SplineIndex::Config spline;
  };

  /// Spline-mode indexes smaller than this use a plain linear scan.
  static constexpr size_t kSplineBuildMin = 32;

  /// `domain` bounds the grid (the stream's full value box).
  explicit BoxIndex(const Box& domain);
  BoxIndex(const Box& domain, const Config& config);

  /// Registers one box for `subscriber` (a subscriber may hold several).
  void Insert(int64_t subscriber, const Box& box);

  /// Unregisters all of `subscriber`'s boxes. Walks only the grid cells
  /// the subscriber's own boxes registered in (or, on the spline path,
  /// tombstones the subscriber), never the whole structure.
  void Remove(int64_t subscriber);

  /// Appends (deduplicated, ascending) every subscriber with a box
  /// containing `point`. `point` must have at least as many coordinates
  /// as the domain has dimensions.
  void Match(const double* point, std::vector<int64_t>* out) const;

  /// Appends (deduplicated, ascending) every subscriber with a box
  /// overlapping `query` in every dimension. `query` must have the
  /// domain's dimensionality. Used for box-to-box pruning (e.g. finding
  /// the queries whose interest genuinely overlaps a new query's) rather
  /// than per-tuple point stabbing.
  void MatchOverlap(const Box& query, std::vector<int64_t>* out) const;

  /// Registered (subscriber, box) pairs.
  size_t size() const { return total_boxes_; }
  size_t subscriber_count() const { return boxes_of_.size(); }

  /// Current strategy: "grid", or "spline" (which includes the linear
  /// fallback below the build threshold).
  const char* strategy_name() const { return spline_mode_ ? "spline" : "grid"; }

  /// Accumulates this index's statistics into `stats`.
  void AddStatsTo(IndexStats* stats) const;

 private:
  struct Entry {
    int64_t subscriber;
    Box box;
  };

  int CellOf(int dim, double v) const;
  int FlatIndex(const double* point) const;
  void InsertGrid(int64_t subscriber, const Box& box);
  void SwitchToSpline();
  /// Lazily (re)builds the spline at lookup time; const because lookups
  /// are, with the overlay state mutable (same pattern as the lazy
  /// routing caches in dissemination/tree.h).
  void MaybeRebuildSpline() const;
  void RebuildSpline() const;

  Box domain_;
  Config config_;
  int dims_indexed_;
  /// Strategy after applying the DSPS_INDEX override; kAuto means
  /// "currently grid, switch at spline_min_boxes".
  IndexStrategy resolved_;
  bool spline_mode_ = false;
  /// Ground truth for rebuilds, linear fallback, and Remove.
  std::unordered_map<int64_t, std::vector<Box>> boxes_of_;
  size_t total_boxes_ = 0;
  /// Grid state (empty in spline mode).
  std::vector<std::vector<Entry>> cells_;
  /// Spline state: the immutable built index plus churn overlays.
  /// pending_ holds boxes inserted since the last build; erased_
  /// tombstones subscribers removed since (filtering built candidates
  /// only — re-inserted subscribers live in pending_ and bypass it).
  mutable std::unique_ptr<SplineIndex> spline_;
  mutable std::vector<SplineIndex::Entry> pending_;
  mutable std::unordered_set<int64_t> erased_;
  mutable std::vector<int64_t> spline_scratch_;
  mutable int64_t rebuilds_ = 0;
  mutable double build_us_ = 0.0;
  mutable int64_t lookups_ = 0;
};

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_BOX_INDEX_H_
