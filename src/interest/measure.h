#ifndef DSPS_INTEREST_MEASURE_H_
#define DSPS_INTEREST_MEASURE_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "interest/interest.h"
#include "interest/interval.h"

namespace dsps::interest {

/// Exact d-dimensional volume (Lebesgue measure) of a union of boxes, via
/// recursive slab decomposition along dimension 0. Exponential in the worst
/// case but fast for the modest box counts queries carry (<= dozens).
double UnionVolume(const std::vector<Box>& boxes);

/// Exact volume of (union of `a`) intersect (union of `b`).
double IntersectionVolume(const std::vector<Box>& a, const std::vector<Box>& b);

/// Per-stream physical properties the optimizer needs: the attribute
/// domain (full value box) and the data rate.
struct StreamStats {
  Box domain;
  double tuples_per_s = 100.0;
  double bytes_per_tuple = 64.0;

  double bytes_per_s() const { return tuples_per_s * bytes_per_tuple; }
};

/// The known global schema of the data (paper Section 1): stream ids with
/// their domains and rates. Shared by the dissemination layer, the query
/// graph builder and the workload generators.
class StreamCatalog {
 public:
  /// Registers (or replaces) a stream's stats.
  void Register(common::StreamId stream, StreamStats stats);

  bool Contains(common::StreamId stream) const;

  /// Stats for `stream`; must be registered.
  const StreamStats& stats(common::StreamId stream) const;

  /// All registered stream ids, ascending.
  std::vector<common::StreamId> streams() const;

  size_t size() const { return streams_.size(); }

 private:
  std::map<common::StreamId, StreamStats> streams_;
};

/// Fraction of `stream`'s domain covered by `set` (selectivity of the
/// interest as an early filter), in [0, 1]. Zero if the set has no interest
/// in the stream or the domain has zero volume.
double CoverageFraction(const InterestSet& set, common::StreamId stream,
                        const Box& domain);

/// Rate (bytes/s) of `stream` data that matches `set`, assuming values are
/// uniform over the stream's domain.
double InterestRateBytesPerSec(const InterestSet& set, common::StreamId stream,
                               const StreamStats& stats);

/// Rate (bytes/s) of data interesting to BOTH sets, summed over all streams
/// in the catalog — the query-graph edge weight of Section 3.2.2.
double SharedRateBytesPerSec(const InterestSet& a, const InterestSet& b,
                             const StreamCatalog& catalog);

/// Rate (bytes/s) of data interesting to `set`, summed over all streams —
/// the dissemination cost of serving one query/entity in isolation.
double TotalRateBytesPerSec(const InterestSet& set,
                            const StreamCatalog& catalog);

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_MEASURE_H_
