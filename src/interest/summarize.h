#ifndef DSPS_INTEREST_SUMMARIZE_H_
#define DSPS_INTEREST_SUMMARIZE_H_

#include <vector>

#include "interest/interest.h"
#include "interest/interval.h"

namespace dsps::interest {

/// Interest summarization (Section 3.1's open issue: "how to represent the
/// data interest of the different queries as well as how to efficiently
/// compute the aggregation of data interest").
///
/// A subtree's aggregate interest grows with the number of queries below
/// it; shipping every box to every ancestor is not scalable. CoarsenBoxes
/// reduces a union of boxes to at most `budget` boxes by greedily merging
/// the pair whose bounding box adds the least volume. The result *covers*
/// the input (no false negatives — early filtering stays correct), at the
/// price of false positives (unnecessary forwarding) proportional to the
/// added volume.

/// Returns a set of at most `budget` boxes covering the union of `boxes`.
/// budget >= 1. Boxes must share dimensionality; empty boxes are dropped.
std::vector<Box> CoarsenBoxes(std::vector<Box> boxes, int budget);

/// Coarsens every stream of `set` to at most `budget_per_stream` boxes,
/// in place.
void CoarsenInterest(InterestSet* set, int budget_per_stream);

/// The volume added by coarsening (false-positive region size):
/// UnionVolume(coarse) - UnionVolume(fine). Nonnegative when `coarse`
/// covers `fine`.
double CoarseningOvershoot(const std::vector<Box>& fine,
                           const std::vector<Box>& coarse);

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_SUMMARIZE_H_
