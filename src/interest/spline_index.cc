#include "interest/spline_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dsps::interest {

SplineIndex::SplineIndex(std::vector<Entry> entries, const Config& config)
    : config_(config), entries_(std::move(entries)) {
  DSPS_CHECK(config_.max_error >= 1);
  DSPS_CHECK(config_.target_bucket_boxes >= 1);
  DSPS_CHECK(config_.radix_bits >= 1 && config_.radix_bits <= 24);
  DSPS_CHECK(entries_.size() < std::numeric_limits<uint32_t>::max());
  BuildSeparators();
  BuildSpline();
  BuildRadix();
  BuildBuckets();
}

void SplineIndex::BuildSeparators() {
  seps_.clear();
  if (entries_.empty()) return;
  // Empirical CDF of the leading-dimension interval endpoints.
  std::vector<double> endpoints;
  endpoints.reserve(entries_.size() * 2);
  for (const Entry& e : entries_) {
    endpoints.push_back(e.box[0].lo);
    endpoints.push_back(e.box[0].hi);
  }
  std::sort(endpoints.begin(), endpoints.end());
  // Registration budget: each box registers in every bucket its interval
  // spans, and an interval containing c endpoints spans about
  // c * buckets / (2n) of them. Cap the bucket count so the expected
  // extra registrations stay within one extra copy per box — fat-box
  // workloads get coarser buckets instead of quadratic memory.
  const size_t n = entries_.size();
  size_t covered = 0;
  for (const Entry& e : entries_) {
    covered += static_cast<size_t>(
        std::upper_bound(endpoints.begin(), endpoints.end(), e.box[0].hi) -
        std::lower_bound(endpoints.begin(), endpoints.end(), e.box[0].lo));
  }
  size_t buckets = n / static_cast<size_t>(config_.target_bucket_boxes);
  if (covered > 0) {
    buckets = std::min(buckets, 2 * n * n / covered);
  }
  buckets = std::max<size_t>(buckets, 1);
  // Boundaries at equal-depth quantiles of the endpoint CDF, deduplicated
  // (repeated endpoints collapse; the bucket simply holds more boxes).
  for (size_t b = 1; b < buckets; ++b) {
    double sep = endpoints[b * endpoints.size() / buckets];
    if (seps_.empty() || sep > seps_.back()) seps_.push_back(sep);
  }
}

void SplineIndex::BuildSpline() {
  spline_.clear();
  if (seps_.size() < 2) {
    for (size_t i = 0; i < seps_.size(); ++i) {
      spline_.push_back(Knot{seps_[i], static_cast<double>(i)});
    }
    return;
  }
  // Greedy bounded-error corridor (GreedySplineCorridor): keep extending
  // the current segment while the line from the last knot to the incoming
  // point stays inside the intersection of all +/-max_error slope
  // corridors; when it exits, the previous point becomes a knot.
  const double eps = static_cast<double>(config_.max_error);
  spline_.push_back(Knot{seps_[0], 0.0});
  Knot last = spline_.back();
  Knot prev = last;
  double upper = std::numeric_limits<double>::infinity();
  double lower = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < seps_.size(); ++i) {
    const Knot pt{seps_[i], static_cast<double>(i)};
    const double dx = pt.x - last.x;
    DSPS_CHECK(dx > 0);  // separators are strictly increasing
    const double slope = (pt.y - last.y) / dx;
    if (slope > upper || slope < lower) {
      spline_.push_back(prev);
      last = prev;
      const double dx2 = pt.x - last.x;
      upper = (pt.y + eps - last.y) / dx2;
      lower = (pt.y - eps - last.y) / dx2;
    } else {
      upper = std::min(upper, (pt.y + eps - last.y) / dx);
      lower = std::max(lower, (pt.y - eps - last.y) / dx);
    }
    prev = pt;
  }
  if (spline_.back().x != seps_.back()) {
    spline_.push_back(Knot{seps_.back(), static_cast<double>(seps_.size() - 1)});
  }
}

uint64_t SplineIndex::PrefixOf(double x) const {
  const auto slots = static_cast<uint64_t>(radix_.size() - 1);
  double scaled = (x - radix_min_) * radix_scale_;
  if (!(scaled > 0.0)) return 0;
  if (scaled >= static_cast<double>(slots - 1)) return slots - 1;
  return static_cast<uint64_t>(scaled);
}

void SplineIndex::BuildRadix() {
  radix_.clear();
  if (spline_.size() < 64) return;
  const double lo = spline_.front().x;
  const double hi = spline_.back().x;
  if (!std::isfinite(lo) || !std::isfinite(hi) || hi <= lo) return;
  const auto slots = static_cast<size_t>(1) << config_.radix_bits;
  radix_min_ = lo;
  radix_scale_ = static_cast<double>(slots) / (hi - lo);
  if (!std::isfinite(radix_scale_) || radix_scale_ <= 0.0) return;
  radix_.assign(slots + 1, 0);
  // radix_[p] = first knot whose prefix is >= p; the segment holding a key
  // with prefix q then starts at an index in [radix_[q], radix_[q + 1]].
  size_t next = 0;
  for (size_t k = 0; k < spline_.size(); ++k) {
    const uint64_t pk = PrefixOf(spline_[k].x);
    while (next <= pk) radix_[next++] = static_cast<uint32_t>(k);
  }
  while (next < radix_.size()) {
    radix_[next++] = static_cast<uint32_t>(spline_.size() - 1);
  }
}

void SplineIndex::BuildBuckets() {
  const size_t buckets = seps_.size() + 1;
  bucket_offsets_.assign(buckets + 1, 0);
  // Counting pass, then CSR fill. Ranks here use the exact binary search:
  // build cost is O(n log n) either way and it keeps the learned path's
  // counters clean for health reporting.
  std::vector<std::pair<uint32_t, uint32_t>> span(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Interval& iv = entries_[i].box[0];
    const auto b0 = static_cast<uint32_t>(
        std::upper_bound(seps_.begin(), seps_.end(), iv.lo) - seps_.begin());
    const auto b1 = static_cast<uint32_t>(
        std::upper_bound(seps_.begin(), seps_.end(), iv.hi) - seps_.begin());
    span[i] = {b0, b1};
    for (uint32_t b = b0; b <= b1; ++b) ++bucket_offsets_[b + 1];
  }
  for (size_t b = 1; b <= buckets; ++b) {
    bucket_offsets_[b] += bucket_offsets_[b - 1];
  }
  bucket_entries_.resize(bucket_offsets_[buckets]);
  std::vector<uint32_t> cursor(bucket_offsets_.begin(),
                               bucket_offsets_.end() - 1);
  for (size_t i = 0; i < entries_.size(); ++i) {
    for (uint32_t b = span[i].first; b <= span[i].second; ++b) {
      bucket_entries_[cursor[b]++] = static_cast<uint32_t>(i);
    }
  }
}

size_t SplineIndex::Rank(double x) const {
  if (seps_.empty()) return 0;
  if (x < seps_.front()) return 0;
  if (x >= seps_.back()) return seps_.size();
  if (spline_.size() < 2) {
    return static_cast<size_t>(
        std::upper_bound(seps_.begin(), seps_.end(), x) - seps_.begin());
  }
  ++lookups_;
  // Locate the spline segment (radix hint narrows the knot range), then
  // interpolate a predicted boundary position.
  size_t seg_lo = 0;
  size_t seg_hi = spline_.size();
  if (!radix_.empty()) {
    const uint64_t p = PrefixOf(x);
    seg_lo = radix_[p];
    seg_hi = std::min<size_t>(radix_[p + 1] + 1, spline_.size());
  }
  const auto seg_it = std::upper_bound(
      spline_.begin() + static_cast<long>(seg_lo),
      spline_.begin() + static_cast<long>(seg_hi), x,
      [](double v, const Knot& k) { return v < k.x; });
  const size_t seg = static_cast<size_t>(seg_it - spline_.begin()) - 1;
  const Knot& a = spline_[seg];
  const Knot& b = spline_[std::min(seg + 1, spline_.size() - 1)];
  double pred = a.y;
  if (b.x > a.x) pred += (x - a.x) / (b.x - a.x) * (b.y - a.y);
  // Correct within the certified window. The corridor bounds the fit
  // error at the boundaries to max_error, and interpolation between two
  // boundaries adds at most one rank — so the window is +/-(max_error+1).
  // The result is certified against the neighbors; an uncertifiable
  // window (floating-point edge) falls back to the full search.
  const double w = static_cast<double>(config_.max_error + 1);
  const auto lo = static_cast<size_t>(
      std::clamp(pred - w, 0.0, static_cast<double>(seps_.size())));
  const auto hi = static_cast<size_t>(
      std::clamp(pred + w + 1.0, 0.0, static_cast<double>(seps_.size())));
  const auto r = static_cast<size_t>(
      std::upper_bound(seps_.begin() + static_cast<long>(lo),
                       seps_.begin() + static_cast<long>(hi), x) -
      seps_.begin());
  const bool lo_ok = r > lo || lo == 0 || seps_[lo - 1] <= x;
  const bool hi_ok = r < hi || hi == seps_.size() || seps_[hi] > x;
  if (lo_ok && hi_ok) return r;
  ++fallbacks_;
  return static_cast<size_t>(
      std::upper_bound(seps_.begin(), seps_.end(), x) - seps_.begin());
}

void SplineIndex::Match(const double* point, std::vector<int64_t>* out) const {
  if (entries_.empty()) return;
  const size_t b = Rank(point[0]);
  for (size_t k = bucket_offsets_[b]; k < bucket_offsets_[b + 1]; ++k) {
    const Entry& e = entries_[bucket_entries_[k]];
    if (BoxContains(e.box, point)) out->push_back(e.subscriber);
  }
}

void SplineIndex::MatchOverlap(const Box& query,
                               std::vector<int64_t>* out) const {
  if (entries_.empty() || BoxEmpty(query)) return;
  const size_t b0 = Rank(query[0].lo);
  const size_t b1 = Rank(query[0].hi);
  for (size_t b = b0; b <= b1; ++b) {
    for (size_t k = bucket_offsets_[b]; k < bucket_offsets_[b + 1]; ++k) {
      const Entry& e = entries_[bucket_entries_[k]];
      bool overlaps = true;
      for (size_t d = 0; d < query.size(); ++d) {
        if (!e.box[d].Overlaps(query[d])) {
          overlaps = false;
          break;
        }
      }
      if (overlaps) out->push_back(e.subscriber);
    }
  }
}

size_t SplineIndex::mem_bytes() const {
  size_t bytes = 0;
  for (const Entry& e : entries_) {
    bytes += sizeof(Entry) + e.box.size() * sizeof(Interval);
  }
  bytes += seps_.size() * sizeof(double);
  bytes += spline_.size() * sizeof(Knot);
  bytes += radix_.size() * sizeof(uint32_t);
  bytes += bucket_offsets_.size() * sizeof(uint32_t);
  bytes += bucket_entries_.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace dsps::interest
