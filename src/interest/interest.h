#ifndef DSPS_INTEREST_INTEREST_H_
#define DSPS_INTEREST_INTEREST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "interest/interval.h"

namespace dsps::interest {

/// A query's interest in one stream: a conjunctive box predicate over the
/// stream's numeric attributes ("price in [10, 20] AND volume >= 1000").
struct InterestSpec {
  common::StreamId stream = common::kInvalidStream;
  Box box;
};

/// The data interest of a query, an entity, or a dissemination subtree: for
/// each stream, a union (disjunction) of boxes. This is the representation
/// used both for early filtering in the dissemination trees (Section 3.1)
/// and for the overlap edge weights of the query graph (Section 3.2.2).
class InterestSet {
 public:
  InterestSet() = default;

  /// Adds one box of interest on `stream`. Empty boxes are ignored.
  void Add(common::StreamId stream, Box box);
  void Add(const InterestSpec& spec) { Add(spec.stream, spec.box); }

  /// Merges all of `other`'s boxes into this set (set union).
  void MergeFrom(const InterestSet& other);

  /// Merges `other` and re-simplifies exactly the streams it touches,
  /// appending to `changed` the ids of streams whose stored boxes are not
  /// bitwise-identical afterwards. Because Simplify() treats streams
  /// independently and is idempotent, this is bit-identical to
  /// MergeFrom(other) followed by Simplify() whenever this set is already
  /// simplified — but costs O(other's streams), not O(all streams). The
  /// changed list is what lets install paths skip republishing unchanged
  /// streams (itself a no-op by the subscribers' change-detection
  /// cutoffs).
  void MergeSimplifyFrom(const InterestSet& other,
                         std::vector<common::StreamId>* changed);

  /// True if this set has any interest in `stream`.
  bool InterestedIn(common::StreamId stream) const;

  /// True if a tuple of `stream` with the given attribute values matches
  /// any box. `point` must have at least as many coordinates as the boxes'
  /// dimensionality. Unknown streams never match.
  bool Matches(common::StreamId stream, const double* point) const;

  /// The boxes registered for `stream` (nullptr if none).
  const std::vector<Box>* boxes_for(common::StreamId stream) const;

  /// Streams this set is interested in, ascending.
  std::vector<common::StreamId> streams() const;

  /// The smallest stream id with interest (streams()[0] without the
  /// allocation); kInvalidStream when the set is empty. Hot on the
  /// query-install path, where routing anchors on the primary stream.
  common::StreamId leading_stream() const;

  /// Read-only per-stream view (ascending stream order). May contain
  /// streams whose box list is empty; streams() filters those.
  const std::map<common::StreamId, std::vector<Box>>& boxes_by_stream() const {
    return boxes_;
  }

  /// Drops boxes fully covered by another box of the same stream. Keeps
  /// Matches() semantics; shrinks the representation shipped to ancestors.
  void Simplify();

  /// Total number of boxes across all streams (the size of the
  /// representation an entity ships to its dissemination parent).
  int64_t TotalBoxes() const;

  bool empty() const { return boxes_.empty(); }
  void Clear() { boxes_.clear(); }

  /// Exact representation equality: same streams, same boxes in the same
  /// order, bitwise-equal bounds. Callers that republish interest sets
  /// use this as a change-detection cutoff.
  friend bool operator==(const InterestSet& a, const InterestSet& b) {
    return a.boxes_ == b.boxes_;
  }
  friend bool operator!=(const InterestSet& a, const InterestSet& b) {
    return !(a == b);
  }

 private:
  std::map<common::StreamId, std::vector<Box>> boxes_;
};

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_INTEREST_H_
