#ifndef DSPS_INTEREST_SPLINE_INDEX_H_
#define DSPS_INTEREST_SPLINE_INDEX_H_

#include <cstdint>
#include <vector>

#include "interest/interval.h"

namespace dsps::interest {

/// Learned-spline interval index over the leading dimension of subscriber
/// boxes (TrieSpline/RadixSpline style, adapted from point keys to
/// intervals).
///
/// The structure is an equal-depth bucket array whose boundaries are
/// quantiles of the empirical CDF of the leading-dimension interval
/// endpoints. Each box registers with the contiguous bucket range its
/// leading interval spans; a point lookup locates the single bucket whose
/// boundary rank equals the point's rank in the endpoint CDF and tests
/// only the boxes registered there. Locating the bucket is the learned
/// part: a greedy bounded-error spline is fit over the boundary values, a
/// radix table narrows the spline segment, and the prediction is corrected
/// within a +/-(max_error + 1) window. A correction that cannot be
/// certified inside the window falls back to a full binary search and is
/// counted — the fallback rate is the index's self-reported health signal.
///
/// The index is immutable once built; `BoxIndex` layers churn on top
/// (pending inserts, tombstones, periodic rebuild). Unlike the uniform
/// grid it replaces, bucket boundaries adapt to the data: a skewed
/// subscriber population gets fine buckets where boxes crowd and coarse
/// buckets where they don't, and the bucket count itself is capped by a
/// registration budget so fat boxes cannot blow up memory.
class SplineIndex {
 public:
  struct Config {
    /// Spline corridor half-width, in boundary-rank units. Larger values
    /// mean fewer knots (less memory) but a wider correction window.
    int max_error = 16;
    /// Aim for about this many boxes per bucket.
    int target_bucket_boxes = 8;
    /// Radix table resolution (2^bits slots); the table is skipped for
    /// small splines or degenerate key spans.
    int radix_bits = 10;
    /// The spline's promised fallback rate: lookups that escape the
    /// bounded correction window, as a fraction of all spline-path
    /// lookups. dsps_doctor flags the index unhealthy above this.
    double declared_fallback_bound = 0.01;
  };

  struct Entry {
    int64_t subscriber;
    Box box;
  };

  /// Builds the index over `entries` (all boxes non-empty, all with the
  /// same dimensionality >= 1). `entries` order is preserved verbatim;
  /// callers that need deterministic iteration must pre-sort.
  SplineIndex(std::vector<Entry> entries, const Config& config);

  /// Appends the subscriber of every box containing `point`. Raw
  /// candidates: no deduplication or ordering — the caller owns the final
  /// sort+unique (`BoxIndex` already does this for every strategy).
  void Match(const double* point, std::vector<int64_t>* out) const;

  /// Appends the subscriber of every box overlapping `query` in all
  /// dimensions. Raw candidates, possibly duplicated across the scanned
  /// bucket range; caller dedupes.
  void MatchOverlap(const Box& query, std::vector<int64_t>* out) const;

  size_t size() const { return entries_.size(); }
  size_t bucket_count() const { return bucket_offsets_.size() - 1; }
  size_t knot_count() const { return spline_.size(); }
  int max_error() const { return config_.max_error; }
  double declared_fallback_bound() const {
    return config_.declared_fallback_bound;
  }
  /// Spline-path bucket locations performed so far / how many escaped the
  /// bounded correction window into a full binary search.
  uint64_t lookups() const { return lookups_; }
  uint64_t fallback_lookups() const { return fallbacks_; }
  /// Deterministic structure size (computed from element counts, not
  /// container capacities, so it is stable across allocators and runs).
  size_t mem_bytes() const;

 private:
  struct Knot {
    double x;
    double y;
  };

  /// Number of separators <= x, i.e. the bucket index of x. Exact.
  size_t Rank(double x) const;
  uint64_t PrefixOf(double x) const;
  void BuildSeparators();
  void BuildSpline();
  void BuildRadix();
  void BuildBuckets();

  Config config_;
  std::vector<Entry> entries_;
  /// Sorted distinct bucket boundaries; bucket b holds keys x with
  /// rank(x) == b, where rank counts separators <= x. Buckets number
  /// seps_.size() + 1.
  std::vector<double> seps_;
  std::vector<Knot> spline_;
  std::vector<uint32_t> radix_;
  double radix_min_ = 0.0;
  double radix_scale_ = 0.0;
  /// CSR bucket storage: bucket b's entry indices are
  /// bucket_entries_[bucket_offsets_[b] .. bucket_offsets_[b + 1]).
  std::vector<uint32_t> bucket_offsets_;
  std::vector<uint32_t> bucket_entries_;
  mutable uint64_t lookups_ = 0;
  mutable uint64_t fallbacks_ = 0;
};

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_SPLINE_INDEX_H_
