#include "interest/summarize.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "interest/measure.h"

namespace dsps::interest {

namespace {

/// Smallest box containing both a and b.
Box BoundingBox(const Box& a, const Box& b) {
  Box out(a.size());
  for (size_t d = 0; d < a.size(); ++d) {
    out[d] = Interval{std::min(a[d].lo, b[d].lo), std::max(a[d].hi, b[d].hi)};
  }
  return out;
}

/// Cost of merging a and b: volume of the bounding box minus the volumes
/// of the parts (an upper bound on the added false-positive volume; exact
/// when a and b are disjoint).
double MergeCost(const Box& a, const Box& b) {
  return BoxVolume(BoundingBox(a, b)) - BoxVolume(a) - BoxVolume(b) +
         BoxVolume(BoxIntersect(a, b));
}

}  // namespace

std::vector<Box> CoarsenBoxes(std::vector<Box> boxes, int budget) {
  DSPS_CHECK(budget >= 1);
  // Drop empties.
  std::vector<Box> live;
  live.reserve(boxes.size());
  for (Box& b : boxes) {
    if (!BoxEmpty(b)) live.push_back(std::move(b));
  }
  int alive_count = static_cast<int>(live.size());
  if (alive_count <= budget) return live;
  // Greedy best-pair merging via a lazy-deletion min-heap: O(n^2 log n)
  // worst case instead of rescanning every pair per merge (O(n^3)). Boxes
  // stay in their original slots, so slot order equals the order a
  // compacting vector would keep, and the (cost, a, b) tie-break picks
  // the same pair the old first-strict-minimum scan did — the output is
  // bit-identical (asserted against a reference implementation in
  // summarize_test).
  const size_t n = live.size();
  std::vector<bool> alive(n, true);
  std::vector<int> version(n, 0);
  struct Entry {
    double cost;
    size_t a, b;  // slots, a < b
    int va, vb;   // slot versions at push time (stale when outdated)
  };
  auto later = [](const Entry& x, const Entry& y) {
    if (x.cost != y.cost) return x.cost > y.cost;
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> heap(later);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      heap.push(Entry{MergeCost(live[i], live[j]), i, j, 0, 0});
    }
  }
  while (alive_count > budget) {
    DSPS_CHECK(!heap.empty());
    Entry e = heap.top();
    heap.pop();
    if (!alive[e.a] || !alive[e.b] || version[e.a] != e.va ||
        version[e.b] != e.vb) {
      continue;  // refers to a merged-away box or an outdated merge result
    }
    live[e.a] = BoundingBox(live[e.a], live[e.b]);
    ++version[e.a];
    alive[e.b] = false;
    --alive_count;
    // Merging may have swallowed other boxes.
    for (size_t i = 0; i < n; ++i) {
      if (i == e.a || !alive[i]) continue;
      if (BoxCovers(live[e.a], live[i])) {
        alive[i] = false;
        --alive_count;
      }
    }
    if (alive_count <= budget) break;
    for (size_t i = 0; i < n; ++i) {
      if (i == e.a || !alive[i]) continue;
      size_t a = std::min(i, e.a);
      size_t b = std::max(i, e.a);
      heap.push(
          Entry{MergeCost(live[a], live[b]), a, b, version[a], version[b]});
    }
  }
  std::vector<Box> out;
  out.reserve(static_cast<size_t>(alive_count));
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) out.push_back(std::move(live[i]));
  }
  return out;
}

void CoarsenInterest(InterestSet* set, int budget_per_stream) {
  DSPS_CHECK(set != nullptr);
  InterestSet out;
  for (common::StreamId stream : set->streams()) {
    const std::vector<Box>* boxes = set->boxes_for(stream);
    if (boxes == nullptr) continue;
    for (Box& b : CoarsenBoxes(*boxes, budget_per_stream)) {
      out.Add(stream, std::move(b));
    }
  }
  *set = std::move(out);
}

double CoarseningOvershoot(const std::vector<Box>& fine,
                           const std::vector<Box>& coarse) {
  return UnionVolume(coarse) - UnionVolume(fine);
}

}  // namespace dsps::interest
