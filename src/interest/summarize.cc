#include "interest/summarize.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "interest/measure.h"

namespace dsps::interest {

namespace {

/// Smallest box containing both a and b.
Box BoundingBox(const Box& a, const Box& b) {
  Box out(a.size());
  for (size_t d = 0; d < a.size(); ++d) {
    out[d] = Interval{std::min(a[d].lo, b[d].lo), std::max(a[d].hi, b[d].hi)};
  }
  return out;
}

/// Cost of merging a and b: volume of the bounding box minus the volumes
/// of the parts (an upper bound on the added false-positive volume; exact
/// when a and b are disjoint).
double MergeCost(const Box& a, const Box& b) {
  return BoxVolume(BoundingBox(a, b)) - BoxVolume(a) - BoxVolume(b) +
         BoxVolume(BoxIntersect(a, b));
}

}  // namespace

std::vector<Box> CoarsenBoxes(std::vector<Box> boxes, int budget) {
  DSPS_CHECK(budget >= 1);
  // Drop empties and boxes covered by others.
  std::vector<Box> live;
  live.reserve(boxes.size());
  for (Box& b : boxes) {
    if (!BoxEmpty(b)) live.push_back(std::move(b));
  }
  // Greedy pairwise merging. O(n^3) worst case; n is a per-stream box
  // count (tens), so this is fine at the cadence interest changes.
  while (static_cast<int>(live.size()) > budget) {
    size_t bi = 0, bj = 1;
    double best = std::numeric_limits<double>::max();
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        double cost = MergeCost(live[i], live[j]);
        if (cost < best) {
          best = cost;
          bi = i;
          bj = j;
        }
      }
    }
    live[bi] = BoundingBox(live[bi], live[bj]);
    live.erase(live.begin() + static_cast<long>(bj));
    // Merging may have swallowed other boxes.
    for (size_t i = 0; i < live.size();) {
      if (i != bi && BoxCovers(live[bi], live[i])) {
        if (i < bi) --bi;
        live.erase(live.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
  return live;
}

void CoarsenInterest(InterestSet* set, int budget_per_stream) {
  DSPS_CHECK(set != nullptr);
  InterestSet out;
  for (common::StreamId stream : set->streams()) {
    const std::vector<Box>* boxes = set->boxes_for(stream);
    if (boxes == nullptr) continue;
    for (Box& b : CoarsenBoxes(*boxes, budget_per_stream)) {
      out.Add(stream, std::move(b));
    }
  }
  *set = std::move(out);
}

double CoarseningOvershoot(const std::vector<Box>& fine,
                           const std::vector<Box>& coarse) {
  return UnionVolume(coarse) - UnionVolume(fine);
}

}  // namespace dsps::interest
