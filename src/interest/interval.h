#ifndef DSPS_INTEREST_INTERVAL_H_
#define DSPS_INTEREST_INTERVAL_H_

#include <algorithm>
#include <vector>

namespace dsps::interest {

/// A closed numeric interval [lo, hi]. Empty when lo > hi.
struct Interval {
  double lo = 0.0;
  double hi = -1.0;

  static Interval All() { return Interval{-1e300, 1e300}; }

  bool empty() const { return lo > hi; }
  double length() const { return empty() ? 0.0 : hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
  bool Overlaps(const Interval& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
  Interval Intersect(const Interval& o) const {
    return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
  }
  /// True if `o` lies entirely inside this interval.
  bool Covers(const Interval& o) const {
    return o.empty() || (!empty() && lo <= o.lo && o.hi <= hi);
  }

  /// Exact representation equality (bitwise-equal bounds) — the basis of
  /// the change-detection cutoffs that skip republishing unchanged
  /// interest. Distinct empty representations compare unequal on purpose:
  /// "no change" must mean the stored bytes are the same.
  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }
};

/// An axis-aligned box: one interval per attribute dimension. All boxes of
/// one stream have the same dimensionality (the stream's numeric-attribute
/// count).
using Box = std::vector<Interval>;

/// True if every dimension of `box` contains the matching coordinate.
/// `point` must have at least box.size() coordinates.
inline bool BoxContains(const Box& box, const double* point) {
  for (size_t d = 0; d < box.size(); ++d) {
    if (!box[d].Contains(point[d])) return false;
  }
  return true;
}

/// Per-dimension intersection; the result is empty if any dim is empty.
inline Box BoxIntersect(const Box& a, const Box& b) {
  Box out(a.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] = a[d].Intersect(b[d]);
  return out;
}

inline bool BoxEmpty(const Box& box) {
  for (const Interval& iv : box) {
    if (iv.empty()) return true;
  }
  return false;
}

inline double BoxVolume(const Box& box) {
  double v = 1.0;
  for (const Interval& iv : box) v *= iv.length();
  return BoxEmpty(box) ? 0.0 : v;
}

/// True if box `a` covers box `b` in every dimension.
inline bool BoxCovers(const Box& a, const Box& b) {
  if (BoxEmpty(b)) return true;
  for (size_t d = 0; d < a.size(); ++d) {
    if (!a[d].Covers(b[d])) return false;
  }
  return true;
}

}  // namespace dsps::interest

#endif  // DSPS_INTEREST_INTERVAL_H_
