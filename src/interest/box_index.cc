#include "interest/box_index.h"

#include <algorithm>

#include "common/check.h"

namespace dsps::interest {

BoxIndex::BoxIndex(const Box& domain) : BoxIndex(domain, Config()) {}

BoxIndex::BoxIndex(const Box& domain, const Config& config)
    : domain_(domain), config_(config) {
  DSPS_CHECK(config.cells_per_dim >= 1);
  DSPS_CHECK(config.index_dims >= 1 && config.index_dims <= 2);
  dims_indexed_ = std::min<int>(config.index_dims,
                                static_cast<int>(domain.size()));
  DSPS_CHECK_MSG(dims_indexed_ >= 1, "domain must have >= 1 dimension");
  size_t cells = 1;
  for (int d = 0; d < dims_indexed_; ++d) {
    cells *= static_cast<size_t>(config.cells_per_dim);
  }
  cells_.resize(cells);
}

int BoxIndex::CellOf(int dim, double v) const {
  const Interval& iv = domain_[dim];
  double len = iv.length();
  if (len <= 0) return 0;
  double frac = (v - iv.lo) / len;
  int cell = static_cast<int>(frac * config_.cells_per_dim);
  return std::clamp(cell, 0, config_.cells_per_dim - 1);
}

int BoxIndex::FlatIndex(const double* point) const {
  int idx = 0;
  for (int d = 0; d < dims_indexed_; ++d) {
    idx = idx * config_.cells_per_dim + CellOf(d, point[d]);
  }
  return idx;
}

void BoxIndex::Insert(int64_t subscriber, const Box& box) {
  DSPS_CHECK(box.size() == domain_.size());
  if (BoxEmpty(box)) return;
  boxes_of_[subscriber].push_back(box);
  ++total_boxes_;
  // Cell ranges per indexed dimension.
  int lo[2] = {0, 0}, hi[2] = {0, 0};
  for (int d = 0; d < dims_indexed_; ++d) {
    lo[d] = CellOf(d, box[d].lo);
    hi[d] = CellOf(d, box[d].hi);
  }
  if (dims_indexed_ == 1) {
    for (int x = lo[0]; x <= hi[0]; ++x) {
      cells_[x].push_back(Entry{subscriber, box});
    }
  } else {
    for (int x = lo[0]; x <= hi[0]; ++x) {
      for (int y = lo[1]; y <= hi[1]; ++y) {
        cells_[static_cast<size_t>(x) * config_.cells_per_dim + y].push_back(
            Entry{subscriber, box});
      }
    }
  }
}

void BoxIndex::Remove(int64_t subscriber) {
  auto it = boxes_of_.find(subscriber);
  if (it == boxes_of_.end()) return;
  total_boxes_ -= it->second.size();
  boxes_of_.erase(it);
  for (auto& cell : cells_) {
    cell.erase(std::remove_if(cell.begin(), cell.end(),
                              [subscriber](const Entry& e) {
                                return e.subscriber == subscriber;
                              }),
               cell.end());
  }
}

void BoxIndex::MatchOverlap(const Box& query, std::vector<int64_t>* out) const {
  DSPS_CHECK(query.size() == domain_.size());
  if (BoxEmpty(query)) return;
  size_t before = out->size();
  int lo[2] = {0, 0}, hi[2] = {0, 0};
  for (int d = 0; d < dims_indexed_; ++d) {
    lo[d] = CellOf(d, query[d].lo);
    hi[d] = CellOf(d, query[d].hi);
  }
  auto scan_cell = [&](const std::vector<Entry>& cell) {
    for (const Entry& e : cell) {
      bool overlaps = true;
      for (size_t d = 0; d < query.size(); ++d) {
        if (!e.box[d].Overlaps(query[d])) {
          overlaps = false;
          break;
        }
      }
      if (overlaps) out->push_back(e.subscriber);
    }
  };
  if (dims_indexed_ == 1) {
    for (int x = lo[0]; x <= hi[0]; ++x) scan_cell(cells_[x]);
  } else {
    for (int x = lo[0]; x <= hi[0]; ++x) {
      for (int y = lo[1]; y <= hi[1]; ++y) {
        scan_cell(cells_[static_cast<size_t>(x) * config_.cells_per_dim + y]);
      }
    }
  }
  // Dedupe (a box may register in several scanned cells, and a subscriber
  // may hold several overlapping boxes).
  std::sort(out->begin() + static_cast<long>(before), out->end());
  out->erase(std::unique(out->begin() + static_cast<long>(before), out->end()),
             out->end());
}

void BoxIndex::Match(const double* point, std::vector<int64_t>* out) const {
  size_t before = out->size();
  const std::vector<Entry>& cell = cells_[FlatIndex(point)];
  for (const Entry& e : cell) {
    if (BoxContains(e.box, point)) out->push_back(e.subscriber);
  }
  // Dedupe (a subscriber may have several boxes in the same cell).
  std::sort(out->begin() + static_cast<long>(before), out->end());
  out->erase(std::unique(out->begin() + static_cast<long>(before), out->end()),
             out->end());
}

}  // namespace dsps::interest
