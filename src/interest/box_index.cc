#include "interest/box_index.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>

#include "common/check.h"

namespace dsps::interest {

namespace {

/// DSPS_INDEX pins every auto-strategy index process-wide; read once.
IndexStrategy EnvIndexStrategy() {
  static const IndexStrategy strategy = [] {
    const char* v = std::getenv("DSPS_INDEX");
    if (v == nullptr) return IndexStrategy::kAuto;
    const std::string_view sv(v);
    if (sv == "grid") return IndexStrategy::kGrid;
    if (sv == "spline") return IndexStrategy::kSpline;
    return IndexStrategy::kAuto;
  }();
  return strategy;
}

}  // namespace

void IndexStats::MergeFrom(const IndexStats& other) {
  indexes += other.indexes;
  grid_indexes += other.grid_indexes;
  spline_indexes += other.spline_indexes;
  boxes += other.boxes;
  mem_bytes += other.mem_bytes;
  lookups += other.lookups;
  spline_lookups += other.spline_lookups;
  spline_fallbacks += other.spline_fallbacks;
  spline_rebuilds += other.spline_rebuilds;
  spline_knots += other.spline_knots;
  spline_buckets += other.spline_buckets;
  spline_max_error = std::max(spline_max_error, other.spline_max_error);
  declared_fallback_bound =
      std::max(declared_fallback_bound, other.declared_fallback_bound);
  build_us += other.build_us;
}

BoxIndex::BoxIndex(const Box& domain) : BoxIndex(domain, Config()) {}

BoxIndex::BoxIndex(const Box& domain, const Config& config)
    : domain_(domain), config_(config) {
  DSPS_CHECK(config.cells_per_dim >= 1);
  DSPS_CHECK(config.index_dims >= 1 && config.index_dims <= 2);
  DSPS_CHECK(config.spline_min_boxes >= 1);
  dims_indexed_ = std::min<int>(config.index_dims,
                                static_cast<int>(domain.size()));
  DSPS_CHECK_MSG(dims_indexed_ >= 1, "domain must have >= 1 dimension");
  resolved_ = config.strategy == IndexStrategy::kAuto ? EnvIndexStrategy()
                                                      : config.strategy;
  if (resolved_ == IndexStrategy::kSpline) {
    spline_mode_ = true;
    return;  // never allocates grid cells
  }
  size_t cells = 1;
  for (int d = 0; d < dims_indexed_; ++d) {
    cells *= static_cast<size_t>(config.cells_per_dim);
  }
  cells_.resize(cells);
}

int BoxIndex::CellOf(int dim, double v) const {
  const Interval& iv = domain_[dim];
  double len = iv.length();
  if (len <= 0) return 0;
  double frac = (v - iv.lo) / len;
  int cell = static_cast<int>(frac * config_.cells_per_dim);
  return std::clamp(cell, 0, config_.cells_per_dim - 1);
}

int BoxIndex::FlatIndex(const double* point) const {
  int idx = 0;
  for (int d = 0; d < dims_indexed_; ++d) {
    idx = idx * config_.cells_per_dim + CellOf(d, point[d]);
  }
  return idx;
}

void BoxIndex::Insert(int64_t subscriber, const Box& box) {
  DSPS_CHECK(box.size() == domain_.size());
  if (BoxEmpty(box)) return;
  boxes_of_[subscriber].push_back(box);
  ++total_boxes_;
  if (spline_mode_) {
    // Before the first build, boxes_of_ alone feeds the (lazy) build and
    // the linear fallback; a pending overlay would only duplicate it.
    if (spline_ != nullptr) {
      pending_.push_back(SplineIndex::Entry{subscriber, box});
    }
    return;
  }
  InsertGrid(subscriber, box);
  if (resolved_ == IndexStrategy::kAuto &&
      total_boxes_ >= static_cast<size_t>(config_.spline_min_boxes)) {
    SwitchToSpline();
  }
}

void BoxIndex::InsertGrid(int64_t subscriber, const Box& box) {
  // Cell ranges per indexed dimension.
  int lo[2] = {0, 0}, hi[2] = {0, 0};
  for (int d = 0; d < dims_indexed_; ++d) {
    lo[d] = CellOf(d, box[d].lo);
    hi[d] = CellOf(d, box[d].hi);
  }
  if (dims_indexed_ == 1) {
    for (int x = lo[0]; x <= hi[0]; ++x) {
      cells_[x].push_back(Entry{subscriber, box});
    }
  } else {
    for (int x = lo[0]; x <= hi[0]; ++x) {
      for (int y = lo[1]; y <= hi[1]; ++y) {
        cells_[static_cast<size_t>(x) * config_.cells_per_dim + y].push_back(
            Entry{subscriber, box});
      }
    }
  }
}

void BoxIndex::SwitchToSpline() {
  spline_mode_ = true;
  cells_.clear();
  cells_.shrink_to_fit();
  // The spline itself is built lazily at the next lookup from boxes_of_.
  spline_.reset();
  pending_.clear();
  erased_.clear();
}

void BoxIndex::Remove(int64_t subscriber) {
  auto it = boxes_of_.find(subscriber);
  if (it == boxes_of_.end()) return;
  if (spline_mode_) {
    if (spline_ != nullptr) {
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [subscriber](const SplineIndex::Entry& e) {
                                      return e.subscriber == subscriber;
                                    }),
                     pending_.end());
      erased_.insert(subscriber);
    }
  } else {
    // Revisit exactly the cells this subscriber's boxes registered in.
    std::vector<int> touched;
    for (const Box& box : it->second) {
      int lo[2] = {0, 0}, hi[2] = {0, 0};
      for (int d = 0; d < dims_indexed_; ++d) {
        lo[d] = CellOf(d, box[d].lo);
        hi[d] = CellOf(d, box[d].hi);
      }
      if (dims_indexed_ == 1) {
        for (int x = lo[0]; x <= hi[0]; ++x) touched.push_back(x);
      } else {
        for (int x = lo[0]; x <= hi[0]; ++x) {
          for (int y = lo[1]; y <= hi[1]; ++y) {
            touched.push_back(x * config_.cells_per_dim + y);
          }
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (int c : touched) {
      auto& cell = cells_[c];
      cell.erase(std::remove_if(cell.begin(), cell.end(),
                                [subscriber](const Entry& e) {
                                  return e.subscriber == subscriber;
                                }),
                 cell.end());
    }
  }
  total_boxes_ -= it->second.size();
  boxes_of_.erase(it);
}

void BoxIndex::MaybeRebuildSpline() const {
  if (spline_ == nullptr) {
    if (total_boxes_ >= kSplineBuildMin) RebuildSpline();
    return;
  }
  if (pending_.size() * 4 > spline_->size() ||
      erased_.size() * 4 > spline_->size()) {
    RebuildSpline();
  }
}

void BoxIndex::RebuildSpline() const {
  pending_.clear();
  pending_.shrink_to_fit();
  erased_.clear();
  if (total_boxes_ < kSplineBuildMin) {
    spline_.reset();  // back to the linear fallback
    return;
  }
  // Collect subscribers in ascending order: the hash map's iteration
  // order must never reach a data structure a lookup could observe.
  std::vector<int64_t> subs;
  subs.reserve(boxes_of_.size());
  for (const auto& kv : boxes_of_) subs.push_back(kv.first);
  std::sort(subs.begin(), subs.end());
  std::vector<SplineIndex::Entry> entries;
  entries.reserve(total_boxes_);
  for (int64_t sub : subs) {
    for (const Box& box : boxes_of_.at(sub)) {
      entries.push_back(SplineIndex::Entry{sub, box});
    }
  }
  const auto start = std::chrono::steady_clock::now();
  spline_ = std::make_unique<SplineIndex>(std::move(entries), config_.spline);
  build_us_ += std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  ++rebuilds_;
}

void BoxIndex::Match(const double* point, std::vector<int64_t>* out) const {
  ++lookups_;
  size_t before = out->size();
  if (spline_mode_) {
    MaybeRebuildSpline();
    if (spline_ == nullptr) {
      // Linear fallback below the build threshold.
      for (const auto& [sub, boxes] : boxes_of_) {
        for (const Box& box : boxes) {
          if (BoxContains(box, point)) out->push_back(sub);
        }
      }
    } else if (pending_.empty() && erased_.empty()) {
      spline_->Match(point, out);
    } else {
      spline_scratch_.clear();
      spline_->Match(point, &spline_scratch_);
      for (int64_t sub : spline_scratch_) {
        if (erased_.count(sub) == 0) out->push_back(sub);
      }
      for (const SplineIndex::Entry& e : pending_) {
        if (BoxContains(e.box, point)) out->push_back(e.subscriber);
      }
    }
  } else {
    const std::vector<Entry>& cell = cells_[FlatIndex(point)];
    for (const Entry& e : cell) {
      if (BoxContains(e.box, point)) out->push_back(e.subscriber);
    }
  }
  // Dedupe (a subscriber may have several boxes matching the point).
  std::sort(out->begin() + static_cast<long>(before), out->end());
  out->erase(std::unique(out->begin() + static_cast<long>(before), out->end()),
             out->end());
}

void BoxIndex::MatchOverlap(const Box& query, std::vector<int64_t>* out) const {
  DSPS_CHECK(query.size() == domain_.size());
  if (BoxEmpty(query)) return;
  ++lookups_;
  size_t before = out->size();
  auto overlaps_all = [&query](const Box& box) {
    for (size_t d = 0; d < query.size(); ++d) {
      if (!box[d].Overlaps(query[d])) return false;
    }
    return true;
  };
  if (spline_mode_) {
    MaybeRebuildSpline();
    if (spline_ == nullptr) {
      for (const auto& [sub, boxes] : boxes_of_) {
        for (const Box& box : boxes) {
          if (overlaps_all(box)) out->push_back(sub);
        }
      }
    } else if (pending_.empty() && erased_.empty()) {
      spline_->MatchOverlap(query, out);
    } else {
      spline_scratch_.clear();
      spline_->MatchOverlap(query, &spline_scratch_);
      for (int64_t sub : spline_scratch_) {
        if (erased_.count(sub) == 0) out->push_back(sub);
      }
      for (const SplineIndex::Entry& e : pending_) {
        if (overlaps_all(e.box)) out->push_back(e.subscriber);
      }
    }
  } else {
    int lo[2] = {0, 0}, hi[2] = {0, 0};
    for (int d = 0; d < dims_indexed_; ++d) {
      lo[d] = CellOf(d, query[d].lo);
      hi[d] = CellOf(d, query[d].hi);
    }
    auto scan_cell = [&](const std::vector<Entry>& cell) {
      for (const Entry& e : cell) {
        if (overlaps_all(e.box)) out->push_back(e.subscriber);
      }
    };
    if (dims_indexed_ == 1) {
      for (int x = lo[0]; x <= hi[0]; ++x) scan_cell(cells_[x]);
    } else {
      for (int x = lo[0]; x <= hi[0]; ++x) {
        for (int y = lo[1]; y <= hi[1]; ++y) {
          scan_cell(cells_[static_cast<size_t>(x) * config_.cells_per_dim + y]);
        }
      }
    }
  }
  // Dedupe (a box may register in several scanned cells/buckets, and a
  // subscriber may hold several overlapping boxes).
  std::sort(out->begin() + static_cast<long>(before), out->end());
  out->erase(std::unique(out->begin() + static_cast<long>(before), out->end()),
             out->end());
}

void BoxIndex::AddStatsTo(IndexStats* stats) const {
  ++stats->indexes;
  stats->boxes += static_cast<int64_t>(total_boxes_);
  stats->lookups += lookups_;
  // Structure size from element counts, not capacities: deterministic
  // across runs so bench baselines can pin it exactly.
  const auto dims = static_cast<int64_t>(domain_.size());
  int64_t mem = 0;
  for (const auto& [sub, boxes] : boxes_of_) {
    mem += static_cast<int64_t>(sizeof(sub) + sizeof(boxes)) +
           static_cast<int64_t>(boxes.size()) *
               (static_cast<int64_t>(sizeof(Box)) +
                dims * static_cast<int64_t>(sizeof(Interval)));
  }
  if (spline_mode_) {
    ++stats->spline_indexes;
    stats->spline_rebuilds += rebuilds_;
    stats->build_us += build_us_;
    stats->declared_fallback_bound = std::max(
        stats->declared_fallback_bound, config_.spline.declared_fallback_bound);
    if (spline_ != nullptr) {
      stats->spline_lookups += static_cast<int64_t>(spline_->lookups());
      stats->spline_fallbacks +=
          static_cast<int64_t>(spline_->fallback_lookups());
      stats->spline_knots += static_cast<int64_t>(spline_->knot_count());
      stats->spline_buckets += static_cast<int64_t>(spline_->bucket_count());
      stats->spline_max_error =
          std::max(stats->spline_max_error,
                   static_cast<int64_t>(spline_->max_error()));
      mem += static_cast<int64_t>(spline_->mem_bytes());
    }
    mem += static_cast<int64_t>(pending_.size()) *
           (static_cast<int64_t>(sizeof(SplineIndex::Entry)) +
            dims * static_cast<int64_t>(sizeof(Interval)));
    mem += static_cast<int64_t>(erased_.size()) *
           static_cast<int64_t>(sizeof(int64_t));
  } else {
    ++stats->grid_indexes;
    for (const auto& cell : cells_) {
      mem += static_cast<int64_t>(cell.size()) *
             (static_cast<int64_t>(sizeof(Entry)) +
              dims * static_cast<int64_t>(sizeof(Interval)));
    }
  }
  stats->mem_bytes += mem;
}

}  // namespace dsps::interest
