#include "system/query_state.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace dsps::system {

uint32_t QueryStateTable::SlotOf(common::QueryId id) const {
  auto it = slot_.find(id);
  DSPS_CHECK_MSG(it != slot_.end(), "query %lld not placed",
                 static_cast<long long>(id));
  return it->second;
}

void QueryStateTable::Insert(const engine::Query& query,
                             common::EntityId entity) {
  DSPS_CHECK(entity >= 0 && static_cast<size_t>(entity) < members_.size());
  // Extends the cached member load sum only when the new id lands at the
  // END of the (ascending) member list: appending the fold's final term
  // is the one mutation that keeps the cached value bit-identical to a
  // fresh walk. Everything else invalidates.
  auto add_member = [this](common::EntityId e, common::QueryId id,
                           double load) {
    std::vector<common::QueryId>& members = members_[e];
    auto pos = std::lower_bound(members.begin(), members.end(), id);
    if (pos == members.end()) {
      if (member_sum_[e].valid) member_sum_[e].sum += load;
    } else {
      member_sum_[e].valid = false;
    }
    members.insert(pos, id);
  };
  auto it = slot_.find(query.id);
  if (it != slot_.end()) {
    // Re-home in place: move between member lists, refresh the record.
    uint32_t slot = it->second;
    common::EntityId old_home = home_[slot];
    if (old_home != entity) {
      std::vector<common::QueryId>& old_members = members_[old_home];
      old_members.erase(std::lower_bound(old_members.begin(),
                                         old_members.end(), query.id));
      member_sum_[old_home].valid = false;
      add_member(entity, query.id, query.load);
      home_[slot] = entity;
    } else if (load_[slot] != query.load) {
      member_sum_[entity].valid = false;
    }
    load_[slot] = query.load;
    tenant_[slot] = query.tenant;
    queries_[slot] = query;
    return;
  }
  uint32_t slot = static_cast<uint32_t>(ids_.size());
  slot_.emplace(query.id, slot);
  ids_.push_back(query.id);
  home_.push_back(entity);
  load_.push_back(query.load);
  tenant_.push_back(query.tenant);
  queries_.push_back(query);
  add_member(entity, query.id, query.load);
}

bool QueryStateTable::Erase(common::QueryId id) {
  auto it = slot_.find(id);
  if (it == slot_.end()) return false;
  uint32_t slot = it->second;
  std::vector<common::QueryId>& members = members_[home_[slot]];
  members.erase(std::lower_bound(members.begin(), members.end(), id));
  // Un-summing a term is not FP-associative; recompute on next demand.
  member_sum_[home_[slot]].valid = false;
  slot_.erase(it);
  uint32_t last = static_cast<uint32_t>(ids_.size()) - 1;
  if (slot != last) {
    ids_[slot] = ids_[last];
    home_[slot] = home_[last];
    load_[slot] = load_[last];
    tenant_[slot] = tenant_[last];
    queries_[slot] = std::move(queries_[last]);
    slot_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  home_.pop_back();
  load_.pop_back();
  tenant_.pop_back();
  queries_.pop_back();
  return true;
}

double QueryStateTable::MemberLoadSum(common::EntityId entity) const {
  MemberSum& cache = member_sum_[entity];
  if (!cache.valid) {
    double sum = 0.0;
    for (common::QueryId id : members_[entity]) {
      sum += load_[SlotOf(id)];
    }
    cache.sum = sum;
    cache.valid = true;
  }
  return cache.sum;
}

std::vector<common::QueryId> QueryStateTable::SortedIds() const {
  std::vector<common::QueryId> out = ids_;
  std::sort(out.begin(), out.end());
  return out;
}

common::Status QueryStateTable::CheckConsistent() const {
  auto violation = [](const std::string& what) {
    return common::Status::Internal("query_state: " + what);
  };
  if (slot_.size() != ids_.size() || home_.size() != ids_.size() ||
      load_.size() != ids_.size() || tenant_.size() != ids_.size() ||
      queries_.size() != ids_.size()) {
    return violation("parallel array sizes disagree");
  }
  for (const auto& [id, slot] : slot_) {
    if (slot >= ids_.size() || ids_[slot] != id) {
      return violation("slot map points at the wrong record");
    }
    if (queries_[slot].id != id) {
      return violation("query record id disagrees with its slot");
    }
    if (load_[slot] != queries_[slot].load ||
        tenant_[slot] != queries_[slot].tenant) {
      return violation("SoA hot fields drifted from the query record");
    }
  }
  size_t member_total = 0;
  for (size_t e = 0; e < members_.size(); ++e) {
    const std::vector<common::QueryId>& members = members_[e];
    member_total += members.size();
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0 && members[i - 1] >= members[i]) {
        return violation("member list unsorted at entity " +
                         std::to_string(e));
      }
      auto it = slot_.find(members[i]);
      if (it == slot_.end() ||
          home_[it->second] != static_cast<common::EntityId>(e)) {
        return violation("member list disagrees with home array at entity " +
                         std::to_string(e));
      }
    }
  }
  if (member_total != ids_.size()) {
    return violation("member lists cover the wrong number of queries");
  }
  return common::Status::OK();
}

}  // namespace dsps::system
