#ifndef DSPS_SYSTEM_SYSTEM_H_
#define DSPS_SYSTEM_SYSTEM_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "coordinator/coordinator_tree.h"
#include "coordinator/heartbeat_monitor.h"
#include "dissemination/disseminator.h"
#include "engine/engine.h"
#include "entity/entity.h"
#include "interest/measure.h"
#include "partition/graph_index.h"
#include "partition/partitioner.h"
#include "partition/repartitioner.h"
#include "placement/placement.h"
#include "placement/placement_map.h"
#include "sim/fault_injector.h"
#include "sim/topology.h"
#include "system/auditor.h"
#include "system/metrics.h"
#include "system/query_state.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"
#include "tenant/admission.h"
#include "tenant/elasticity.h"
#include "tenant/tenant.h"
#include "workload/stream_gen.h"

namespace dsps::system {

/// Message type for entity->client result delivery.
inline constexpr int kMsgClientResult = 401;
/// Client->entity ack of a reliable kMsgClientResult.
inline constexpr int kMsgClientResultAck = 402;
/// Entity gateway -> failure monitor liveness beacon.
inline constexpr int kMsgHeartbeat = 403;
/// Control plane -> survivor gateway: batch of orphaned queries to
/// re-install (declustered parallel recovery).
inline constexpr int kMsgRehomeBatch = 404;
/// Survivor gateway -> control plane ack of a kMsgRehomeBatch.
inline constexpr int kMsgRehomeAck = 405;

/// Payload of kMsgClientResult.
struct ClientResultEnvelope {
  double result_timestamp = 0.0;
  common::QueryId query = common::kInvalidQuery;
  /// Reliable-mode sequence number (0 = fire-and-forget).
  int64_t seq = 0;
};

/// Payload of kMsgClientResultAck.
struct ClientResultAckEnvelope {
  int64_t seq = 0;
};

/// Payload of kMsgHeartbeat.
struct HeartbeatEnvelope {
  common::EntityId entity = common::kInvalidEntity;
};

/// Payload of kMsgRehomeBatch.
struct RehomeBatchEnvelope {
  common::EntityId target = common::kInvalidEntity;
  std::vector<common::QueryId> queries;
  /// Reliable sequence number (batches are acked, retried, deduplicated).
  int64_t seq = 0;
};

/// Payload of kMsgRehomeAck.
struct RehomeAckEnvelope {
  int64_t seq = 0;
};

/// Knobs of System::EnableWatchdog's standard detector set (namespace
/// scope so it can be a default argument inside System's definition).
struct SystemWatchdogConfig {
  /// Retry storm: combined result / re-home-batch / dissemination
  /// retries per simulated second that count as a storm.
  double retry_storm_rate_per_s = 50.0;
  /// Repartition thrash: repartition rounds per simulated second.
  double repartition_thrash_rate_per_s = 1.0;
  /// Admission-queue growth: depth the queue must reach (while strictly
  /// growing) before buildup counts.
  double admission_queue_floor = 4.0;
  /// SLO burn: trailing-window p95 / SLO ratio held for `tuning.sustain`
  /// ticks that counts as burn.
  double slo_burn_ratio = 1.0;
  /// Shared per-detector tuning (window, warmup, cooldown, sustain...).
  telemetry::WatchdogTuning tuning;
};

/// How arriving queries are allocated to entities (Section 3.2).
enum class AllocationMode {
  /// Level-by-level routing down the hierarchical coordinator tree
  /// (Section 3.2.1) — scalable to fast query streams.
  kCoordinatorTree,
  /// Coordinator-tree routing that additionally steers by coarse subtree
  /// interest summaries, so overlapping queries co-locate (Section 3.2.2's
  /// goal at 3.2.1's cost).
  kCoordinatorInterest,
  /// Batch weighted graph partitioning (Section 3.2.2) — interest-aware.
  kGraphPartition,
  /// Round-robin baseline (no load or interest awareness).
  kRoundRobin,
  /// DAOS-style algorithmic placement (placement/placement_map.h): a
  /// multi-ring consistent hash over fault domains gives every query an
  /// O(1) stateless primary plus k warm-standby replica targets that
  /// straddle domains; on failure, orphans fan out to their precomputed
  /// standbys in parallel per-survivor batches instead of the serial
  /// re-home queue.
  kPlacementMap,
  /// Isolated regime (Table 1): each query sticks to the entity its client
  /// happens to use — Zipf-skewed random, no load sharing at all.
  kIsolatedZipf,
};

/// The full two-layer system of the paper: stream sources, a WAN of
/// entities (each a LAN cluster of processors), per-source dissemination
/// trees with early filtering, a coordinator tree or graph partitioner
/// for query distribution, and the intra-entity runtime (delegation,
/// placement, PR accounting). Everything runs on one deterministic
/// discrete-event simulation.
class System {
 public:
  struct Config {
    sim::TopologyConfig topology;
    coordinator::CoordinatorTree::Config coordinator;
    dissemination::Disseminator::Config dissemination;
    entity::Entity::Config entity;
    AllocationMode allocation = AllocationMode::kCoordinatorTree;
    /// Balance tolerance for graph-partition allocation.
    double balance_tolerance = 1.2;
    /// Admission control: when positive, InstallOn rejects a query whose
    /// declared load — added to the entity's committed CPU load and the
    /// declared loads of its resident queries — would exceed this factor
    /// times its total processor capacity (ResourceExhausted — the query
    /// is reported, never silently dropped). 0 disables it (the seed
    /// behavior: entities over-commit freely).
    double admission_load_factor = 0.0;
    /// Engine family per entity: "basic", "batch", or "mixed" (entities
    /// alternate — the heterogeneity the loose coupling must tolerate).
    const char* engine_family = "mixed";
    /// When positive, models the paper's clients: each query belongs to a
    /// client at a WAN position; results are shipped from the hosting
    /// entity's gateway to the client and client-perceived latency is
    /// recorded (SystemMetrics::client_latency).
    int num_clients = 0;
    /// Where the coordinator anchors a query geographically: near its
    /// data (the primary stream's source) or near its client. The tension
    /// between the two is experiment E9.
    enum class QueryAnchor { kSource, kClient };
    QueryAnchor query_anchor = QueryAnchor::kSource;
    uint64_t seed = 1;
    /// Optional telemetry, threaded through every layer (network counters,
    /// dissemination per-node counters, coordinator events, processor
    /// utilization, causal per-tuple trace spans). Both default to null:
    /// telemetry off, zero overhead, and — because instrumentation never
    /// sends messages or consumes randomness — identical simulations
    /// either way. Must outlive the System.
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::TraceLog* trace = nullptr;
    /// Optional post-mortem flight recorder (telemetry/flight_recorder.h):
    /// receives every trace span and instant (via TraceLog forwarding),
    /// network drop events, auditor violation summaries, and watchdog
    /// anomalies; auto-dumped to its dump_path on the first auditor
    /// violation or failed fatal check. Read-only with respect to the
    /// simulation. Must outlive the System.
    telemetry::FlightRecorder* flight = nullptr;
    /// Bounded result statistics: result latency / PR / client latency
    /// (and per-entity PR, per-tenant latency) go into mergeable quantile
    /// sketches built from `stats_sketch` instead of the exact
    /// sample-storing histograms — O(buckets) memory at metro scale
    /// instead of 8 bytes per result. Off by default (exact histograms,
    /// bit-identical to the seed behavior).
    bool bounded_stats = false;
    telemetry::Sketch::Config stats_sketch;
    /// Also export per-directed-link net.link.* counters (high
    /// cardinality; off by default even when `metrics` is set).
    bool per_link_metrics = false;
    /// Deterministic fault injection. When set the System owns a
    /// sim::FaultInjector (seeded from `faults.seed`) attached to its
    /// network; fault_injector() exposes it for scenario scripting
    /// (partitions, per-link loss) and ScheduleCrash drives entity crash
    /// windows through it. Off by default: no injector is attached, the
    /// network takes no fault RNG draws, and the simulation is
    /// bit-identical to a build without the fault layer.
    bool inject_faults = false;
    sim::FaultInjector::Config faults;
    /// Reliable client-result delivery: results carry sequence numbers,
    /// clients ack them, unacked results are retried with bounded
    /// exponential backoff, and clients suppress duplicates — so each
    /// query result reaches its client exactly once under loss. Off by
    /// default (no acks, no timers, bit-identical traffic).
    bool reliable_results = false;
    double result_retry_timeout_s = 0.05;
    double result_retry_backoff = 2.0;
    int result_max_retries = 4;
    /// Declustered placement (only read when allocation ==
    /// AllocationMode::kPlacementMap): ring/replica parameters of the
    /// placement map built over the topology's fault domains.
    placement::PlacementMap::Config placement_map;
    /// Crash-recovery pipeline parameters (placement-map mode only; the
    /// other allocation modes keep the synchronous re-home of PR 3).
    struct RecoveryConfig {
      /// true: orphans fan out to their standby targets in parallel
      /// per-survivor batches over the network (each survivor installs
      /// its batch serially; survivors work concurrently). false: one
      /// global serial re-home chain — the old single-queue behavior,
      /// but costed in simulated time so the two are comparable.
      bool parallel = true;
      /// Simulated per-query re-install time at the receiving entity
      /// (state re-initialization; queries of one batch serialize).
      double install_latency_s = 0.02;
      /// Wire size of one batch: 64 header bytes + this per query.
      int64_t batch_bytes_per_query = 96;
      /// Reliable batch delivery: unacked batches are retried with
      /// bounded exponential backoff and deduplicated by sequence
      /// number; exhausted retries leave the queries in the unplaced
      /// queue for the maintenance retry path — never lost.
      double retry_timeout_s = 0.05;
      double retry_backoff = 2.0;
      int max_retries = 4;
    };
    RecoveryConfig recovery;
    /// Multi-tenant admission control (src/tenant/). Registering one or
    /// more tenant specs activates the AdmissionController: submissions
    /// are arbitrated per tenant (admit / queue with bounded wait /
    /// degrade to a coarser interest box / reject) under `admission`'s
    /// knobs, with `admission.load_factor` taking over the scalar
    /// admission_load_factor's role. Left empty (the default), everything
    /// runs as the single implicit tenant: no controller is allocated, no
    /// RNG is drawn, no node is created — simulations are bit-identical
    /// to a tenant-free build.
    std::vector<tenant::TenantSpec> tenants;
    tenant::AdmissionController::Config admission;
  };

  explicit System(const Config& config);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Registers stream generators (their streams enter the catalog, their
  /// sources join the dissemination layer). Call before SubmitQuery.
  void AddStreams(std::vector<std::unique_ptr<workload::StreamGen>> gens);

  /// Admits one query: allocates it to an entity (per the allocation
  /// mode), installs it there, and updates the entity's dissemination
  /// interest.
  common::Status SubmitQuery(const engine::Query& query);

  /// Admits a batch at once. Under kGraphPartition the whole batch is
  /// partitioned jointly; other modes submit one by one.
  common::Status SubmitBatch(const std::vector<engine::Query>& queries);

  /// Outcome tally of a batched submission (SubmitQueries). Unlike
  /// SubmitBatch, a refusal does not abort the batch: every query gets
  /// its verdict, and `first_error` carries the first non-OK status for
  /// diagnostics.
  struct BatchSubmitResult {
    int64_t admitted = 0;
    /// Capacity refusals (ResourceExhausted) — expected under admission
    /// control, counted separately from hard failures.
    int64_t rejected = 0;
    int64_t failed = 0;
    common::Status first_error = common::Status::OK();
  };

  /// Batched install path: admits `queries` in order, deferring the
  /// incremental query-graph deltas into one bulk pass at the end (the
  /// materialized graph is order-independent, so this is observably
  /// identical to per-query submission). When no admission controller or
  /// placement map is active and allocation is routing-history-only
  /// (coordinator tree / round-robin / zipf), the batch is additionally
  /// routed up front and installed grouped by target entity — the
  /// coordinator descent and the per-entity admission state stay
  /// cache-warm across the group, which is what turns the metro-scale
  /// install storm from O(batch · members) into O(batch). Outcomes are
  /// identical to the serial loop: routing is install-independent in
  /// those modes, and the grouping is a stable sort, so each entity sees
  /// its installs in the original submission order.
  BatchSubmitResult SubmitQueries(std::span<const engine::Query> queries);

  /// Cumulative wall-clock profile of the install path (SubmitQuery /
  /// SubmitQueries), for the install-storm benchmarks.
  struct InstallProfile {
    int64_t installs = 0;      ///< InstallOn attempts (incl. refusals)
    double route_us = 0.0;     ///< allocation / coordinator descent
    double install_us = 0.0;   ///< admission gate + entity install
    double interest_us = 0.0;  ///< interest merge + (re)publication
    double graph_us = 0.0;     ///< query-graph deltas (incl. deferred)
  };
  const InstallProfile& install_profile() const { return install_profile_; }

  /// Aggregated BoxIndex statistics over every interest index the system
  /// owns: the per-node dissemination routing caches, the incremental
  /// query-graph inverted indexes, and the per-entity stream-matching
  /// indexes. Exported as the index.* series in bench JSON and read by
  /// tools/dsps_doctor.
  interest::IndexStats IndexStatsSnapshot() const;

  /// Schedules source emissions for `duration_s` of simulated time
  /// starting now (each stream at its catalog rate).
  void GenerateTraffic(double duration_s);

  /// Runs the simulation until simulated time `t`.
  void RunUntil(double t);

  /// Simulated now.
  double now() const;

  /// Gathers all metrics accumulated so far.
  SystemMetrics Collect() const;

  const interest::StreamCatalog& catalog() const { return catalog_; }
  entity::Entity* entity_at(int index) { return entities_[index].get(); }
  int num_entities() const { return static_cast<int>(entities_.size()); }
  sim::Network* network() { return network_.get(); }
  dissemination::Disseminator* disseminator() { return disseminator_.get(); }
  coordinator::CoordinatorTree* coordinator_tree() {
    return coordinator_.get();
  }

  /// Which entity hosts `query` (kInvalidEntity if unknown).
  common::EntityId EntityOf(common::QueryId query) const;

  /// Withdraws a query: uninstalls it from its entity and recomputes the
  /// entity's aggregated dissemination interest from its remaining
  /// queries (so ancestors stop forwarding data nobody wants).
  common::Status RemoveQuery(common::QueryId query);

  /// Simulates the oracle failure (or graceful departure) of an entity:
  /// it leaves the coordinator tree and every dissemination tree, and its
  /// queries are re-allocated to the surviving entities — the
  /// loose-coupling payoff: nothing else changes. Returns the number of
  /// queries re-homed; queries whose re-home failed are kept in the
  /// unplaced queue (see UnplacedQueries) and counted, never silently
  /// dropped. For failures *detected* rather than announced, see
  /// EnableFailureDetection.
  common::Result<int> FailEntity(common::EntityId entity);

  bool IsAlive(common::EntityId entity) const;
  int num_alive() const;

  /// The fault injector (null unless Config::inject_faults). Use it to
  /// script partitions and per-link loss on top of the config-level fault
  /// model.
  sim::FaultInjector* fault_injector() { return faults_.get(); }

  /// Schedules a crash window for `entity` (requires inject_faults): at
  /// `crash_at` every node of the entity goes down — messages to and from
  /// it, heartbeats included, are dropped and counted; at `recover_at`
  /// the nodes come back and, if the entity was evicted by failure
  /// detection meanwhile, it re-joins the federation empty (its queries
  /// were re-homed). The crash is only *detected* — and its queries only
  /// re-homed — if failure detection is enabled.
  void ScheduleCrash(common::EntityId entity, double crash_at,
                     double recover_at);

  /// Schedules a *correlated* crash window (requires inject_faults): every
  /// entity in fault domain `domain` (see TopologyConfig::num_fault_domains)
  /// crashes at `crash_at` in one event and recovers at `recover_at` — the
  /// rack/site failure the declustered placement map is built to survive.
  void ScheduleDomainCrash(int domain, double crash_at, double recover_at);

  /// Entities assigned to fault domain `domain` by the topology.
  std::vector<common::EntityId> EntitiesInDomain(int domain) const;

  /// The declustered placement map (null unless allocation ==
  /// AllocationMode::kPlacementMap). Exposed for tests and the auditor.
  const placement::PlacementMap* placement_map() const {
    return placement_map_.get();
  }

  /// Real heartbeat-driven failure detection (Section 3.2.1): every
  /// heartbeat_period_s each non-departed entity's gateway sends a
  /// heartbeat *message over the simulated network* to a monitor node;
  /// every sweep_period_s the System sweeps its HeartbeatMonitor and runs
  /// the FailEntity repair path on every suspect — detection latency,
  /// repair messages, and re-home outcomes are recorded in
  /// failure_stats(). False positives self-heal: an evicted entity whose
  /// heartbeats get through again is re-admitted.
  struct FailureDetectionConfig {
    double heartbeat_period_s = 0.5;
    /// An entity is suspected after this long without a heartbeat.
    double timeout_s = 1.5;
    double sweep_period_s = 0.5;
    int64_t heartbeat_bytes = 32;
  };
  void EnableFailureDetection(const FailureDetectionConfig& config,
                              double until);

  /// Cumulative failure-detection / recovery accounting.
  struct FailureStats {
    /// Sweep-triggered evictions (crashes detected + false positives).
    int detections = 0;
    /// Evictions of entities that were actually up (suspected on lost
    /// heartbeats alone).
    int false_positive_evictions = 0;
    /// Entities re-admitted after recovery or a false positive.
    int readmissions = 0;
    /// Suspects spared because they were the last alive entity.
    int skipped_last_alive = 0;
    /// Orphaned queries successfully re-homed by any eviction path.
    int queries_rehomed = 0;
    /// Heartbeat messages sent (the standing cost of detection).
    int64_t heartbeat_messages = 0;
    /// Coordinator protocol messages spent on Leave/Join repairs.
    int64_t repair_messages = 0;
    /// Declustered recovery (placement-map mode): re-home batches sent to
    /// survivors, their retransmissions, and batches cancelled because
    /// their target died before acking (queries stay unplaced, retried).
    int64_t rehome_batches = 0;
    int64_t rehome_batch_retries = 0;
    int64_t rehome_batches_cancelled = 0;
    /// Crash-to-sweep delay of every detected (real) crash.
    common::Histogram detection_latency;
  };
  const FailureStats& failure_stats() const { return failure_stats_; }

  /// The failure monitor's network node (kInvalidSimNode until
  /// EnableFailureDetection ran). Exposed so fault scenarios can target
  /// the heartbeat path itself (partitions, loss).
  common::SimNodeId monitor_node() const { return monitor_node_; }

  /// Network node of client `index` (requires Config::num_clients >
  /// index). Exposed so fault scenarios can target the result path.
  common::SimNodeId client_node(int index) const {
    return client_nodes_[index];
  }

  /// Queries currently without a home because re-home or admission
  /// failed. They stay queued: TryRehomeUnplaced retries them (also
  /// called automatically on entity re-admission and every maintenance
  /// round) and Collect reports them — a failed placement is never a
  /// silent loss.
  std::vector<common::QueryId> UnplacedQueries() const;
  int unplaced_count() const { return static_cast<int>(unplaced_.size()); }
  /// Attempts to re-submit every unplaced query; returns how many landed.
  int TryRehomeUnplaced();

  /// Reliable client-result delivery statistics (zero unless
  /// Config::reliable_results).
  int64_t result_retries() const { return result_retries_; }
  int64_t result_delivery_failures() const {
    return result_delivery_failures_;
  }
  /// Pending result retries cancelled because their sending entity was
  /// evicted (the process is gone; its timers must not run to
  /// max_retries against a client that already saw the failure).
  int64_t result_retries_cancelled() const {
    return result_retries_cancelled_;
  }

  /// Moves a live query to another entity. Because entities may run
  /// different engines, operator state cannot cross the boundary (the
  /// paper's Section 3 argument): the move is a query-level reinstall —
  /// window state restarts on the new entity.
  common::Status MigrateQuery(common::QueryId query, common::EntityId to);

  /// One round of runtime adaptive repartitioning (Section 3.2.2): builds
  /// the live query graph from the installed queries, lets `repartitioner`
  /// adapt the current assignment, and executes the resulting migrations.
  struct RepartitionReport {
    int migrations = 0;
    double edge_cut = 0.0;
    double imbalance = 1.0;
    double decision_seconds = 0.0;
  };
  common::Result<RepartitionReport> RepartitionQueries(
      partition::Repartitioner* repartitioner);

  /// Starts periodic self-maintenance at the given cadence: coordinator
  /// re-centering (rule 5), dissemination-tree reorganization rounds, and
  /// intra-entity placement rebalancing. Runs until `until` (simulated).
  void EnableMaintenance(double period_s, double until);

  /// Cumulative maintenance actions (for experiments).
  struct MaintenanceStats {
    int rounds = 0;
    int tree_moves = 0;
    int fragment_moves = 0;
    int coordinator_messages = 0;
  };
  const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }

  /// Starts the periodic invariant auditor (see system/auditor.h): one
  /// full sweep every `period_s` simulated seconds until `until`. The
  /// sweeps are read-only observers — enabling them cannot change a
  /// simulation's results. Returns the auditor (owned by the System) so
  /// callers can read violation counts and write the JSON report;
  /// repeated calls reuse the existing auditor. `fatal` aborts on the
  /// first violation (defaults on in debug builds).
  Auditor* EnableAudit(double period_s, double until,
                       bool fatal = Auditor::Config().fatal);

  /// The auditor, or null before EnableAudit.
  Auditor* auditor() { return auditor_.get(); }

  /// Starts the online anomaly watchdog (telemetry/watchdog.h): every
  /// `period_s` simulated seconds until `until` its detectors sweep the
  /// control plane for entity loss, retry storms, repartition thrash,
  /// admission-queue buildup, per-tenant SLO burn, and load spikes.
  /// Like the auditor, the sweeps are read-only, consume no RNG, and
  /// send no messages — enabling them cannot change a simulation's
  /// results. Returns the watchdog (owned by the System) so callers can
  /// read trigger counts; repeated calls reuse the existing watchdog.
  telemetry::Watchdog* EnableWatchdog(
      double period_s, double until,
      const SystemWatchdogConfig& config = {});

  /// The watchdog, or null before EnableWatchdog.
  telemetry::Watchdog* watchdog() { return watchdog_.get(); }

  /// Registers this system's adaptation-trajectory probes on `recorder`:
  /// per-entity committed load, load imbalance, WAN bytes/s, unplaced
  /// queue depth, alive entities, detection latency, repair messages/s,
  /// and results/s. The recorder must outlive the System's sampling.
  void RegisterSeriesProbes(telemetry::TimeSeriesRecorder* recorder);

  /// RegisterSeriesProbes + one immediate sample + periodic sampling every
  /// `period_s` simulated seconds until `until`. Sampling is read-only:
  /// it consumes no RNG and sends no messages, so enabling it cannot
  /// perturb the simulation.
  void EnableTimeSeries(telemetry::TimeSeriesRecorder* recorder,
                        double period_s, double until);

  /// The admission controller (null unless Config::tenants is non-empty).
  const tenant::AdmissionController* admission() const {
    return admission_.get();
  }
  /// The tenant registry (null unless Config::tenants is non-empty).
  const tenant::TenantRegistry* tenant_registry() const {
    return tenant_registry_.get();
  }
  /// Pending (queued) submissions awaiting capacity, ascending query id.
  std::vector<common::QueryId> QueuedAdmissions() const;
  /// Retries queued submissions in weighted-fair order (lightest
  /// normalized standing load first, FIFO within a tenant); runs
  /// automatically whenever capacity is released (query withdrawal,
  /// entity re-admission, elastic growth, maintenance rounds). Returns
  /// how many landed.
  int DrainAdmissionQueue();

  /// Per-tenant result-latency accounting (only populated while the
  /// admission controller is active).
  int64_t TenantResults(tenant::TenantId tenant) const;
  /// Latency histogram over all of the tenant's results so far (null if
  /// none yet; empty in bounded_stats mode — see TenantLatencySketch).
  const common::Histogram* TenantLatency(tenant::TenantId tenant) const;
  /// Sketch over all of the tenant's result latencies (bounded_stats
  /// mode; null if the tenant has no results yet).
  const telemetry::Sketch* TenantLatencySketch(tenant::TenantId tenant) const;
  /// p95 latency over the trailing admission.slo_window_s window (0 when
  /// no recent results).
  double TenantRecentP95(tenant::TenantId tenant) const;
  /// Fraction of the tenant's results within its latency SLO (1 when the
  /// tenant has no SLO or no results yet).
  double TenantSloAttainment(tenant::TenantId tenant) const;

  /// Elastic per-entity capacity: every `period_s` the ElasticityManager
  /// observes each alive entity (committed load vs capacity, result-PR
  /// p95 — the Section 4.1 PR_k accounting) and the System executes its
  /// grow/shrink decisions by adding/retiring intra-entity processors.
  /// Entity-level structures (placement-map standbys included) key on
  /// entity ids, so they stay valid across capacity changes. Runs until
  /// `until` (simulated).
  void EnableElasticity(const tenant::ElasticityManager::Config& config,
                        double period_s, double until);
  struct ElasticityStats {
    int grow_events = 0;
    int shrink_events = 0;
    int processors_added = 0;
    int processors_removed = 0;
  };
  const ElasticityStats& elasticity_stats() const {
    return elasticity_stats_;
  }
  /// One immediate elasticity evaluation round (also used internally by
  /// the periodic tick). Returns grow+shrink actions taken.
  int ElasticityRound();

 private:
  friend class Auditor;
  common::Status InstallOn(common::EntityId entity, const engine::Query& query);
  /// The pre-tenant submission path: client assignment, allocation, and
  /// InstallOn (with placement-map standby walk). Tenant admission wraps
  /// this for new submissions; internal re-homes call it directly.
  common::Status SubmitDirect(const engine::Query& query);
  /// Weighted-fair arbitration of a brand-new submission (controller
  /// active, query not yet on the ledger).
  common::Status SubmitTenantQuery(const engine::Query& query);
  void EnqueueAdmission(const engine::Query& query);
  /// Bounded-wait expiry of a queued submission: one last install try
  /// (full fidelity, then degraded), else eviction from the queue.
  void OnAdmissionDeadline(common::QueryId query);
  /// Per-tenant result-latency accounting (admission controller active).
  void RecordTenantResult(common::QueryId query, double latency);
  void ElasticityTick(double period_s, double until);
  bool GrowEntity(common::EntityId entity);
  bool ShrinkEntity(common::EntityId entity);
  common::EntityId AllocateOne(const engine::Query& query);
  void ScheduleEmission(size_t stream_index, double end_time);
  entity::Entity::EngineFactory MakeEngineFactory(int entity_index) const;
  /// Installs the combined gateway dispatcher (system acks -> entity ->
  /// dissemination) on the entity's gateway node.
  void InstallGatewayDispatcher(common::EntityId entity);
  /// Consumes system-level messages (client-result acks). True if eaten.
  bool HandleSystemMessage(const sim::Message& msg);
  /// Shared eviction path of FailEntity and sweep detection: leaves the
  /// federation structures, purges the entity, re-homes its queries
  /// (failures go to unplaced_). Returns the number re-homed.
  int EvictEntity(common::EntityId entity);
  /// Re-admits a recovered or falsely-suspected entity (empty).
  void ReadmitEntity(common::EntityId entity);
  /// A heartbeat from `entity` reached the monitor node.
  void OnHeartbeat(common::EntityId entity);
  /// Sweep-detected suspect: record detection, evict, re-home.
  void HandleSuspect(common::EntityId entity);
  void HeartbeatTick(double until);
  void SweepTick(double until);
  void AuditTick(double period_s, double until);
  void WatchdogTick(double period_s, double until);
  void SampleTick(telemetry::TimeSeriesRecorder* recorder, double period_s,
                  double until);
  void ScheduleResultRetry(int64_t seq, double timeout_s);
  /// Declustered recovery pipeline (placement-map mode). Orphans are
  /// already in unplaced_ when these run; DispatchDeclusteredRehomes
  /// groups them by first alive standby target and either fans batches
  /// out to survivor gateways in parallel (reliable: acked, retried,
  /// deduplicated) or schedules one global serial install chain.
  void DispatchDeclusteredRehomes(std::vector<common::QueryId> orphans);
  void SendRehomeBatch(common::EntityId target,
                       std::vector<common::QueryId> queries);
  void ScheduleRehomeRetry(int64_t seq, double timeout_s);
  /// Installs one unplaced query on `target` if both still qualify (the
  /// query may have been removed or re-homed, the target evicted, while
  /// the batch was in flight). Returns true if it landed.
  bool InstallFromUnplaced(common::EntityId target, common::QueryId query);
  /// Eviction-time timer hygiene: drops pending result retries whose
  /// sender gateway died and pending re-home batches addressed to the
  /// dead entity (their queries remain in unplaced_ for re-dispatch).
  void CancelPendingFor(common::EntityId entity);

  Config config_;
  common::Rng rng_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<sim::Network> network_;
  sim::Topology topology_;
  interest::StreamCatalog catalog_;
  std::vector<std::unique_ptr<workload::StreamGen>> streams_;
  std::vector<std::unique_ptr<entity::Entity>> entities_;
  std::unique_ptr<placement::PrAwarePlacement> placement_policy_;
  std::unique_ptr<dissemination::Disseminator> disseminator_;
  std::unique_ptr<coordinator::CoordinatorTree> coordinator_;
  /// Per-entity aggregated interest (union over its queries).
  std::vector<interest::InterestSet> entity_interest_;
  /// Installed queries and their hot runtime state (home, load, tenant)
  /// in one SoA table — replaces the old query_home_ / queries_ map pair.
  QueryStateTable query_state_;
  /// Incrementally maintained query graph. Null until the first
  /// RepartitionQueries call (non-repartitioning runs never pay for it);
  /// afterwards kept in sync by install/remove deltas, so later rounds
  /// materialize the graph instead of re-measuring every query pair.
  /// Dropped when the stream catalog changes (AddStreams).
  std::unique_ptr<partition::QueryGraphIndex> graph_index_;
  std::vector<bool> alive_;
  /// Oracle-failed / gracefully-departed entities (their process is gone,
  /// so they stop heartbeating — unlike sweep-evicted ones, which may
  /// still be alive and earn re-admission).
  std::vector<bool> departed_;
  /// Queries whose (re-)placement failed; kept queued for retry.
  std::map<common::QueryId, engine::Query> unplaced_;
  /// Every query id ever admitted and not yet withdrawn — the auditor's
  /// conservation ground truth: accepted_ == keys(query_state_) ⊎
  /// keys(unplaced_) at all times (eviction and migration move queries
  /// between the two sides, never off the ledger). Hashed: only counted,
  /// probed, and scanned order-insensitively by the auditor.
  std::unordered_set<common::QueryId> accepted_;
  /// Invariant auditor (null until EnableAudit).
  std::unique_ptr<Auditor> auditor_;
  /// Anomaly watchdog (null until EnableWatchdog).
  std::unique_ptr<telemetry::Watchdog> watchdog_;
  /// Cumulative control-plane event counters the watchdog probes.
  int64_t repartition_rounds_ = 0;
  int64_t evictions_total_ = 0;
  /// Fault layer (null unless config_.inject_faults).
  std::unique_ptr<sim::FaultInjector> faults_;
  /// Crash instant of each entity's current window (for detection
  /// latency), NaN when none.
  std::vector<double> crash_time_;
  /// Failure detection (active once EnableFailureDetection ran).
  coordinator::HeartbeatMonitor monitor_;
  bool detection_active_ = false;
  FailureDetectionConfig detection_config_;
  common::SimNodeId monitor_node_ = common::kInvalidSimNode;
  FailureStats failure_stats_;
  /// Reliable client-result state (untouched unless reliable_results).
  struct PendingResult {
    sim::Message msg;
    int retries_left = 0;
    double timeout_s = 0.0;
    /// Outstanding retry timer, cancelled on ack so the heap slot is
    /// reclaimed instead of firing into a dead entry.
    sim::TimerId timer = sim::kInvalidTimer;
  };
  std::map<int64_t, PendingResult> pending_results_;
  std::unordered_set<int64_t> seen_result_seqs_;
  int64_t next_result_seq_ = 1;
  int64_t result_retries_ = 0;
  int64_t result_delivery_failures_ = 0;
  int64_t result_retries_cancelled_ = 0;
  /// Declustered placement state (null / untouched unless allocation ==
  /// kPlacementMap). The map mirrors the System's alive set; rehome_node_
  /// is the control-plane node batches originate from.
  std::unique_ptr<placement::PlacementMap> placement_map_;
  common::SimNodeId rehome_node_ = common::kInvalidSimNode;
  struct PendingRehome {
    sim::Message msg;
    common::EntityId target = common::kInvalidEntity;
    std::vector<common::QueryId> queries;
    int retries_left = 0;
    double timeout_s = 0.0;
    /// Outstanding retry timer, cancelled on ack / CancelPendingFor.
    sim::TimerId timer = sim::kInvalidTimer;
  };
  std::map<int64_t, PendingRehome> pending_rehomes_;
  std::unordered_set<int64_t> seen_rehome_seqs_;
  int64_t next_rehome_seq_ = 1;
  /// When one global serial chain is used (recovery.parallel == false),
  /// installs queue behind this simulated-time watermark.
  double serial_rehome_free_at_ = 0.0;
  /// Queries deliberately moved off their map targets (explicit
  /// MigrateQuery / repartitioning). The auditor's replica-placement
  /// check excuses these; eviction re-homes them back through the map.
  std::unordered_set<common::QueryId> off_map_;
  /// Client modeling (when config_.num_clients > 0).
  std::vector<common::SimNodeId> client_nodes_;
  std::vector<sim::Point> client_positions_;
  std::unordered_map<common::QueryId, int> client_of_query_;
  int next_client_ = 0;
  int round_robin_next_ = 0;
  /// Multi-tenant state (all null/empty unless Config::tenants is set).
  std::unique_ptr<tenant::TenantRegistry> tenant_registry_;
  std::unique_ptr<tenant::AdmissionController> admission_;
  struct QueuedAdmission {
    engine::Query query;
    double enqueued_at = 0.0;
    /// FIFO order within a tenant during weighted-fair drains.
    int64_t seq = 0;
  };
  std::map<common::QueryId, QueuedAdmission> admission_queue_;
  int64_t next_admission_seq_ = 1;
  /// Re-entrancy guard: DrainAdmissionQueue runs from capacity-release
  /// sites that its own installs can reach again.
  bool draining_admissions_ = false;
  struct TenantRuntime {
    common::Histogram latency;
    /// Bounded-stats backing for `latency` (bounded_stats mode only).
    telemetry::Sketch latency_sketch;
    int64_t results = 0;
    int64_t within_slo = 0;
    /// (completion time, latency) of recent results, trimmed to the
    /// admission.slo_window_s window — the recent-p95 probe's input.
    std::deque<std::pair<double, double>> recent;
    telemetry::Counter* results_counter = nullptr;
    telemetry::HistogramMetric* latency_hist = nullptr;
  };
  std::map<tenant::TenantId, TenantRuntime> tenant_runtime_;
  /// Elasticity (null unless EnableElasticity ran).
  std::unique_ptr<tenant::ElasticityManager> elasticity_;
  ElasticityStats elasticity_stats_;
  SystemMetrics metrics_;
  MaintenanceStats maintenance_stats_;
  /// Cached telemetry series (null when config_.metrics is null).
  telemetry::Counter* results_counter_ = nullptr;
  telemetry::Counter* query_migrations_counter_ = nullptr;
  telemetry::HistogramMetric* latency_hist_ = nullptr;
  telemetry::HistogramMetric* pr_hist_ = nullptr;
  telemetry::HistogramMetric* graph_build_us_ = nullptr;
  telemetry::HistogramMetric* incremental_delta_us_ = nullptr;
  /// Applies a timed add/remove delta to graph_index_ (no-op while null).
  /// During a SubmitQueries batch, adds are deferred into
  /// deferred_graph_adds_ and flushed as one bulk AddQueries pass.
  void GraphIndexAdd(const engine::Query& query);
  void GraphIndexRemove(common::QueryId query);
  void FlushDeferredGraphAdds();
  /// Classifies one submission status into the batch tally.
  static void TallySubmit(const common::Status& st, BatchSubmitResult* out);
  /// True while SubmitQueries is draining its batch (gates the graph-add
  /// deferral; nothing reads graph_index_ mid-batch).
  bool batch_install_active_ = false;
  std::vector<engine::Query> deferred_graph_adds_;
  InstallProfile install_profile_;
  /// InstallOn scratch (per-install changed-stream list, reused).
  std::vector<common::StreamId> changed_streams_;
  void RecomputeEntityInterest(common::EntityId entity);
  void MaintenanceRound();
  void ShipResultToClient(common::EntityId entity, common::QueryId query,
                          const engine::Tuple& tuple);
};

}  // namespace dsps::system

#endif  // DSPS_SYSTEM_SYSTEM_H_
