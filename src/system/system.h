#ifndef DSPS_SYSTEM_SYSTEM_H_
#define DSPS_SYSTEM_SYSTEM_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "coordinator/coordinator_tree.h"
#include "dissemination/disseminator.h"
#include "engine/engine.h"
#include "entity/entity.h"
#include "interest/measure.h"
#include "partition/partitioner.h"
#include "partition/repartitioner.h"
#include "placement/placement.h"
#include "sim/topology.h"
#include "system/metrics.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "workload/stream_gen.h"

namespace dsps::system {

/// Message type for entity->client result delivery.
inline constexpr int kMsgClientResult = 401;

/// Payload of kMsgClientResult.
struct ClientResultEnvelope {
  double result_timestamp = 0.0;
};

/// How arriving queries are allocated to entities (Section 3.2).
enum class AllocationMode {
  /// Level-by-level routing down the hierarchical coordinator tree
  /// (Section 3.2.1) — scalable to fast query streams.
  kCoordinatorTree,
  /// Coordinator-tree routing that additionally steers by coarse subtree
  /// interest summaries, so overlapping queries co-locate (Section 3.2.2's
  /// goal at 3.2.1's cost).
  kCoordinatorInterest,
  /// Batch weighted graph partitioning (Section 3.2.2) — interest-aware.
  kGraphPartition,
  /// Round-robin baseline (no load or interest awareness).
  kRoundRobin,
  /// Isolated regime (Table 1): each query sticks to the entity its client
  /// happens to use — Zipf-skewed random, no load sharing at all.
  kIsolatedZipf,
};

/// The full two-layer system of the paper: stream sources, a WAN of
/// entities (each a LAN cluster of processors), per-source dissemination
/// trees with early filtering, a coordinator tree or graph partitioner
/// for query distribution, and the intra-entity runtime (delegation,
/// placement, PR accounting). Everything runs on one deterministic
/// discrete-event simulation.
class System {
 public:
  struct Config {
    sim::TopologyConfig topology;
    coordinator::CoordinatorTree::Config coordinator;
    dissemination::Disseminator::Config dissemination;
    entity::Entity::Config entity;
    AllocationMode allocation = AllocationMode::kCoordinatorTree;
    /// Balance tolerance for graph-partition allocation.
    double balance_tolerance = 1.2;
    /// Engine family per entity: "basic", "batch", or "mixed" (entities
    /// alternate — the heterogeneity the loose coupling must tolerate).
    const char* engine_family = "mixed";
    /// When positive, models the paper's clients: each query belongs to a
    /// client at a WAN position; results are shipped from the hosting
    /// entity's gateway to the client and client-perceived latency is
    /// recorded (SystemMetrics::client_latency).
    int num_clients = 0;
    /// Where the coordinator anchors a query geographically: near its
    /// data (the primary stream's source) or near its client. The tension
    /// between the two is experiment E9.
    enum class QueryAnchor { kSource, kClient };
    QueryAnchor query_anchor = QueryAnchor::kSource;
    uint64_t seed = 1;
    /// Optional telemetry, threaded through every layer (network counters,
    /// dissemination per-node counters, coordinator events, processor
    /// utilization, causal per-tuple trace spans). Both default to null:
    /// telemetry off, zero overhead, and — because instrumentation never
    /// sends messages or consumes randomness — identical simulations
    /// either way. Must outlive the System.
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::TraceLog* trace = nullptr;
    /// Also export per-directed-link net.link.* counters (high
    /// cardinality; off by default even when `metrics` is set).
    bool per_link_metrics = false;
  };

  explicit System(const Config& config);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Registers stream generators (their streams enter the catalog, their
  /// sources join the dissemination layer). Call before SubmitQuery.
  void AddStreams(std::vector<std::unique_ptr<workload::StreamGen>> gens);

  /// Admits one query: allocates it to an entity (per the allocation
  /// mode), installs it there, and updates the entity's dissemination
  /// interest.
  common::Status SubmitQuery(const engine::Query& query);

  /// Admits a batch at once. Under kGraphPartition the whole batch is
  /// partitioned jointly; other modes submit one by one.
  common::Status SubmitBatch(const std::vector<engine::Query>& queries);

  /// Schedules source emissions for `duration_s` of simulated time
  /// starting now (each stream at its catalog rate).
  void GenerateTraffic(double duration_s);

  /// Runs the simulation until simulated time `t`.
  void RunUntil(double t);

  /// Simulated now.
  double now() const;

  /// Gathers all metrics accumulated so far.
  SystemMetrics Collect() const;

  const interest::StreamCatalog& catalog() const { return catalog_; }
  entity::Entity* entity_at(int index) { return entities_[index].get(); }
  int num_entities() const { return static_cast<int>(entities_.size()); }
  sim::Network* network() { return network_.get(); }
  dissemination::Disseminator* disseminator() { return disseminator_.get(); }
  coordinator::CoordinatorTree* coordinator_tree() {
    return coordinator_.get();
  }

  /// Which entity hosts `query` (kInvalidEntity if unknown).
  common::EntityId EntityOf(common::QueryId query) const;

  /// Withdraws a query: uninstalls it from its entity and recomputes the
  /// entity's aggregated dissemination interest from its remaining
  /// queries (so ancestors stop forwarding data nobody wants).
  common::Status RemoveQuery(common::QueryId query);

  /// Simulates the failure (or departure) of an entity: it leaves the
  /// coordinator tree and every dissemination tree, and its queries are
  /// re-allocated to the surviving entities — the loose-coupling payoff:
  /// nothing else changes. Returns the number of queries re-homed.
  common::Result<int> FailEntity(common::EntityId entity);

  bool IsAlive(common::EntityId entity) const;
  int num_alive() const;

  /// Moves a live query to another entity. Because entities may run
  /// different engines, operator state cannot cross the boundary (the
  /// paper's Section 3 argument): the move is a query-level reinstall —
  /// window state restarts on the new entity.
  common::Status MigrateQuery(common::QueryId query, common::EntityId to);

  /// One round of runtime adaptive repartitioning (Section 3.2.2): builds
  /// the live query graph from the installed queries, lets `repartitioner`
  /// adapt the current assignment, and executes the resulting migrations.
  struct RepartitionReport {
    int migrations = 0;
    double edge_cut = 0.0;
    double imbalance = 1.0;
    double decision_seconds = 0.0;
  };
  common::Result<RepartitionReport> RepartitionQueries(
      partition::Repartitioner* repartitioner);

  /// Starts periodic self-maintenance at the given cadence: coordinator
  /// re-centering (rule 5), dissemination-tree reorganization rounds, and
  /// intra-entity placement rebalancing. Runs until `until` (simulated).
  void EnableMaintenance(double period_s, double until);

  /// Cumulative maintenance actions (for experiments).
  struct MaintenanceStats {
    int rounds = 0;
    int tree_moves = 0;
    int fragment_moves = 0;
    int coordinator_messages = 0;
  };
  const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }

 private:
  common::Status InstallOn(common::EntityId entity, const engine::Query& query);
  common::EntityId AllocateOne(const engine::Query& query);
  void ScheduleEmission(size_t stream_index, double end_time);
  entity::Entity::EngineFactory MakeEngineFactory(int entity_index) const;

  Config config_;
  common::Rng rng_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<sim::Network> network_;
  sim::Topology topology_;
  interest::StreamCatalog catalog_;
  std::vector<std::unique_ptr<workload::StreamGen>> streams_;
  std::vector<std::unique_ptr<entity::Entity>> entities_;
  std::unique_ptr<placement::PrAwarePlacement> placement_policy_;
  std::unique_ptr<dissemination::Disseminator> disseminator_;
  std::unique_ptr<coordinator::CoordinatorTree> coordinator_;
  /// Per-entity aggregated interest (union over its queries).
  std::vector<interest::InterestSet> entity_interest_;
  std::map<common::QueryId, common::EntityId> query_home_;
  /// Installed queries (needed to re-home them on entity failure and to
  /// recompute interests on removal).
  std::map<common::QueryId, engine::Query> queries_;
  std::vector<bool> alive_;
  /// Client modeling (when config_.num_clients > 0).
  std::vector<common::SimNodeId> client_nodes_;
  std::vector<sim::Point> client_positions_;
  std::map<common::QueryId, int> client_of_query_;
  int next_client_ = 0;
  int round_robin_next_ = 0;
  SystemMetrics metrics_;
  MaintenanceStats maintenance_stats_;
  /// Cached telemetry series (null when config_.metrics is null).
  telemetry::Counter* results_counter_ = nullptr;
  telemetry::Counter* query_migrations_counter_ = nullptr;
  telemetry::HistogramMetric* latency_hist_ = nullptr;
  telemetry::HistogramMetric* pr_hist_ = nullptr;
  void RecomputeEntityInterest(common::EntityId entity);
  void MaintenanceRound();
  void ShipResultToClient(common::EntityId entity, common::QueryId query,
                          const engine::Tuple& tuple);
};

}  // namespace dsps::system

#endif  // DSPS_SYSTEM_SYSTEM_H_
