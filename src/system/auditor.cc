#include "system/auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "partition/query_graph.h"
#include "system/system.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/json.h"

namespace dsps::system {

namespace {

common::Status Violation(const std::string& what) {
  return common::Status::Internal(what);
}

}  // namespace

Auditor::Auditor(System* system, const Config& config)
    : system_(system), config_(config) {
  for (const char* name : {"coordinator", "dissemination", "query_graph",
                           "conservation", "replica_placement",
                           "tenant_conservation"}) {
    checks_.push_back(CheckStats{name, 0, 0, ""});
  }
  if (config_.metrics != nullptr) {
    sweeps_counter_ = config_.metrics->counter("audit.sweeps");
    violations_counter_ = config_.metrics->counter("audit.violations");
    for (const CheckStats& check : checks_) {
      check_counters_.push_back(config_.metrics->counter(
          "audit.violations", telemetry::MakeLabels({{"check", check.name}})));
    }
  }
}

int Auditor::RunOnce() {
  ++sweeps_;
  if (sweeps_counter_ != nullptr) sweeps_counter_->Increment();
  common::Status results[] = {CheckCoordinator(),       CheckDissemination(),
                              CheckQueryGraph(),        CheckConservation(),
                              CheckReplicaPlacement(),  CheckTenantConservation()};
  int found = 0;
  for (size_t i = 0; i < checks_.size(); ++i) {
    CheckStats& check = checks_[i];
    check.runs += 1;
    if (results[i].ok()) continue;
    ++found;
    check.violations += 1;
    check.last_detail = results[i].ToString();
    if (!check_counters_.empty()) check_counters_[i]->Increment();
    if (config_.flight != nullptr) {
      config_.flight->RecordInstant(
          "audit.violation." + check.name, system_->now(), /*node=*/-1,
          static_cast<double>(check.violations),
          telemetry::FlightRecorder::EventKind::kAudit);
      config_.flight->DumpOnce();
    }
    if (config_.fatal) {
      std::fprintf(stderr, "Auditor: %s invariant violated at t=%f: %s\n",
                   check.name.c_str(), system_->now(),
                   check.last_detail.c_str());
      std::abort();
    }
  }
  violations_ += found;
  if (violations_counter_ != nullptr && found > 0) {
    violations_counter_->Increment(found);
  }
  return found;
}

common::Status Auditor::CheckCoordinator() const {
  return system_->coordinator_->CheckInvariants();
}

common::Status Auditor::CheckDissemination() const {
  if (system_->disseminator_ == nullptr) return common::Status::OK();
  for (common::StreamId s : system_->catalog_.streams()) {
    const dissemination::DisseminationTree* tree =
        system_->disseminator_->tree(s);
    if (tree == nullptr) continue;
    common::Status st = tree->CheckInvariants();
    if (!st.ok()) {
      return Violation("stream " + std::to_string(s) + ": " + st.message());
    }
  }
  return common::Status::OK();
}

common::Status Auditor::CheckQueryGraph() const {
  // The index exists only after the first repartition round; until then
  // there is no cached structure to drift.
  if (system_->graph_index_ == nullptr) return common::Status::OK();
  std::vector<engine::Query> live;
  live.reserve(system_->query_state_.size());
  for (common::QueryId qid : system_->query_state_.SortedIds()) {
    live.push_back(system_->query_state_.At(qid));
  }
  partition::QueryGraph fresh =
      partition::QueryGraph::Build(live, system_->catalog_);
  partition::QueryGraph cached = system_->graph_index_->Graph();
  if (cached.num_vertices() != fresh.num_vertices()) {
    return Violation("query graph: vertex count drifted");
  }
  // Exact comparison, matching graph_index_test: both sides build the
  // same doubles from the same inputs, so any difference is drift.
  if (cached.total_vertex_weight() != fresh.total_vertex_weight() ||
      cached.total_edge_weight() != fresh.total_edge_weight()) {
    return Violation("query graph: total weights drifted");
  }
  for (int v = 0; v < fresh.num_vertices(); ++v) {
    if (cached.query(v) != fresh.query(v)) {
      return Violation("query graph: vertex order drifted");
    }
    if (cached.vertex_weight(v) != fresh.vertex_weight(v)) {
      return Violation("query graph: vertex weight drifted");
    }
    const auto& ca = cached.neighbors(v);
    const auto& fa = fresh.neighbors(v);
    if (ca.size() != fa.size()) {
      return Violation("query graph: adjacency size drifted");
    }
    for (size_t i = 0; i < fa.size(); ++i) {
      if (ca[i].first != fa[i].first || ca[i].second != fa[i].second) {
        return Violation("query graph: adjacency drifted");
      }
    }
  }
  return common::Status::OK();
}

common::Status Auditor::CheckConservation() const {
  const System& sys = *system_;
  // The SoA table's slot map, parallel arrays, and per-entity member
  // lists are redundant views of "placed" — they must all agree.
  DSPS_RETURN_IF_ERROR(sys.query_state_.CheckConsistent());
  for (common::QueryId qid : sys.query_state_.SortedIds()) {
    if (!sys.IsAlive(sys.query_state_.HomeOf(qid))) {
      return Violation("conservation: query homed on a dead entity");
    }
    if (sys.unplaced_.count(qid) > 0) {
      return Violation("conservation: query both placed and unplaced");
    }
  }
  // Admitted == placed + unplaced, nothing lost, nothing invented.
  if (sys.accepted_.size() != sys.query_state_.size() + sys.unplaced_.size()) {
    return Violation("conservation: admitted != placed + unplaced");
  }
  for (common::QueryId qid : sys.accepted_) {
    if (!sys.query_state_.Contains(qid) && sys.unplaced_.count(qid) == 0) {
      return Violation("conservation: admitted query lost");
    }
  }
  // The entities' own install maps must agree with the home table.
  for (int e = 0; e < sys.num_entities(); ++e) {
    const std::vector<common::QueryId>& expect = sys.query_state_.QueriesOn(e);
    std::vector<common::QueryId> installed =
        sys.entities_[e]->InstalledQueries();
    if (installed.size() != expect.size() ||
        !std::equal(installed.begin(), installed.end(), expect.begin())) {
      return Violation("conservation: entity " + std::to_string(e) +
                       " installs disagree with home table");
    }
  }
  return common::Status::OK();
}

common::Status Auditor::CheckReplicaPlacement() const {
  const System& sys = *system_;
  // Only placement-map mode has a map to drift; other modes are clean by
  // construction (the check never fires, keeping the sweep cost zero).
  if (sys.placement_map_ == nullptr) return common::Status::OK();
  const placement::PlacementMap& map = *sys.placement_map_;
  for (int e = 0; e < sys.num_entities(); ++e) {
    if (map.IsAlive(e) != sys.alive_[e]) {
      return Violation("replica_placement: map alive set disagrees at entity " +
                       std::to_string(e));
    }
    // The map's domain view must match the entities' own ground truth —
    // a drifted copy would straddle the wrong failure-correlation sets.
    if (map.domain_of(e) != sys.entities_[e]->fault_domain()) {
      return Violation("replica_placement: map domain disagrees at entity " +
                       std::to_string(e));
    }
  }
  std::set<int> alive_domains;
  for (int e = 0; e < sys.num_entities(); ++e) {
    if (sys.alive_[e]) {
      alive_domains.insert(sys.topology_.entities[e].fault_domain);
    }
  }
  for (common::QueryId qid : sys.query_state_.SortedIds()) {
    common::EntityId home = sys.query_state_.HomeOf(qid);
    std::vector<common::EntityId> targets = map.Targets(qid);
    std::set<common::EntityId> distinct;
    std::set<int> domains;
    for (common::EntityId t : targets) {
      if (!sys.IsAlive(t)) {
        return Violation("replica_placement: dead target for query " +
                         std::to_string(qid));
      }
      if (!distinct.insert(t).second) {
        return Violation("replica_placement: duplicate target for query " +
                         std::to_string(qid));
      }
      domains.insert(sys.topology_.entities[t].fault_domain);
    }
    // Declustering: replica targets straddle fault domains whenever
    // enough alive domains exist to make that possible.
    size_t want = std::min(targets.size(), alive_domains.size());
    if (domains.size() < want) {
      return Violation(
          "replica_placement: targets of query " + std::to_string(qid) +
          " cover " + std::to_string(domains.size()) + " fault domains, " +
          std::to_string(want) + " possible");
    }
    if (sys.off_map_.count(qid) > 0) continue;
    if (std::find(targets.begin(), targets.end(), home) == targets.end()) {
      return Violation("replica_placement: home of query " +
                       std::to_string(qid) +
                       " is not a map target and not on the off-map ledger");
    }
  }
  return common::Status::OK();
}

common::Status Auditor::CheckTenantConservation() const {
  const System& sys = *system_;
  // Tenant-free runs have no controller and nothing to drift.
  if (sys.admission_ == nullptr) return common::Status::OK();
  const tenant::TenantRegistry& registry = *sys.tenant_registry_;
  // Recount standing queries and loads per tenant from the System's own
  // maps — the ground truth the controller's incremental accounting must
  // match. A mismatch is exactly how a readmission double-count (or a
  // missed withdrawal) would surface.
  std::map<tenant::TenantId, int> standing;
  std::map<tenant::TenantId, double> standing_load;
  std::map<tenant::TenantId, int> queued;
  auto attribute = [&](common::QueryId qid, const engine::Query& q,
                       const char* where) -> common::Status {
    if (!registry.Contains(q.tenant)) {
      return Violation("tenant_conservation: " + std::string(where) +
                       " query " + std::to_string(qid) +
                       " owned by unregistered tenant " +
                       std::to_string(q.tenant));
    }
    standing[q.tenant] += 1;
    standing_load[q.tenant] += q.load;
    return common::Status::OK();
  };
  for (common::QueryId qid : sys.query_state_.SortedIds()) {
    DSPS_RETURN_IF_ERROR(attribute(qid, sys.query_state_.At(qid), "placed"));
  }
  for (const auto& [qid, q] : sys.unplaced_) {
    DSPS_RETURN_IF_ERROR(attribute(qid, q, "unplaced"));
  }
  for (const auto& [qid, entry] : sys.admission_queue_) {
    DSPS_RETURN_IF_ERROR(attribute(qid, entry.query, "queued"));
    // Queued submissions stand against the quota but carry no installed
    // load yet.
    standing_load[entry.query.tenant] -= entry.query.load;
    queued[entry.query.tenant] += 1;
  }
  for (const auto& [t, c] : sys.admission_->all_counters()) {
    if (c.standing != standing[t]) {
      return Violation("tenant_conservation: tenant " + std::to_string(t) +
                       " controller standing " + std::to_string(c.standing) +
                       " != recounted " + std::to_string(standing[t]));
    }
    if (c.queued_now != queued[t]) {
      return Violation("tenant_conservation: tenant " + std::to_string(t) +
                       " controller queued " + std::to_string(c.queued_now) +
                       " != recounted " + std::to_string(queued[t]));
    }
    // Loads accumulate incrementally in a different order than the
    // recount; allow for float reassociation, nothing more.
    if (std::abs(c.standing_load - standing_load[t]) > 1e-6) {
      return Violation("tenant_conservation: tenant " + std::to_string(t) +
                       " standing load drifted");
    }
  }
  // Counter identity: every submission settled exactly one way.
  return sys.admission_->CheckConservation();
}

std::string Auditor::ReportJson() const {
  telemetry::JsonWriter w;
  w.BeginObject();
  w.Key("report").String("audit");
  w.Key("sweeps").Int(sweeps_);
  w.Key("violations").Int(violations_);
  w.Key("checks").BeginArray();
  for (const CheckStats& check : checks_) {
    w.BeginObject();
    w.Key("name").String(check.name);
    w.Key("runs").Int(check.runs);
    w.Key("violations").Int(check.violations);
    w.Key("last_detail").String(check.last_detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

common::Status Auditor::WriteReport(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return common::Status::InvalidArgument("cannot open " + path);
  os << ReportJson() << '\n';
  os.flush();
  if (!os) return common::Status::Internal("write failed for " + path);
  return common::Status::OK();
}

double AuditIntervalFromEnv() {
  const char* s = std::getenv("DSPS_AUDIT_INTERVAL");
  if (s == nullptr || s[0] == '\0') return 0.0;
  double v = std::strtod(s, nullptr);
  return v > 0.0 ? v : 0.0;
}

double WatchdogIntervalFromEnv() {
  const char* s = std::getenv("DSPS_WATCHDOG");
  if (s == nullptr || s[0] == '\0') return 0.0;
  double v = std::strtod(s, nullptr);
  return v > 0.0 ? v : 0.0;
}

}  // namespace dsps::system
