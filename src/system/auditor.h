#ifndef DSPS_SYSTEM_AUDITOR_H_
#define DSPS_SYSTEM_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/registry.h"

namespace dsps::telemetry {
class FlightRecorder;
}  // namespace dsps::telemetry

namespace dsps::system {

class System;

/// Continuous invariant auditor: a periodic, opt-in sweep that re-derives
/// ground truth from first principles and compares it against the live
/// structures the hot paths actually use. The paper states structural
/// invariants (coordinator cluster sizes in [k, 3k-1], parent = cluster
/// center, interest aggregates consistent up the dissemination tree) that
/// our tests only check at hand-picked moments; the auditor checks them
/// continuously, under fault injection, at simulated-time cadence.
///
/// Checks per sweep:
///  - coordinator:   CoordinatorTree::CheckInvariants (cluster sizes,
///                   center-from-own-subtree, leaf bijection);
///  - dissemination: per-stream DisseminationTree::CheckInvariants
///                   (parent/child symmetry, acyclicity, cached subtree
///                   aggregates vs recomputation, routing cache vs linear
///                   scan);
///  - query_graph:   incremental QueryGraphIndex::Graph() vs a fresh
///                   QueryGraph::Build over the live queries (exact
///                   weights and adjacency);
///  - conservation:  every admitted query is placed on exactly one alive
///                   entity or queued as unplaced — never both, never
///                   lost — and the entities' own installs agree;
///  - replica_placement (placement-map mode only, trivially clean
///                   otherwise): the map's alive set mirrors the
///                   system's; every placed query's home is one of its
///                   map targets unless the System explicitly moved it
///                   off-map (migration/fallback, tracked in a ledger);
///                   and replica target lists straddle fault domains
///                   whenever enough alive domains exist;
///  - tenant_conservation (tenant-enabled runs only, trivially clean
///                   otherwise): every standing query (placed, unplaced,
///                   or queued for admission) is attributed to exactly
///                   one registered tenant; the admission controller's
///                   per-tenant standing counts and loads agree with a
///                   recount from the System's own maps (so readmission
///                   re-homes can never double-count against quotas);
///                   and per tenant, submitted == admitted + degraded +
///                   rejected + evicted + queued.
///
/// Every check is read-only (apart from deterministically pre-building
/// routing caches the hot path would build anyway), consumes no RNG, and
/// sends no messages — enabling the auditor cannot change a simulation's
/// results, only observe them. Violations bump `audit.*` counters and,
/// when `fatal`, abort: in debug builds CI's fault-seed matrix dies at
/// the first sweep that observes a broken invariant instead of letting it
/// corrupt benches downstream.
class Auditor {
 public:
  struct Config {
    /// Abort on the first violation (defaults on in debug builds,
    /// mirroring DSPS_DCHECK).
    bool fatal =
#ifndef NDEBUG
        true;
#else
        false;
#endif
    /// When set, sweeps maintain `audit.sweeps`, `audit.violations`, and
    /// per-check `audit.violations{check=...}` counters.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// When set, every violation records an "audit.violation.<check>"
    /// event into the flight recorder and triggers its one-shot
    /// post-mortem dump (DumpOnce) — before the fatal abort, so the ring
    /// nearest the first broken invariant survives.
    telemetry::FlightRecorder* flight = nullptr;
  };

  /// Per-check accounting for the JSON report and tools/dsps_doctor.
  struct CheckStats {
    std::string name;
    int64_t runs = 0;
    int64_t violations = 0;
    /// Message of the most recent violation (empty when clean).
    std::string last_detail;
  };

  /// `system` must outlive the auditor.
  Auditor(System* system, const Config& config);
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Runs every check once; returns the number of violations found (0 on
  /// a clean sweep). Aborts instead when Config::fatal and a check fails.
  int RunOnce();

  int64_t sweeps() const { return sweeps_; }
  int64_t violations() const { return violations_; }
  const std::vector<CheckStats>& checks() const { return checks_; }

  /// Structured report for tools/dsps_doctor:
  ///   {"report": "audit", "sweeps": N, "violations": M,
  ///    "checks": [{"name", "runs", "violations", "last_detail"}, ...]}
  std::string ReportJson() const;
  common::Status WriteReport(const std::string& path) const;

 private:
  common::Status CheckCoordinator() const;
  common::Status CheckDissemination() const;
  common::Status CheckQueryGraph() const;
  common::Status CheckConservation() const;
  common::Status CheckReplicaPlacement() const;
  common::Status CheckTenantConservation() const;

  System* system_;
  Config config_;
  std::vector<CheckStats> checks_;
  int64_t sweeps_ = 0;
  int64_t violations_ = 0;
  telemetry::Counter* sweeps_counter_ = nullptr;
  telemetry::Counter* violations_counter_ = nullptr;
  std::vector<telemetry::Counter*> check_counters_;
};

/// Parses the DSPS_AUDIT_INTERVAL environment variable (simulated seconds
/// between sweeps); 0 when unset, empty, or non-positive. Benches and
/// tests call this so CI can switch auditing on without code changes —
/// the System itself never reads the environment.
double AuditIntervalFromEnv();

/// Parses the DSPS_WATCHDOG environment variable (simulated seconds
/// between watchdog ticks); 0 when unset, empty, or non-positive. Same
/// contract as AuditIntervalFromEnv: benches read it so CI can turn the
/// anomaly watchdog on per-leg without code changes.
double WatchdogIntervalFromEnv();

}  // namespace dsps::system

#endif  // DSPS_SYSTEM_AUDITOR_H_
