#ifndef DSPS_SYSTEM_QUERY_STATE_H_
#define DSPS_SYSTEM_QUERY_STATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "engine/plan.h"

namespace dsps::system {

/// SoA table of the hot per-query runtime state: home entity, declared
/// load, and owning tenant live in parallel flat arrays keyed by a dense
/// slot index, with the full engine::Query record kept alongside for the
/// cold paths (re-homes, migrations, audits).
///
/// This replaces the System's old pair of std::maps (query -> home,
/// query -> Query): at metro scale (1M standing queries) the admission
/// sweep and the per-result tenant lookup were O(Q) / O(log Q) walks
/// through scattered heap nodes; here they are an O(k) scan of one
/// entity's member list and an O(1) hash probe.
///
/// Determinism contract: the per-entity member lists are kept sorted by
/// ascending query id, which replays the old std::map iteration order
/// exactly — floating-point load sums and interest merge orders (and so
/// admission decisions near the limit) are bit-identical to the map-based
/// code. SortedIds() provides the same ascending order across all queries
/// for the whole-table walks (repartitioning, audits).
class QueryStateTable {
 public:
  QueryStateTable() = default;

  /// Declares the entity-id universe [0, num_entities). Must be called
  /// before the first Insert; member lists are indexed by entity id.
  void SetNumEntities(int num_entities) {
    members_.resize(num_entities);
    member_sum_.resize(num_entities);
  }

  bool Contains(common::QueryId id) const { return slot_.count(id) > 0; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Home entity of `id`, or kInvalidEntity if not placed.
  common::EntityId HomeOf(common::QueryId id) const {
    auto it = slot_.find(id);
    return it == slot_.end() ? common::kInvalidEntity : home_[it->second];
  }

  /// Declared load of `id` (must be placed).
  double LoadOf(common::QueryId id) const { return load_[SlotOf(id)]; }

  /// Owning tenant of `id` (must be placed).
  int32_t TenantOf(common::QueryId id) const { return tenant_[SlotOf(id)]; }

  /// Full query record, or nullptr if not placed.
  const engine::Query* Find(common::QueryId id) const {
    auto it = slot_.find(id);
    return it == slot_.end() ? nullptr : &queries_[it->second];
  }

  /// Full query record (must be placed).
  const engine::Query& At(common::QueryId id) const {
    return queries_[SlotOf(id)];
  }

  /// Places (or re-homes) `query` on `entity`.
  void Insert(const engine::Query& query, common::EntityId entity);

  /// Removes `id`; returns false if it was not placed.
  bool Erase(common::QueryId id);

  /// Ids homed on `entity`, ascending — the exact iteration order the old
  /// per-entity std::map filter produced. Invalidated by Insert/Erase;
  /// copy before mutating the table mid-walk.
  const std::vector<common::QueryId>& QueriesOn(common::EntityId entity) const {
    return members_[entity];
  }

  /// Sum of LoadOf over QueriesOn(entity) in ascending-id order, cached
  /// per entity. The cache extends in place only when the mutation
  /// provably preserves the walk's floating-point association — a new
  /// maximum id appended to the member list adds its load as the fold's
  /// final term — and is invalidated by any other mutation, so the value
  /// always equals the plain ascending walk bit for bit. This turns the
  /// admission gate's O(members) sweep per install into O(1) for the
  /// append-heavy install storms (ascending-id batch submission).
  double MemberLoadSum(common::EntityId entity) const;

  /// Every placed id, ascending (cold paths: repartition, audit sweeps).
  std::vector<common::QueryId> SortedIds() const;

  /// Internal-consistency audit: slot map, SoA arrays, and member lists
  /// must all describe the same placement. Replaces the old auditor check
  /// that the two maps agreed with each other.
  common::Status CheckConsistent() const;

 private:
  uint32_t SlotOf(common::QueryId id) const;

  std::unordered_map<common::QueryId, uint32_t> slot_;
  /// Parallel SoA arrays over dense slots (swap-with-last on erase).
  std::vector<common::QueryId> ids_;
  std::vector<common::EntityId> home_;
  std::vector<double> load_;
  std::vector<int32_t> tenant_;
  std::vector<engine::Query> queries_;
  /// members_[entity] = resident query ids, sorted ascending.
  std::vector<std::vector<common::QueryId>> members_;
  /// Cached ascending-order member load sums (see MemberLoadSum).
  struct MemberSum {
    double sum = 0.0;
    bool valid = false;
  };
  mutable std::vector<MemberSum> member_sum_;
};

}  // namespace dsps::system

#endif  // DSPS_SYSTEM_QUERY_STATE_H_
